//! Offline stand-in for the `polling` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the readiness-notification surface the
//! `qid-server` connection core uses, in the same oneshot style as the
//! real `polling` crate:
//!
//! * [`Poller::add`] registers a socket with a `usize` key and an
//!   interest ([`Event::readable`] / [`Event::writable`]);
//! * [`Poller::wait`] blocks until ≥ 1 registered source is ready (or a
//!   timeout), appending one [`Event`] per ready source;
//! * registrations are **oneshot**: once a source is reported it stays
//!   registered but disarmed until [`Poller::modify`] re-arms it, so
//!   one connection is never reported to two consumers at once;
//! * [`Poller::notify`] wakes a blocked [`Poller::wait`] from any
//!   thread (a self-pipe under the hood).
//!
//! Three backends implement that contract:
//!
//! * **epoll** (Linux): `O(ready)` per wait, the default — idle
//!   registrations are free, which is what lets thousands of quiet
//!   keep-alive connections coexist with microsecond dispatch.
//! * **kqueue** (macOS and the BSDs): the same `O(ready)` contract via
//!   `EV_ONESHOT` filters, the default on those platforms.
//! * **poll(2)** (any Unix): rebuilds the `pollfd` array every wait, so
//!   each wait costs `O(registered)` — correct everywhere `poll` exists
//!   and the fallback when neither kernel queue is available. Force it
//!   with `QID_POLL_BACKEND=poll` (useful for exercising the fallback
//!   in tests on Linux).
//!
//! The crate also exports three tiny `setsockopt` wrappers —
//! [`set_recv_buffer`], [`set_send_buffer`], and [`set_linger_zero`] —
//! because `std::net` has no way to shrink a socket buffer or force an
//! RST on close, and the server's fault-injection tests need both. This
//! crate is the workspace's one sanctioned home for `unsafe`, so the
//! raw calls live here behind safe signatures.
//!
//! Everything is `std` plus a handful of libc symbols (`epoll_*` or
//! `kqueue`/`kevent`, `poll`, `fcntl`, `setsockopt`) declared directly
//! — std already links libc, so no external crate is needed.

#![cfg_attr(not(unix), allow(unused))]

#[cfg(not(unix))]
compile_error!("the vendored polling shim only supports Unix targets");

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// The key [`Poller::notify`] wake-ups use internally. Never returned
/// from [`Poller::wait`] and rejected by [`Poller::add`].
pub const NOTIFY_KEY: usize = usize::MAX;

/// A readiness event: which registration fired and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// The source is readable (or has hung up / errored — a read will
    /// observe the condition).
    pub readable: bool,
    /// The source is writable.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

/// Which readiness syscall backs a [`Poller`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Linux `epoll(7)`: `O(ready)` waits.
    #[cfg(target_os = "linux")]
    Epoll,
    /// BSD/macOS `kqueue(2)`: `O(ready)` waits via `EV_ONESHOT`.
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    Kqueue,
    /// POSIX `poll(2)`: `O(registered)` waits, works everywhere.
    Poll,
}

impl BackendKind {
    /// The backend [`Poller::new`] would pick right now: `epoll` on
    /// Linux and `kqueue` on macOS/BSD unless `QID_POLL_BACKEND=poll`
    /// is set, `poll` elsewhere.
    pub fn default_kind() -> BackendKind {
        if std::env::var_os("QID_POLL_BACKEND").is_some_and(|v| v == "poll") {
            return BackendKind::Poll;
        }
        #[cfg(target_os = "linux")]
        {
            BackendKind::Epoll
        }
        #[cfg(any(
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        ))]
        {
            BackendKind::Kqueue
        }
        #[cfg(not(any(
            target_os = "linux",
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        )))]
        {
            BackendKind::Poll
        }
    }

    /// Stable human-readable name (`"epoll"` / `"kqueue"` / `"poll"`).
    pub fn name(self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            BackendKind::Epoll => "epoll",
            #[cfg(any(
                target_os = "macos",
                target_os = "freebsd",
                target_os = "netbsd",
                target_os = "openbsd",
                target_os = "dragonfly"
            ))]
            BackendKind::Kqueue => "kqueue",
            BackendKind::Poll => "poll",
        }
    }
}

/// The name of the backend [`Poller::new`] would pick right now.
pub fn default_backend_name() -> &'static str {
    BackendKind::default_kind().name()
}

// ------------------------------------------------------------------ ffi

mod ffi {
    use std::os::raw::{c_int, c_short, c_ulong, c_void};

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0x80000;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLLONESHOT: u32 = 1 << 30;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 (and
    /// only there), exactly as libc's definition does.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    #[cfg(target_os = "linux")]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    // ---- kqueue (macOS and the BSDs) --------------------------------
    //
    // `struct kevent` layout differs per OS; each variant below matches
    // the platform's libc definition. The `filter`/`flags`/`udata`
    // types are aliased so the backend code is written once.

    /// `EV_DELETE` on a filter that is not registered.
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const ENOENT: c_int = 2;

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub type KFilter = i16;
    #[cfg(target_os = "netbsd")]
    pub type KFilter = u32;

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub type KFlags = u16;
    #[cfg(target_os = "netbsd")]
    pub type KFlags = u32;

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub type KUdata = *mut c_void;
    #[cfg(target_os = "netbsd")]
    pub type KUdata = isize;

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const EVFILT_READ: KFilter = -1;
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const EVFILT_WRITE: KFilter = -2;
    #[cfg(target_os = "netbsd")]
    pub const EVFILT_READ: KFilter = 0;
    #[cfg(target_os = "netbsd")]
    pub const EVFILT_WRITE: KFilter = 1;

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const EV_ADD: KFlags = 0x0001;
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const EV_DELETE: KFlags = 0x0002;
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const EV_ONESHOT: KFlags = 0x0010;
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub const EV_ERROR: KFlags = 0x4000;

    /// `struct kevent`, macOS/DragonFly layout (`intptr_t data`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[cfg(any(target_os = "macos", target_os = "dragonfly"))]
    pub struct Kevent {
        pub ident: usize,
        pub filter: KFilter,
        pub flags: KFlags,
        pub fflags: u32,
        pub data: isize,
        pub udata: KUdata,
    }

    /// `struct kevent`, FreeBSD ≥ 12 layout (`int64_t data` + `ext`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[cfg(target_os = "freebsd")]
    pub struct Kevent {
        pub ident: usize,
        pub filter: KFilter,
        pub flags: KFlags,
        pub fflags: u32,
        pub data: i64,
        pub udata: KUdata,
        pub ext: [u64; 4],
    }

    /// `struct kevent`, OpenBSD layout (`int64_t data`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[cfg(target_os = "openbsd")]
    pub struct Kevent {
        pub ident: usize,
        pub filter: KFilter,
        pub flags: KFlags,
        pub fflags: u32,
        pub data: i64,
        pub udata: KUdata,
    }

    /// `struct kevent`, NetBSD layout (32-bit filter/flags, integer
    /// `udata`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[cfg(target_os = "netbsd")]
    pub struct Kevent {
        pub ident: usize,
        pub filter: KFilter,
        pub flags: KFlags,
        pub fflags: u32,
        pub data: i64,
        pub udata: KUdata,
    }

    /// Builds a change/event record; `key` travels in `udata`.
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub fn kev(ident: usize, filter: KFilter, flags: KFlags, key: usize) -> Kevent {
        Kevent {
            ident,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: key as KUdata,
            #[cfg(target_os = "freebsd")]
            ext: [0; 4],
        }
    }

    /// The registration key carried in a reported event's `udata`.
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub fn kev_key(ev: &Kevent) -> usize {
        ev.udata as usize
    }

    /// `struct timespec` for the `kevent` timeout (64-bit fields match
    /// every supported 64-bit BSD/macOS target).
    #[repr(C)]
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    // ---- setsockopt --------------------------------------------------

    #[cfg(target_os = "linux")]
    pub const SOL_SOCKET: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const SO_SNDBUF: c_int = 7;
    #[cfg(target_os = "linux")]
    pub const SO_RCVBUF: c_int = 8;
    #[cfg(target_os = "linux")]
    pub const SO_LINGER: c_int = 13;

    #[cfg(not(target_os = "linux"))]
    pub const SOL_SOCKET: c_int = 0xffff;
    #[cfg(not(target_os = "linux"))]
    pub const SO_SNDBUF: c_int = 0x1001;
    #[cfg(not(target_os = "linux"))]
    pub const SO_RCVBUF: c_int = 0x1002;
    #[cfg(not(target_os = "linux"))]
    pub const SO_LINGER: c_int = 0x0080;

    /// `struct linger` from `setsockopt(SO_LINGER)`.
    #[repr(C)]
    pub struct Linger {
        pub l_onoff: c_int,
        pub l_linger: c_int,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        #[cfg(any(
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        ))]
        pub fn kqueue() -> c_int;
        #[cfg(any(
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        ))]
        #[cfg_attr(target_os = "netbsd", link_name = "__kevent50")]
        pub fn kevent(
            kq: c_int,
            changelist: *const Kevent,
            nchanges: c_int,
            eventlist: *mut Kevent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
    }

    /// Avoids an unused-import warning on non-Linux targets.
    pub type Unused = c_void;
}

/// Flips a descriptor to non-blocking mode.
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL on a descriptor we own; no pointers are
    // involved and an invalid fd is reported through the return value.
    let flags = unsafe { ffi::fcntl(fd, ffi::F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: same contract as above, setting the flags we just read
    // plus O_NONBLOCK.
    if unsafe { ffi::fcntl(fd, ffi::F_SETFL, flags | ffi::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Sets one fixed-size socket option.
fn set_opt<T>(fd: RawFd, level: i32, name: i32, value: &T) -> io::Result<()> {
    // SAFETY: `value` points to a live `T` for the duration of the
    // call and `optlen` is exactly `size_of::<T>()`; the kernel only
    // reads that many bytes. An invalid fd or option is reported
    // through the return value.
    let rc = unsafe {
        ffi::setsockopt(
            fd,
            level,
            name,
            (value as *const T).cast(),
            std::mem::size_of::<T>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Shrinks (or grows) a socket's kernel receive buffer (`SO_RCVBUF`).
///
/// Fault-injection tests use a tiny receive buffer to simulate a
/// reader that has stopped draining: once the buffer and the peer's
/// send buffer fill, the peer's writes return `WouldBlock`.
pub fn set_recv_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    let v = bytes.min(i32::MAX as usize) as i32;
    set_opt(sock.as_raw_fd(), ffi::SOL_SOCKET, ffi::SO_RCVBUF, &v)
}

/// Shrinks (or grows) a socket's kernel send buffer (`SO_SNDBUF`).
pub fn set_send_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    let v = bytes.min(i32::MAX as usize) as i32;
    set_opt(sock.as_raw_fd(), ffi::SOL_SOCKET, ffi::SO_SNDBUF, &v)
}

/// Arms `SO_LINGER` with a zero timeout so closing the socket sends an
/// immediate RST instead of the orderly FIN handshake. Fault-injection
/// tests use this to simulate a peer that vanished mid-conversation.
pub fn set_linger_zero(sock: &impl AsRawFd) -> io::Result<()> {
    let linger = ffi::Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    set_opt(sock.as_raw_fd(), ffi::SOL_SOCKET, ffi::SO_LINGER, &linger)
}

/// Milliseconds for the kernel timeout argument: `None` → block
/// forever; sub-millisecond waits round up so a short timeout never
/// becomes a busy-loop.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

// ------------------------------------------------------------ backends

/// One registration in the poll(2) backend's table.
#[derive(Clone, Copy, Debug)]
struct PollReg {
    key: usize,
    readable: bool,
    writable: bool,
    /// Oneshot emulation: cleared when the fd is reported, set again by
    /// `modify`.
    armed: bool,
}

#[derive(Debug, Default)]
struct PollTable {
    fds: HashMap<RawFd, PollReg>,
}

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct EpollBackend {
    epfd: OwnedFd,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new(notify_fd: RawFd) -> io::Result<EpollBackend> {
        // SAFETY: epoll_create1 takes no pointers; a failure is
        // reported through the return value.
        let raw = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `raw` is a fresh, valid epoll descriptor we own.
        let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
        let backend = EpollBackend { epfd };
        // The notify pipe is level-triggered and *not* oneshot: a
        // pending wake-up byte keeps reporting until drained.
        backend.ctl(ffi::EPOLL_CTL_ADD, notify_fd, ffi::EPOLLIN, NOTIFY_KEY)?;
        Ok(backend)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, key: usize) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events,
            data: key as u64,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; the epoll fd and target fd are live descriptors (an
        // invalid one is reported via the return value, not UB).
        if unsafe { ffi::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn interest_bits(ev: Event) -> u32 {
        let mut bits = ffi::EPOLLONESHOT;
        if ev.readable {
            bits |= ffi::EPOLLIN;
        }
        if ev.writable {
            bits |= ffi::EPOLLOUT;
        }
        bits
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        let mut buf = [ffi::EpollEvent { events: 0, data: 0 }; 1024];
        // SAFETY: `buf` is a valid, writable array of `buf.len()`
        // epoll_events; the kernel writes at most `maxevents` entries.
        let n = unsafe {
            ffi::epoll_wait(
                self.epfd.as_raw_fd(),
                buf.as_mut_ptr(),
                buf.len() as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        let mut notified = false;
        for raw in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let (bits, data) = (raw.events, raw.data);
            if data as usize == NOTIFY_KEY {
                notified = true;
                continue;
            }
            events.push(Event {
                key: data as usize,
                readable: bits & (ffi::EPOLLIN | ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                writable: bits & (ffi::EPOLLOUT | ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
            });
        }
        Ok(notified)
    }
}

/// The kqueue backend: oneshot readiness via `EV_ONESHOT` filters.
///
/// kqueue registrations are per-(fd, filter) pairs, so "re-aim the
/// interest" is expressed as delete-both-then-add-requested; deleting a
/// filter that is not registered (`ENOENT`) is not an error. The key
/// travels in `udata` and comes back verbatim with each event.
#[cfg(any(
    target_os = "macos",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
#[derive(Debug)]
struct KqueueBackend {
    kq: OwnedFd,
}

#[cfg(any(
    target_os = "macos",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
impl KqueueBackend {
    fn new(notify_fd: RawFd) -> io::Result<KqueueBackend> {
        // SAFETY: kqueue takes no pointers; a failure is reported
        // through the return value.
        let raw = unsafe { ffi::kqueue() };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `raw` is a fresh, valid kqueue descriptor we own.
        let kq = unsafe { OwnedFd::from_raw_fd(raw) };
        let backend = KqueueBackend { kq };
        // The notify pipe is level-triggered and *not* oneshot: a
        // pending wake-up byte keeps reporting until drained.
        backend.submit(notify_fd, ffi::EVFILT_READ, ffi::EV_ADD, NOTIFY_KEY, false)?;
        Ok(backend)
    }

    /// Submits one change. `ignore_missing` swallows `ENOENT`
    /// (deleting a filter that was never added or already fired its
    /// oneshot).
    fn submit(
        &self,
        fd: RawFd,
        filter: ffi::KFilter,
        flags: ffi::KFlags,
        key: usize,
        ignore_missing: bool,
    ) -> io::Result<()> {
        let change = ffi::kev(fd as usize, filter, flags, key);
        // SAFETY: `change` is a valid kevent for the duration of the
        // call; `nevents` is 0, so the null eventlist pointer is never
        // written through.
        let rc = unsafe {
            ffi::kevent(
                self.kq.as_raw_fd(),
                &change,
                1,
                std::ptr::null_mut(),
                0,
                std::ptr::null(),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if ignore_missing && err.raw_os_error() == Some(ffi::ENOENT) {
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    /// Drops any armed filters for `fd` and installs the requested
    /// interest as fresh `EV_ONESHOT` filters (the oneshot contract:
    /// kqueue auto-deletes the filter after it fires, so a reported fd
    /// is silent until `modify` re-arms it).
    fn arm(&self, fd: RawFd, ev: Event) -> io::Result<()> {
        self.submit(fd, ffi::EVFILT_READ, ffi::EV_DELETE, 0, true)?;
        self.submit(fd, ffi::EVFILT_WRITE, ffi::EV_DELETE, 0, true)?;
        if ev.readable {
            self.submit(
                fd,
                ffi::EVFILT_READ,
                ffi::EV_ADD | ffi::EV_ONESHOT,
                ev.key,
                false,
            )?;
        }
        if ev.writable {
            self.submit(
                fd,
                ffi::EVFILT_WRITE,
                ffi::EV_ADD | ffi::EV_ONESHOT,
                ev.key,
                false,
            )?;
        }
        Ok(())
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.submit(fd, ffi::EVFILT_READ, ffi::EV_DELETE, 0, true)?;
        self.submit(fd, ffi::EVFILT_WRITE, ffi::EV_DELETE, 0, true)
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        let mut buf = [ffi::kev(0, ffi::EVFILT_READ, 0, 0); 256];
        let ts;
        let ts_ptr = match timeout {
            None => std::ptr::null(),
            Some(d) => {
                ts = ffi::Timespec {
                    tv_sec: d.as_secs().min(i64::MAX as u64) as i64,
                    tv_nsec: d.subsec_nanos() as i64,
                };
                &ts as *const ffi::Timespec
            }
        };
        // SAFETY: `buf` is a valid, writable array of `buf.len()`
        // kevents and `ts_ptr` is null or points at a live Timespec;
        // the kernel writes at most `nevents` entries.
        let n = unsafe {
            ffi::kevent(
                self.kq.as_raw_fd(),
                std::ptr::null(),
                0,
                buf.as_mut_ptr(),
                buf.len() as i32,
                ts_ptr,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        let mut notified = false;
        for raw in buf.iter().take(n as usize) {
            let key = ffi::kev_key(raw);
            if key == NOTIFY_KEY {
                notified = true;
                continue;
            }
            if raw.flags & ffi::EV_ERROR != 0 {
                // A failed change surfaced in the event list: report
                // both directions so the consumer reaps the fd.
                events.push(Event::all(key));
                continue;
            }
            events.push(Event {
                key,
                readable: raw.filter == ffi::EVFILT_READ,
                writable: raw.filter == ffi::EVFILT_WRITE,
            });
        }
        Ok(notified)
    }
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd",
        target_os = "dragonfly"
    ))]
    Kqueue(KqueueBackend),
    Poll(Mutex<PollTable>),
}

// ------------------------------------------------------------- poller

/// A readiness poller over oneshot registrations. See the crate docs
/// for the contract; all methods are callable from any thread.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    notify_read: std::io::PipeReader,
    notify_write: std::io::PipeWriter,
    kind: BackendKind,
}

impl Poller {
    /// Creates a poller on the default backend for this platform
    /// (epoll on Linux, poll elsewhere; `QID_POLL_BACKEND=poll` forces
    /// the fallback).
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(BackendKind::default_kind())
    }

    /// Creates a poller on an explicit backend.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        let (notify_read, notify_write) = std::io::pipe()?;
        // Both ends non-blocking: `notify` must never block a worker
        // (a full pipe already implies a pending wake-up), and the
        // drain in `wait` must stop at EAGAIN.
        set_nonblocking(notify_read.as_raw_fd())?;
        set_nonblocking(notify_write.as_raw_fd())?;
        let backend = match kind {
            #[cfg(target_os = "linux")]
            BackendKind::Epoll => Backend::Epoll(EpollBackend::new(notify_read.as_raw_fd())?),
            #[cfg(any(
                target_os = "macos",
                target_os = "freebsd",
                target_os = "netbsd",
                target_os = "openbsd",
                target_os = "dragonfly"
            ))]
            BackendKind::Kqueue => Backend::Kqueue(KqueueBackend::new(notify_read.as_raw_fd())?),
            BackendKind::Poll => Backend::Poll(Mutex::new(PollTable::default())),
        };
        Ok(Poller {
            backend,
            notify_read,
            notify_write,
            kind,
        })
    }

    /// Which backend this poller runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.kind
    }

    /// Registers `source` under `ev.key` with the given interest,
    /// armed for exactly one readiness report.
    pub fn add(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.ctl(
                ffi::EPOLL_CTL_ADD,
                source.as_raw_fd(),
                EpollBackend::interest_bits(ev),
                ev.key,
            ),
            #[cfg(any(
                target_os = "macos",
                target_os = "freebsd",
                target_os = "netbsd",
                target_os = "openbsd",
                target_os = "dragonfly"
            ))]
            Backend::Kqueue(kqueue) => kqueue.arm(source.as_raw_fd(), ev),
            Backend::Poll(table) => {
                let mut table = table.lock().expect("poll table lock");
                if table.fds.contains_key(&source.as_raw_fd()) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                table.fds.insert(
                    source.as_raw_fd(),
                    PollReg {
                        key: ev.key,
                        readable: ev.readable,
                        writable: ev.writable,
                        armed: true,
                    },
                );
                Ok(())
            }
        }
    }

    /// Re-arms (and possibly re-keys / re-aims) an existing
    /// registration for one more readiness report.
    pub fn modify(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.ctl(
                ffi::EPOLL_CTL_MOD,
                source.as_raw_fd(),
                EpollBackend::interest_bits(ev),
                ev.key,
            ),
            #[cfg(any(
                target_os = "macos",
                target_os = "freebsd",
                target_os = "netbsd",
                target_os = "openbsd",
                target_os = "dragonfly"
            ))]
            Backend::Kqueue(kqueue) => kqueue.arm(source.as_raw_fd(), ev),
            Backend::Poll(table) => {
                let mut table = table.lock().expect("poll table lock");
                match table.fds.get_mut(&source.as_raw_fd()) {
                    Some(reg) => {
                        *reg = PollReg {
                            key: ev.key,
                            readable: ev.readable,
                            writable: ev.writable,
                            armed: true,
                        };
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Removes a registration. (Closing the descriptor also removes it
    /// from the epoll backend; calling `delete` first is still the
    /// tidy path and the only one the poll backend can observe.)
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.ctl(ffi::EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0),
            #[cfg(any(
                target_os = "macos",
                target_os = "freebsd",
                target_os = "netbsd",
                target_os = "openbsd",
                target_os = "dragonfly"
            ))]
            Backend::Kqueue(kqueue) => kqueue.delete(source.as_raw_fd()),
            Backend::Poll(table) => {
                let mut table = table.lock().expect("poll table lock");
                match table.fds.remove(&source.as_raw_fd()) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Blocks until at least one armed source is ready, `timeout`
    /// elapses, or [`Poller::notify`] is called; appends one [`Event`]
    /// per ready source (each then disarmed until re-armed with
    /// [`Poller::modify`]) and returns how many were appended. A plain
    /// notify wake-up or an interrupted wait returns `Ok(0)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        let notified = match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.wait(events, timeout)?,
            #[cfg(any(
                target_os = "macos",
                target_os = "freebsd",
                target_os = "netbsd",
                target_os = "openbsd",
                target_os = "dragonfly"
            ))]
            Backend::Kqueue(kqueue) => kqueue.wait(events, timeout)?,
            Backend::Poll(table) => self.poll_wait(table, events, timeout)?,
        };
        if notified {
            self.drain_notify();
        }
        Ok(events.len() - before)
    }

    /// Wakes a blocked [`Poller::wait`] from any thread. Coalesces: a
    /// full pipe means a wake-up is already pending, which is success.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.notify_write).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn drain_notify(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.notify_read).read(&mut buf) {
            if n < buf.len() {
                break;
            }
        }
    }

    /// The poll(2) wait: snapshot armed fds, poll, translate revents.
    fn poll_wait(
        &self,
        table: &Mutex<PollTable>,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<bool> {
        let mut fds: Vec<ffi::PollFd> = vec![ffi::PollFd {
            fd: self.notify_read.as_raw_fd(),
            events: ffi::POLLIN,
            revents: 0,
        }];
        {
            let table = table.lock().expect("poll table lock");
            for (&fd, reg) in &table.fds {
                if !reg.armed {
                    continue;
                }
                let mut bits = 0;
                if reg.readable {
                    bits |= ffi::POLLIN;
                }
                if reg.writable {
                    bits |= ffi::POLLOUT;
                }
                fds.push(ffi::PollFd {
                    fd,
                    events: bits,
                    revents: 0,
                });
            }
        }
        // SAFETY: `fds` is a valid, writable array of `fds.len()`
        // pollfds for the duration of the call.
        let n = unsafe {
            ffi::poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        let notified = fds[0].revents != 0;
        let mut table = table.lock().expect("poll table lock");
        for pfd in &fds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            // The registration may have changed while `poll` ran; only
            // report fds that are still armed under the same key space.
            let Some(reg) = table.fds.get_mut(&pfd.fd) else {
                continue;
            };
            if !reg.armed {
                continue;
            }
            reg.armed = false;
            let err = pfd.revents & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0;
            events.push(Event {
                key: reg.key,
                readable: pfd.revents & ffi::POLLIN != 0 || err,
                writable: pfd.revents & ffi::POLLOUT != 0 || err,
            });
        }
        Ok(notified)
    }
}

// Keep the module-level alias referenced so both cfg arms compile
// without an unused warning.
const _: Option<ffi::Unused> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<BackendKind> {
        #[cfg(target_os = "linux")]
        {
            vec![BackendKind::Epoll, BackendKind::Poll]
        }
        #[cfg(any(
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        ))]
        {
            vec![BackendKind::Kqueue, BackendKind::Poll]
        }
        #[cfg(not(any(
            target_os = "linux",
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd",
            target_os = "dragonfly"
        )))]
        {
            vec![BackendKind::Poll]
        }
    }

    /// A connected (client, server) TCP pair on loopback.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for kind in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(kind).unwrap());
            assert_eq!(poller.backend_kind(), kind);
            let waker = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: notify is not an I/O event");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{kind:?}: wait returned promptly on notify"
            );
            handle.join().unwrap();
        }
    }

    #[test]
    fn readiness_is_oneshot_until_rearmed() {
        for kind in backends() {
            let poller = Poller::with_backend(kind).unwrap();
            let (mut client, server) = tcp_pair();
            poller.add(&server, Event::readable(7)).unwrap();

            // Quiet socket: timeout, no events.
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: no data, no event");

            // Data arrives: exactly one report.
            client.write_all(b"x").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}");
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);

            // Still readable, but disarmed: oneshot means silence.
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: oneshot must not re-report");

            // Re-arm with pending data: fires again immediately.
            poller.modify(&server, Event::readable(9)).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: re-arm with pending data fires");
            assert_eq!(events[0].key, 9, "{kind:?}: modify re-keys");

            // Deleted: pending data no longer reported.
            poller.modify(&server, Event::readable(9)).unwrap();
            poller.delete(&server).unwrap();
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: deleted fds are silent");
        }
    }

    #[test]
    fn hangup_reports_readable() {
        for kind in backends() {
            let poller = Poller::with_backend(kind).unwrap();
            let (client, server) = tcp_pair();
            poller.add(&server, Event::readable(3)).unwrap();
            drop(client); // EOF
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: hangup wakes the reader");
            assert!(events[0].readable, "{kind:?}: reported as readable (EOF)");
        }
    }

    #[test]
    fn notify_key_is_reserved() {
        for kind in backends() {
            let poller = Poller::with_backend(kind).unwrap();
            let (_client, server) = tcp_pair();
            assert!(poller.add(&server, Event::readable(NOTIFY_KEY)).is_err());
        }
    }

    #[test]
    fn socket_option_helpers_apply() {
        let (client, mut server) = tcp_pair();
        set_recv_buffer(&server, 4096).unwrap();
        set_send_buffer(&server, 4096).unwrap();
        set_linger_zero(&client).unwrap();
        // Linger-zero close sends an RST instead of the FIN handshake;
        // the peer's read observes it as a reset (or, on lenient
        // stacks, an EOF) promptly rather than hanging.
        drop(client);
        server
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        match server.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("unexpected {n} bytes from a reset peer"),
        }
    }

    #[test]
    fn notify_coalesces_without_blocking() {
        // Far more notifies than the pipe holds: none may block or fail.
        let poller = Poller::with_backend(BackendKind::Poll).unwrap();
        for _ in 0..100_000 {
            poller.notify().unwrap();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        // Drained: a second wait times out quietly.
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "pipe was drained"
        );
    }
}
