//! Offline stand-in for the `polling` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the readiness-notification surface the
//! `qid-server` connection core uses, in the same oneshot style as the
//! real `polling` crate:
//!
//! * [`Poller::add`] registers a socket with a `usize` key and an
//!   interest ([`Event::readable`] / [`Event::writable`]);
//! * [`Poller::wait`] blocks until ≥ 1 registered source is ready (or a
//!   timeout), appending one [`Event`] per ready source;
//! * registrations are **oneshot**: once a source is reported it stays
//!   registered but disarmed until [`Poller::modify`] re-arms it, so
//!   one connection is never reported to two consumers at once;
//! * [`Poller::notify`] wakes a blocked [`Poller::wait`] from any
//!   thread (a self-pipe under the hood).
//!
//! Two backends implement that contract:
//!
//! * **epoll** (Linux): `O(ready)` per wait, the default — idle
//!   registrations are free, which is what lets thousands of quiet
//!   keep-alive connections coexist with microsecond dispatch.
//! * **poll(2)** (any Unix): rebuilds the `pollfd` array every wait, so
//!   each wait costs `O(registered)` — correct everywhere `poll` exists
//!   and the fallback when epoll is unavailable. Force it with
//!   `QID_POLL_BACKEND=poll` (useful for exercising the fallback in
//!   tests on Linux).
//!
//! Everything is `std` plus five libc symbols (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `poll`, `fcntl`) declared directly — std
//! already links libc, so no external crate is needed.

#![cfg_attr(not(unix), allow(unused))]

#[cfg(not(unix))]
compile_error!("the vendored polling shim only supports Unix targets");

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// The key [`Poller::notify`] wake-ups use internally. Never returned
/// from [`Poller::wait`] and rejected by [`Poller::add`].
pub const NOTIFY_KEY: usize = usize::MAX;

/// A readiness event: which registration fired and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// The source is readable (or has hung up / errored — a read will
    /// observe the condition).
    pub readable: bool,
    /// The source is writable.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

/// Which readiness syscall backs a [`Poller`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Linux `epoll(7)`: `O(ready)` waits.
    #[cfg(target_os = "linux")]
    Epoll,
    /// POSIX `poll(2)`: `O(registered)` waits, works everywhere.
    Poll,
}

impl BackendKind {
    /// The backend [`Poller::new`] would pick right now: `epoll` on
    /// Linux unless `QID_POLL_BACKEND=poll` is set, `poll` elsewhere.
    pub fn default_kind() -> BackendKind {
        #[cfg(target_os = "linux")]
        {
            if std::env::var_os("QID_POLL_BACKEND").is_some_and(|v| v == "poll") {
                BackendKind::Poll
            } else {
                BackendKind::Epoll
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            BackendKind::Poll
        }
    }

    /// Stable human-readable name (`"epoll"` / `"poll"`).
    pub fn name(self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            BackendKind::Epoll => "epoll",
            BackendKind::Poll => "poll",
        }
    }
}

/// The name of the backend [`Poller::new`] would pick right now.
pub fn default_backend_name() -> &'static str {
    BackendKind::default_kind().name()
}

// ------------------------------------------------------------------ ffi

mod ffi {
    use std::os::raw::{c_int, c_short, c_ulong, c_void};

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0x80000;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: c_int = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: c_int = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLLONESHOT: u32 = 1 << 30;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 (and
    /// only there), exactly as libc's definition does.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    #[cfg(target_os = "linux")]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// Avoids an unused-import warning on non-Linux targets.
    pub type Unused = c_void;
}

/// Flips a descriptor to non-blocking mode.
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL on a descriptor we own; no pointers are
    // involved and an invalid fd is reported through the return value.
    let flags = unsafe { ffi::fcntl(fd, ffi::F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: same contract as above, setting the flags we just read
    // plus O_NONBLOCK.
    if unsafe { ffi::fcntl(fd, ffi::F_SETFL, flags | ffi::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Milliseconds for the kernel timeout argument: `None` → block
/// forever; sub-millisecond waits round up so a short timeout never
/// becomes a busy-loop.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

// ------------------------------------------------------------ backends

/// One registration in the poll(2) backend's table.
#[derive(Clone, Copy, Debug)]
struct PollReg {
    key: usize,
    readable: bool,
    writable: bool,
    /// Oneshot emulation: cleared when the fd is reported, set again by
    /// `modify`.
    armed: bool,
}

#[derive(Debug, Default)]
struct PollTable {
    fds: HashMap<RawFd, PollReg>,
}

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct EpollBackend {
    epfd: OwnedFd,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new(notify_fd: RawFd) -> io::Result<EpollBackend> {
        // SAFETY: epoll_create1 takes no pointers; a failure is
        // reported through the return value.
        let raw = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `raw` is a fresh, valid epoll descriptor we own.
        let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
        let backend = EpollBackend { epfd };
        // The notify pipe is level-triggered and *not* oneshot: a
        // pending wake-up byte keeps reporting until drained.
        backend.ctl(ffi::EPOLL_CTL_ADD, notify_fd, ffi::EPOLLIN, NOTIFY_KEY)?;
        Ok(backend)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, key: usize) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events,
            data: key as u64,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; the epoll fd and target fd are live descriptors (an
        // invalid one is reported via the return value, not UB).
        if unsafe { ffi::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn interest_bits(ev: Event) -> u32 {
        let mut bits = ffi::EPOLLONESHOT;
        if ev.readable {
            bits |= ffi::EPOLLIN;
        }
        if ev.writable {
            bits |= ffi::EPOLLOUT;
        }
        bits
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        let mut buf = [ffi::EpollEvent { events: 0, data: 0 }; 1024];
        // SAFETY: `buf` is a valid, writable array of `buf.len()`
        // epoll_events; the kernel writes at most `maxevents` entries.
        let n = unsafe {
            ffi::epoll_wait(
                self.epfd.as_raw_fd(),
                buf.as_mut_ptr(),
                buf.len() as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        let mut notified = false;
        for raw in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let (bits, data) = (raw.events, raw.data);
            if data as usize == NOTIFY_KEY {
                notified = true;
                continue;
            }
            events.push(Event {
                key: data as usize,
                readable: bits & (ffi::EPOLLIN | ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                writable: bits & (ffi::EPOLLOUT | ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
            });
        }
        Ok(notified)
    }
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(Mutex<PollTable>),
}

// ------------------------------------------------------------- poller

/// A readiness poller over oneshot registrations. See the crate docs
/// for the contract; all methods are callable from any thread.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    notify_read: std::io::PipeReader,
    notify_write: std::io::PipeWriter,
    kind: BackendKind,
}

impl Poller {
    /// Creates a poller on the default backend for this platform
    /// (epoll on Linux, poll elsewhere; `QID_POLL_BACKEND=poll` forces
    /// the fallback).
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(BackendKind::default_kind())
    }

    /// Creates a poller on an explicit backend.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        let (notify_read, notify_write) = std::io::pipe()?;
        // Both ends non-blocking: `notify` must never block a worker
        // (a full pipe already implies a pending wake-up), and the
        // drain in `wait` must stop at EAGAIN.
        set_nonblocking(notify_read.as_raw_fd())?;
        set_nonblocking(notify_write.as_raw_fd())?;
        let backend = match kind {
            #[cfg(target_os = "linux")]
            BackendKind::Epoll => Backend::Epoll(EpollBackend::new(notify_read.as_raw_fd())?),
            BackendKind::Poll => Backend::Poll(Mutex::new(PollTable::default())),
        };
        Ok(Poller {
            backend,
            notify_read,
            notify_write,
            kind,
        })
    }

    /// Which backend this poller runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.kind
    }

    /// Registers `source` under `ev.key` with the given interest,
    /// armed for exactly one readiness report.
    pub fn add(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.ctl(
                ffi::EPOLL_CTL_ADD,
                source.as_raw_fd(),
                EpollBackend::interest_bits(ev),
                ev.key,
            ),
            Backend::Poll(table) => {
                let mut table = table.lock().expect("poll table lock");
                if table.fds.contains_key(&source.as_raw_fd()) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                table.fds.insert(
                    source.as_raw_fd(),
                    PollReg {
                        key: ev.key,
                        readable: ev.readable,
                        writable: ev.writable,
                        armed: true,
                    },
                );
                Ok(())
            }
        }
    }

    /// Re-arms (and possibly re-keys / re-aims) an existing
    /// registration for one more readiness report.
    pub fn modify(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.ctl(
                ffi::EPOLL_CTL_MOD,
                source.as_raw_fd(),
                EpollBackend::interest_bits(ev),
                ev.key,
            ),
            Backend::Poll(table) => {
                let mut table = table.lock().expect("poll table lock");
                match table.fds.get_mut(&source.as_raw_fd()) {
                    Some(reg) => {
                        *reg = PollReg {
                            key: ev.key,
                            readable: ev.readable,
                            writable: ev.writable,
                            armed: true,
                        };
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Removes a registration. (Closing the descriptor also removes it
    /// from the epoll backend; calling `delete` first is still the
    /// tidy path and the only one the poll backend can observe.)
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.ctl(ffi::EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0),
            Backend::Poll(table) => {
                let mut table = table.lock().expect("poll table lock");
                match table.fds.remove(&source.as_raw_fd()) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Blocks until at least one armed source is ready, `timeout`
    /// elapses, or [`Poller::notify`] is called; appends one [`Event`]
    /// per ready source (each then disarmed until re-armed with
    /// [`Poller::modify`]) and returns how many were appended. A plain
    /// notify wake-up or an interrupted wait returns `Ok(0)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        let notified = match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epoll) => epoll.wait(events, timeout)?,
            Backend::Poll(table) => self.poll_wait(table, events, timeout)?,
        };
        if notified {
            self.drain_notify();
        }
        Ok(events.len() - before)
    }

    /// Wakes a blocked [`Poller::wait`] from any thread. Coalesces: a
    /// full pipe means a wake-up is already pending, which is success.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.notify_write).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn drain_notify(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.notify_read).read(&mut buf) {
            if n < buf.len() {
                break;
            }
        }
    }

    /// The poll(2) wait: snapshot armed fds, poll, translate revents.
    fn poll_wait(
        &self,
        table: &Mutex<PollTable>,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<bool> {
        let mut fds: Vec<ffi::PollFd> = vec![ffi::PollFd {
            fd: self.notify_read.as_raw_fd(),
            events: ffi::POLLIN,
            revents: 0,
        }];
        {
            let table = table.lock().expect("poll table lock");
            for (&fd, reg) in &table.fds {
                if !reg.armed {
                    continue;
                }
                let mut bits = 0;
                if reg.readable {
                    bits |= ffi::POLLIN;
                }
                if reg.writable {
                    bits |= ffi::POLLOUT;
                }
                fds.push(ffi::PollFd {
                    fd,
                    events: bits,
                    revents: 0,
                });
            }
        }
        // SAFETY: `fds` is a valid, writable array of `fds.len()`
        // pollfds for the duration of the call.
        let n = unsafe {
            ffi::poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(err);
        }
        let notified = fds[0].revents != 0;
        let mut table = table.lock().expect("poll table lock");
        for pfd in &fds[1..] {
            if pfd.revents == 0 {
                continue;
            }
            // The registration may have changed while `poll` ran; only
            // report fds that are still armed under the same key space.
            let Some(reg) = table.fds.get_mut(&pfd.fd) else {
                continue;
            };
            if !reg.armed {
                continue;
            }
            reg.armed = false;
            let err = pfd.revents & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0;
            events.push(Event {
                key: reg.key,
                readable: pfd.revents & ffi::POLLIN != 0 || err,
                writable: pfd.revents & ffi::POLLOUT != 0 || err,
            });
        }
        Ok(notified)
    }
}

// Keep the module-level alias referenced so both cfg arms compile
// without an unused warning.
const _: Option<ffi::Unused> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<BackendKind> {
        #[cfg(target_os = "linux")]
        {
            vec![BackendKind::Epoll, BackendKind::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![BackendKind::Poll]
        }
    }

    /// A connected (client, server) TCP pair on loopback.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for kind in backends() {
            let poller = std::sync::Arc::new(Poller::with_backend(kind).unwrap());
            assert_eq!(poller.backend_kind(), kind);
            let waker = std::sync::Arc::clone(&poller);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Vec::new();
            let start = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: notify is not an I/O event");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{kind:?}: wait returned promptly on notify"
            );
            handle.join().unwrap();
        }
    }

    #[test]
    fn readiness_is_oneshot_until_rearmed() {
        for kind in backends() {
            let poller = Poller::with_backend(kind).unwrap();
            let (mut client, server) = tcp_pair();
            poller.add(&server, Event::readable(7)).unwrap();

            // Quiet socket: timeout, no events.
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: no data, no event");

            // Data arrives: exactly one report.
            client.write_all(b"x").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}");
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);

            // Still readable, but disarmed: oneshot means silence.
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: oneshot must not re-report");

            // Re-arm with pending data: fires again immediately.
            poller.modify(&server, Event::readable(9)).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: re-arm with pending data fires");
            assert_eq!(events[0].key, 9, "{kind:?}: modify re-keys");

            // Deleted: pending data no longer reported.
            poller.modify(&server, Event::readable(9)).unwrap();
            poller.delete(&server).unwrap();
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: deleted fds are silent");
        }
    }

    #[test]
    fn hangup_reports_readable() {
        for kind in backends() {
            let poller = Poller::with_backend(kind).unwrap();
            let (client, server) = tcp_pair();
            poller.add(&server, Event::readable(3)).unwrap();
            drop(client); // EOF
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: hangup wakes the reader");
            assert!(events[0].readable, "{kind:?}: reported as readable (EOF)");
        }
    }

    #[test]
    fn notify_key_is_reserved() {
        for kind in backends() {
            let poller = Poller::with_backend(kind).unwrap();
            let (_client, server) = tcp_pair();
            assert!(poller.add(&server, Event::readable(NOTIFY_KEY)).is_err());
        }
    }

    #[test]
    fn notify_coalesces_without_blocking() {
        // Far more notifies than the pipe holds: none may block or fail.
        let poller = Poller::with_backend(BackendKind::Poll).unwrap();
        for _ in 0..100_000 {
            poller.notify().unwrap();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        // Drained: a second wait times out quietly.
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "pipe was drained"
        );
    }
}
