//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::TestRng;

/// An inclusive-exclusive length specification for [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max_exclusive {
            return self.min;
        }
        rng.random_range(self.min..self.max_exclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (start, end) = r.into_inner();
        assert!(start <= end, "empty vec size range");
        SizeRange {
            min: start,
            max_exclusive: end + 1,
        }
    }
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
