//! The [`Strategy`] trait and its combinators.

use rand::RngExt;

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
/// expansion).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.random_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}
