//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of proptest this workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`Strategy`] with `prop_map`, `prop_flat_map` and `boxed`,
//! * range, tuple, [`Just`], string-pattern and
//!   [`collection::vec`] strategies,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Semantics: each test body runs for `ProptestConfig::cases` random
//! cases drawn from a deterministic seed (override with the
//! `PROPTEST_SEED` environment variable). Failing cases report the
//! seed and case index; there is **no shrinking**.

use std::ops::{Range, RangeInclusive};

use rand::{RngExt, SeedableRng};

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (only the fields this workspace touches).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a failed `prop_assert*`.
    Fail(String),
    /// The case was vetoed by `prop_assume!`; it is re-drawn.
    Reject(String),
}

/// Drives one property: draws cases until `config.cases` succeed.
///
/// Used by the expansion of [`proptest!`]; not part of proptest's real
/// public API surface.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 64;
    let mut case_index: u64 = 0;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes; seed {seed})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {case_index} (seed {seed}, \
                     set PROPTEST_SEED to reproduce): {msg}"
                );
            }
        }
        case_index += 1;
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Scalar strategies: ranges over the primitive types the workspace uses.
// ---------------------------------------------------------------------------

macro_rules! impl_small_int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_small_int_range_strategy!(usize, u8, u16, u32, u64, u128, isize, i8, i16, i32, i64, i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.random::<f32>() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// ---------------------------------------------------------------------------
// String pattern strategy: `"[a-z]{0,6}"` and friends.
// ---------------------------------------------------------------------------

/// A `&str` is a strategy producing strings that match it as a tiny
/// regex subset: literals, `[..]` classes with ranges, and the
/// quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a (possibly escaped) literal.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling \\ in {pattern:?}"));
                i += 1;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    other => vec![other],
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse::<usize>().unwrap_or(0);
                        let hi = hi.trim().parse::<usize>().unwrap_or(lo + 8);
                        (lo, hi)
                    }
                    None => {
                        let n = spec.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = rng.random_range(min..=max);
        for _ in 0..count {
            let pick = rng.random_range(0..alphabet.len());
            out.push(alphabet[pick]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty [] class in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j], class[j + 2]);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(class[j]);
            j += 1;
        }
    }
    set
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items (attributes and doc
/// comments included).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome
            });
        }
    )*};
}

/// Fails the current case (with early return) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
