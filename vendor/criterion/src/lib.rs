//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the API surface the workspace's benches use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups, [`BenchmarkId`] and `Bencher::iter` — with a
//! deliberately simple measurement loop: a short warm-up, then a
//! fixed-duration timing window, reporting mean wall-clock time per
//! iteration to stderr.
//!
//! It exists so `cargo bench --no-run` keeps every bench target
//! compiling (CI's bit-rot check) and `cargo bench` produces usable
//! coarse numbers, not statistically rigorous ones.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(&name, 50, f);
        self
    }
}

/// A named benchmark within a group (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples (coarsely honoured).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; groups report as
    /// they run).
    pub fn finish(self) {}
}

/// Hands the benchmark body its timing loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, running it repeatedly inside this bencher's budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        for _ in 0..3 {
            std_black_box(f());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.budget {
            std_black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Scale the timing window with the requested sample size so
    // `sample_size(10)` (criterion's "this is expensive" hint) still
    // shortens heavy benches.
    let budget = Duration::from_millis((2 * sample_size as u64).clamp(20, 300));
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget,
    };
    f(&mut b);
    if b.iters_done == 0 {
        eprintln!("bench {label:<44} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters_done);
    eprintln!(
        "bench {label:<44} {:>12} ns/iter ({} iters)",
        per_iter, b.iters_done
    );
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target built from [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
