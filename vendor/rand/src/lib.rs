//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256** seeded via SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng`] — the core `next_u32`/`next_u64` trait used as a generic
//!   bound (`R: Rng + ?Sized`),
//! * [`RngExt`] — `random`, `random_range`, `random_bool`, blanket
//!   implemented for every [`Rng`].
//!
//! Streams are deterministic per seed (a property the test suites rely
//! on) but do **not** match upstream `rand`'s output byte-for-byte.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

pub use rngs::StdRng;

/// A source of randomness: the minimal core trait.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Element types [`RngExt::random_range`] can produce.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)` or `[low, high]`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

/// Ranges that [`RngExt::random_range`] accepts, parameterised by the
/// element type so integer literals infer from the expected type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the (non-empty) range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(rng, start, end, true)
    }
}

// Uniform draw from [0, span) without modulo bias (Lemire's method
// with rejection), operating on u64 spans.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless lo falls below the bias
        // threshold (2^64 mod span).
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "random_range: empty range {low}..={high}");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (low as $wide).wrapping_add(uniform_below(rng, span + 1) as $wide) as $ty
                } else {
                    assert!(low < high, "random_range: empty range {low}..{high}");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    (low as $wide).wrapping_add(uniform_below(rng, span) as $wide) as $ty
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    usize => u64,
    u64 => u64,
    u32 => u64,
    u16 => u64,
    u8 => u64,
    isize => i64,
    i64 => i64,
    i32 => i64,
    i16 => i64,
    i8 => i64,
);

macro_rules! impl_sample_uniform_int128 {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // 128 random bits with modulo reduction; the bias is
                // negligible for any span this workspace draws from.
                let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if inclusive {
                    assert!(low <= high, "random_range: empty range {low}..={high}");
                    let span = (high as u128).wrapping_sub(low as u128);
                    if span == u128::MAX {
                        return x as $ty;
                    }
                    (low as u128).wrapping_add(x % (span + 1)) as $ty
                } else {
                    assert!(low < high, "random_range: empty range {low}..{high}");
                    let span = (high as u128).wrapping_sub(low as u128);
                    (low as u128).wrapping_add(x % span) as $ty
                }
            }
        }
    )*};
}

impl_sample_uniform_int128!(u128, i128);

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "random_range: empty range {low}..{high}");
        low + f64::standard_sample(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: Rng + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "random_range: empty range {low}..{high}");
        low + f32::standard_sample(rng) * (high - low)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the
    /// whole type, `bool` fair).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`, which must be non-empty.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} out of range"
        );
        f64::standard_sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(u8::MIN..=u8::MAX);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.02);
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
    }
}
