//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**
/// with its state expanded from the seed by SplitMix64.
///
/// Not cryptographically secure; statistically solid for simulation
/// and property-testing workloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's raw xoshiro256** state, for checkpointing.
    /// `from_state(rng.state())` continues the exact output sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256** (the
    /// generator would emit zeros forever); it cannot arise from
    /// `seed_from_u64`, so reject it rather than resume a dead stream.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0; 4] {
            return None;
        }
        Some(StdRng { s })
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
