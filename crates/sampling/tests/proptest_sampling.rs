//! Property tests for the sampling substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_sampling::alias::AliasTable;
use qid_sampling::birthday::{
    collision_prob_lower_bound, non_collision_prob_uniform, q_for_collision,
};
use qid_sampling::pairs::{pair_count, rank_pair, sample_pair, unrank_pair};
use qid_sampling::reservoir::{MultiReservoir, Reservoir, SkipReservoir};
use qid_sampling::swor::{sample_indices, sample_indices_fisher_yates, sample_indices_floyd};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both SWOR algorithms return k distinct in-range indices.
    #[test]
    fn swor_postconditions(n in 1usize..500, k_frac in 0.0f64..1.0, seed in 0u64..1000) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        for sample in [
            sample_indices_floyd(&mut rng, n, k),
            sample_indices_fisher_yates(&mut rng, n, k),
            sample_indices(&mut rng, n, k),
        ] {
            prop_assert_eq!(sample.len(), k);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k, "duplicates in {:?}", sample);
            prop_assert!(sample.iter().all(|&i| i < n));
        }
    }

    /// Pair rank ↔ unrank is a bijection on arbitrary ranks.
    #[test]
    fn pair_bijection(n in 2usize..5000, seed in 0u64..10_000) {
        let universe = pair_count(n);
        let rank = (seed as u128).pow(2) % universe;
        let (i, j) = unrank_pair(rank);
        prop_assert!(i < j);
        prop_assert!(j < n);
        prop_assert_eq!(rank_pair(i, j), rank);
    }

    /// sample_pair always returns ordered distinct in-range pairs.
    #[test]
    fn sample_pair_postconditions(n in 2usize..100, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (i, j) = sample_pair(&mut rng, n);
        prop_assert!(i < j && j < n);
    }

    /// Reservoirs hold min(k, seen) items, all from the stream.
    #[test]
    fn reservoir_postconditions(k in 1usize..20, n in 0usize..200, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = Reservoir::new(k);
        let mut l = SkipReservoir::new(k);
        for x in 0..n {
            r.push(x, &mut rng);
            l.push(x, &mut rng);
        }
        prop_assert_eq!(r.items().len(), k.min(n));
        prop_assert_eq!(l.items().len(), k.min(n));
        prop_assert!(r.items().iter().all(|&x| x < n));
        prop_assert!(l.items().iter().all(|&x| x < n));
        // Without-replacement: no duplicates.
        let mut seen = r.items().to_vec();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), k.min(n));
        let mut seen = l.items().to_vec();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), k.min(n));
    }

    /// Multi-reservoir slots are independent 2-subsets of the stream.
    #[test]
    fn multi_reservoir_postconditions(s in 1usize..12, n in 2usize..150, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mr = MultiReservoir::new(s, 2);
        for x in 0..n {
            mr.push(&x, &mut rng);
        }
        prop_assert_eq!(mr.slots().len(), s);
        for slot in mr.slots() {
            prop_assert_eq!(slot.len(), 2);
            prop_assert!(slot[0] < n && slot[1] < n);
            prop_assert_ne!(slot[0], slot[1]);
        }
    }

    /// Birthday: the Theorem 4 lower bound never exceeds the exact
    /// collision probability, and q_for_collision delivers ≤ δ*.
    #[test]
    fn birthday_bounds(n_bins in 2u64..2000, q in 0u64..300, delta in 0.001f64..0.9) {
        let exact = 1.0 - non_collision_prob_uniform(n_bins, q);
        let bound = collision_prob_lower_bound(n_bins, q.max(1));
        if q >= 1 {
            prop_assert!(bound <= exact + 1e-9, "bound {bound} > exact {exact}");
        }
        let q_needed = q_for_collision(n_bins, delta);
        prop_assert!(non_collision_prob_uniform(n_bins, q_needed) <= delta + 1e-9);
    }

    /// Alias tables sample only positive-weight categories.
    #[test]
    fn alias_support(weights in proptest::collection::vec(0.0f64..10.0, 1..20), seed in 0u64..100) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 0.1);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let c = table.sample(&mut rng);
            prop_assert!(c < weights.len());
            prop_assert!(weights[c] > 0.0, "sampled zero-weight category {c}");
        }
    }
}
