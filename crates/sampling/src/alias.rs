//! Walker's alias method for O(1) multinomial sampling.
//!
//! The paper's Section 2.1 analyses drawing balls whose colors follow
//! the multinomial distribution `D_s = (s_1/n, …, s_n/n)` given by a
//! clique-size profile `s`. The worst-case experiments draw millions of
//! such balls; the alias method makes each draw O(1) after O(n) setup.

use rand::{Rng, RngExt};

/// A precomputed alias table for a fixed discrete distribution.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability per bucket.
    prob: Vec<f64>,
    /// Alias (fallback) bucket per bucket.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must be finite, non-negative, with positive sum"
        );
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        // Scaled weights; a bucket is "small" if its scaled weight < 1.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(
                    w >= 0.0 && w.is_finite(),
                    "negative or non-finite weight {w}"
                );
                w * n as f64 / total
            })
            .collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining buckets (numerical leftovers) accept outright.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True iff the table is empty (never — construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        let u: f64 = rng.random();
        if u < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights() {
        let freqs = empirical(&[1.0, 1.0, 1.0, 1.0], 40_000, 1);
        for f in freqs {
            assert!((0.22..0.28).contains(&f), "frequency {f}");
        }
    }

    #[test]
    fn skewed_weights() {
        let freqs = empirical(&[8.0, 1.0, 1.0], 60_000, 2);
        assert!(
            (0.77..0.83).contains(&freqs[0]),
            "head frequency {}",
            freqs[0]
        );
        assert!((0.08..0.12).contains(&freqs[1]));
        assert!((0.08..0.12).contains(&freqs[2]));
    }

    #[test]
    fn zero_weight_never_sampled() {
        let freqs = empirical(&[1.0, 0.0, 1.0], 20_000, 3);
        assert_eq!(freqs[1], 0.0);
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn unnormalised_ok() {
        // Same distribution whether weights sum to 1 or 100.
        let a = empirical(&[0.5, 0.5], 30_000, 5);
        let b = empirical(&[50.0, 50.0], 30_000, 5);
        assert!((a[0] - b[0]).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic]
    fn zero_sum_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
