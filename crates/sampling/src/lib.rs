//! # qid-sampling — uniform sampling substrate
//!
//! Every algorithm in Hildebrant–Le–Ta–Vu (PODS 2023) is "an algorithm
//! based on uniform sampling": it draws tuples or pairs of tuples
//! uniformly at random and answers queries from the sample alone. This
//! crate provides that machinery, built from scratch:
//!
//! * [`swor`] — sampling `k` distinct indices from `0..n` (Floyd's
//!   algorithm for `k ≪ n`, partial Fisher–Yates otherwise) — the
//!   "sample without replacement Θ(m/√ε) tuples" step of Algorithm 1.
//! * [`reservoir`] — one-pass reservoirs: Algorithm R and the skip-based
//!   Algorithm L, plus [`reservoir::MultiReservoir`] (many independent
//!   reservoirs sharing one skip heap) which yields one-pass uniform
//!   *pair* sampling for the Motwani–Xu filter in the streaming model.
//! * [`pairs`] — unordered-pair (un)ranking and uniform pair samplers
//!   with and without replacement.
//! * [`alias`] — Walker's alias method for multinomial draws, used by the
//!   worst-case clique-profile experiments (`D_s` in the paper's
//!   Section 2.1).
//! * [`birthday`] — the birthday-problem calculators of Theorem 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod birthday;
pub mod pairs;
pub mod reservoir;
pub mod swor;

pub use alias::AliasTable;
pub use birthday::{collision_prob_lower_bound, non_collision_prob_uniform, q_for_collision};
pub use pairs::{pair_count, rank_pair, sample_pair, unrank_pair, PairSampler};
pub use reservoir::{MultiReservoir, Reservoir, SkipReservoir, SkipState};
pub use swor::{sample_indices, sample_indices_fisher_yates, sample_indices_floyd};
