//! Unordered pairs: counting, (un)ranking, uniform sampling.
//!
//! The Motwani–Xu filter samples `Θ(m/ε)` *pairs of tuples* uniformly;
//! the non-separation sketch of Theorem 2 samples `Θ(k log m / (α ε²))`
//! pairs. These helpers provide exact uniform pair sampling with and
//! without replacement, via a colexicographic bijection between
//! `{0, …, C(n,2)−1}` and unordered pairs `(i, j)`, `i < j`.

use rand::{Rng, RngExt};

use crate::swor::sample_indices_floyd;

/// `C(n, 2)` as a `u128` (exact for any `usize` n).
pub fn pair_count(n: usize) -> u128 {
    let n = n as u128;
    n * n.saturating_sub(1) / 2
}

/// Colexicographic rank of the unordered pair `(i, j)`:
/// `rank = C(j, 2) + i` for `i < j`.
///
/// # Panics
/// Panics if `i >= j`.
pub fn rank_pair(i: usize, j: usize) -> u128 {
    assert!(i < j, "rank_pair requires i < j, got ({i}, {j})");
    pair_count(j) + i as u128
}

/// Inverse of [`rank_pair`]: the pair `(i, j)` with `i < j` whose
/// colex rank is `rank`.
///
/// # Panics
/// Panics if `rank >= C(n, 2)` for every `n` (i.e. the implied `j`
/// exceeds `usize::MAX` — practically unreachable).
pub fn unrank_pair(rank: u128) -> (usize, usize) {
    // j is the largest integer with C(j,2) <= rank; start from the
    // float sqrt and fix up (float error is at most a few ulps).
    let approx = ((2.0 * rank as f64).sqrt()).floor() as u128;
    let mut j = approx.max(1);
    while pair_count_u128(j + 1) <= rank {
        j += 1;
    }
    while pair_count_u128(j) > rank {
        j -= 1;
    }
    let i = rank - pair_count_u128(j);
    (
        usize::try_from(i).expect("pair index overflows usize"),
        usize::try_from(j).expect("pair index overflows usize"),
    )
}

fn pair_count_u128(n: u128) -> u128 {
    n * n.saturating_sub(1) / 2
}

/// Samples one unordered pair of distinct indices from `0..n`,
/// uniformly, by rejection (two draws; expected < 2.1 draws for n ≥ 10).
///
/// Returned as `(i, j)` with `i < j`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn sample_pair<R: Rng + ?Sized>(rng: &mut R, n: usize) -> (usize, usize) {
    assert!(n >= 2, "need n >= 2 to sample a pair, got {n}");
    loop {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            return (a.min(b), a.max(b));
        }
    }
}

/// Uniform samplers over the `C(n,2)` unordered pairs of `0..n`.
#[derive(Clone, Copy, Debug)]
pub struct PairSampler {
    n: usize,
}

impl PairSampler {
    /// Creates a sampler over pairs of `0..n`.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need n >= 2 to sample pairs, got {n}");
        PairSampler { n }
    }

    /// The number of distinct pairs `C(n, 2)`.
    pub fn universe(&self) -> u128 {
        pair_count(self.n)
    }

    /// `s` i.i.d. uniform pairs (with replacement across draws).
    pub fn with_replacement<R: Rng + ?Sized>(&self, rng: &mut R, s: usize) -> Vec<(usize, usize)> {
        (0..s).map(|_| sample_pair(rng, self.n)).collect()
    }

    /// `s` *distinct* uniform pairs (a uniform `s`-subset of all pairs),
    /// via Floyd's algorithm over pair ranks.
    ///
    /// # Panics
    /// Panics if `s > C(n, 2)` or `C(n, 2)` exceeds `usize::MAX`
    /// (beyond ~6 billion rows on 64-bit).
    pub fn without_replacement<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        s: usize,
    ) -> Vec<(usize, usize)> {
        let universe = usize::try_from(self.universe())
            .expect("pair universe exceeds usize; use with_replacement");
        assert!(
            s <= universe,
            "cannot sample {s} distinct pairs from {universe}"
        );
        sample_indices_floyd(rng, universe, s)
            .into_iter()
            .map(|r| unrank_pair(r as u128))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn pair_count_basics() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
        assert_eq!(pair_count(5), 10);
        assert_eq!(pair_count(581_012), 581_012u128 * 581_011 / 2);
    }

    #[test]
    fn rank_unrank_roundtrip_exhaustive() {
        let n = 40;
        let mut seen = HashSet::new();
        for j in 1..n {
            for i in 0..j {
                let r = rank_pair(i, j);
                assert!(r < pair_count(n));
                assert!(seen.insert(r), "rank collision at ({i},{j})");
                assert_eq!(unrank_pair(r), (i, j));
            }
        }
        assert_eq!(seen.len() as u128, pair_count(n));
    }

    #[test]
    fn unrank_large_ranks() {
        let n: usize = 1_000_000;
        let last = pair_count(n) - 1;
        assert_eq!(unrank_pair(last), (n - 2, n - 1));
        assert_eq!(unrank_pair(0), (0, 1));
    }

    #[test]
    #[should_panic(expected = "requires i < j")]
    fn rank_rejects_unordered() {
        let _ = rank_pair(3, 3);
    }

    #[test]
    fn sample_pair_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 30_000;
        let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
        for _ in 0..trials {
            *counts.entry(sample_pair(&mut rng, 4)).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        for (&p, &c) in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.12, "pair {p:?} deviates {dev}");
        }
    }

    #[test]
    fn with_replacement_count_and_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let ps = PairSampler::new(100);
        let pairs = ps.with_replacement(&mut rng, 500);
        assert_eq!(pairs.len(), 500);
        assert!(pairs.iter().all(|&(i, j)| i < j && j < 100));
    }

    #[test]
    fn without_replacement_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let ps = PairSampler::new(30);
        let pairs = ps.without_replacement(&mut rng, 200);
        assert_eq!(pairs.len(), 200);
        let set: HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 200, "duplicate pair sampled");
        assert!(pairs.iter().all(|&(i, j)| i < j && j < 30));
    }

    #[test]
    fn without_replacement_all_pairs() {
        let mut rng = StdRng::seed_from_u64(4);
        let ps = PairSampler::new(6);
        let pairs = ps.without_replacement(&mut rng, 15);
        let set: HashSet<_> = pairs.into_iter().collect();
        assert_eq!(set.len(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn without_replacement_too_many() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = PairSampler::new(4).without_replacement(&mut rng, 7);
    }

    #[test]
    #[should_panic(expected = "need n >= 2")]
    fn sampler_rejects_tiny_n() {
        let _ = PairSampler::new(1);
    }
}
