//! The birthday problem (the paper's Theorem 4).
//!
//! Throwing `q` balls into `N` bins uniformly at random collides with
//! probability `C(N, q) ≥ 1 − e^{−q(q−1)/(2N)}`; hence taking
//! `q ≥ ½(1 + √(8N ln(1/δ*) + 1))` makes the non-collision probability
//! at most `δ*`. These closed forms drive both the sample-size choices
//! in the upper-bound proof (Lemma 2) and the lower-bound experiments.

/// Exact probability of *no* collision when throwing `q` balls into `N`
/// equally likely bins: `∏_{i=1}^{q−1} (1 − i/N)`.
///
/// Computed in log-space for numerical stability; returns 0 when
/// `q > N` (pigeonhole).
///
/// # Panics
/// Panics if `N == 0`.
pub fn non_collision_prob_uniform(n_bins: u64, q: u64) -> f64 {
    assert!(n_bins > 0, "need at least one bin");
    if q <= 1 {
        return 1.0;
    }
    if q > n_bins {
        return 0.0;
    }
    let n = n_bins as f64;
    let mut log_p = 0.0f64;
    for i in 1..q {
        log_p += (1.0 - i as f64 / n).ln();
    }
    log_p.exp()
}

/// The paper's Theorem 4 lower bound on the collision probability:
/// `C(N, q) ≥ 1 − e^{−q(q−1)/(2N)}`.
///
/// # Panics
/// Panics if `N == 0`.
pub fn collision_prob_lower_bound(n_bins: u64, q: u64) -> f64 {
    assert!(n_bins > 0, "need at least one bin");
    let q = q as f64;
    1.0 - (-q * (q - 1.0) / (2.0 * n_bins as f64)).exp()
}

/// The sample size from Theorem 4: the smallest of the paper's two
/// sufficient conditions,
/// `q ≥ ½(1 + √(8N ln(1/δ*) + 1))`,
/// guaranteeing non-collision probability at most `δ*`.
///
/// # Panics
/// Panics if `δ*` is not in `(0, 1)` or `N == 0`.
pub fn q_for_collision(n_bins: u64, delta_star: f64) -> u64 {
    assert!(n_bins > 0, "need at least one bin");
    assert!(
        delta_star > 0.0 && delta_star < 1.0,
        "delta_star must be in (0,1), got {delta_star}"
    );
    let n = n_bins as f64;
    let q = 0.5 * (1.0 + (8.0 * n * (1.0 / delta_star).ln() + 1.0).sqrt());
    q.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_birthday_paradox() {
        // 23 people, 365 days: collision probability ≈ 0.507.
        let p = 1.0 - non_collision_prob_uniform(365, 23);
        assert!((0.50..0.52).contains(&p), "got {p}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(non_collision_prob_uniform(10, 0), 1.0);
        assert_eq!(non_collision_prob_uniform(10, 1), 1.0);
        assert_eq!(non_collision_prob_uniform(10, 11), 0.0);
        assert_eq!(non_collision_prob_uniform(1, 2), 0.0);
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        for &(n, q) in &[(365u64, 23u64), (1000, 10), (50, 8), (10_000, 200)] {
            let exact = 1.0 - non_collision_prob_uniform(n, q);
            let bound = collision_prob_lower_bound(n, q);
            assert!(
                bound <= exact + 1e-12,
                "bound {bound} exceeds exact {exact} for N={n}, q={q}"
            );
        }
    }

    #[test]
    fn q_for_collision_suffices() {
        for &(n, delta) in &[(365u64, 0.01f64), (10_000, 0.001), (100, 0.1)] {
            let q = q_for_collision(n, delta);
            // Sampling q balls must make non-collision ≤ delta.
            let noncol = non_collision_prob_uniform(n, q);
            assert!(
                noncol <= delta,
                "q={q} gives non-collision {noncol} > {delta} for N={n}"
            );
        }
    }

    #[test]
    fn q_grows_like_sqrt_n() {
        let q1 = q_for_collision(100, 0.01) as f64;
        let q2 = q_for_collision(10_000, 0.01) as f64;
        let ratio = q2 / q1;
        // √(10000/100) = 10; allow slack for the additive terms.
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "delta_star")]
    fn rejects_bad_delta() {
        let _ = q_for_collision(10, 1.5);
    }
}
