//! Sampling `k` distinct indices from `0..n` without replacement.

use std::collections::HashSet;

use rand::{Rng, RngExt};

/// Samples `k` distinct indices from `0..n` uniformly, choosing the
/// algorithm by density:
///
/// * `k ≤ n/16` → [`sample_indices_floyd`] — O(k) time/space, no O(n)
///   allocation (important when `n` is the 581k-row Covtype and `k` is a
///   few thousand samples).
/// * otherwise → [`sample_indices_fisher_yates`] — O(n) but cache-friendly.
///
/// The result is in *uniformly random order* (both algorithms below
/// guarantee this), so callers may use prefixes as smaller samples.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    if k <= n / 16 {
        sample_indices_floyd(rng, n, k)
    } else {
        sample_indices_fisher_yates(rng, n, k)
    }
}

/// Floyd's algorithm: O(k) expected time and space, independent of `n`.
///
/// Robert Floyd's classic trick: for `j` in `n−k..n`, draw
/// `t ∈ {0, …, j}`; insert `t` unless already present, in which case
/// insert `j`. Every `k`-subset is produced with probability `1/C(n,k)`.
/// A final Fisher–Yates shuffle of the (small) result randomises order.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices_floyd<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k * 2);
    let mut out: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    // Floyd emits in a biased order (later slots skew large); shuffle.
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Partial Fisher–Yates: O(n) space, exactly `k` swaps, random order.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices_fisher_yates<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn assert_distinct_in_range(sample: &[usize], n: usize, k: usize) {
        assert_eq!(sample.len(), k);
        let set: HashSet<usize> = sample.iter().copied().collect();
        assert_eq!(set.len(), k, "sample has duplicates: {sample:?}");
        assert!(sample.iter().all(|&i| i < n));
    }

    #[test]
    fn floyd_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, k) in &[(10, 3), (100, 100), (1000, 1), (5, 0)] {
            let s = sample_indices_floyd(&mut rng, n, k);
            assert_distinct_in_range(&s, n, k);
        }
    }

    #[test]
    fn fisher_yates_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(n, k) in &[(10, 3), (100, 100), (1000, 999), (5, 0)] {
            let s = sample_indices_fisher_yates(&mut rng, n, k);
            assert_distinct_in_range(&s, n, k);
        }
    }

    #[test]
    fn dispatcher_picks_both_paths() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_distinct_in_range(&sample_indices(&mut rng, 1000, 10), 1000, 10);
        assert_distinct_in_range(&sample_indices(&mut rng, 100, 90), 100, 90);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn floyd_rejects_k_gt_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_indices_floyd(&mut rng, 3, 4);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn fy_rejects_k_gt_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_indices_fisher_yates(&mut rng, 3, 4);
    }

    /// χ²-style uniformity smoke test: every 2-subset of {0..4} should
    /// appear with roughly equal frequency (C(5,2)=10 subsets).
    #[test]
    fn floyd_subsets_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 20_000;
        let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
        for _ in 0..trials {
            let mut s = sample_indices_floyd(&mut rng, 5, 2);
            s.sort_unstable();
            *counts.entry((s[0], s[1])).or_default() += 1;
        }
        assert_eq!(counts.len(), 10);
        let expected = trials as f64 / 10.0;
        for (&pair, &c) in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "subset {pair:?} count {c} deviates {dev:.2}");
        }
    }

    /// Order randomisation: the first element of a Floyd sample of size 2
    /// from {0,1} should be 0 about half the time.
    #[test]
    fn floyd_order_is_random() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut zero_first = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let s = sample_indices_floyd(&mut rng, 2, 2);
            if s[0] == 0 {
                zero_first += 1;
            }
        }
        let frac = zero_first as f64 / trials as f64;
        assert!((0.45..0.55).contains(&frac), "first-element bias: {frac}");
    }

    #[test]
    fn full_sample_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = sample_indices(&mut rng, 50, 50);
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
