//! One-pass reservoir sampling.
//!
//! The paper observes that its sampling algorithms run in the streaming
//! model with space proportional to the sample size. These reservoirs
//! are the mechanism: after consuming any prefix of a stream, a
//! reservoir of capacity `k` holds a uniform `k`-subset of that prefix.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::{Rng, RngExt};

/// Vitter's **Algorithm R**: O(1) work per item, one RNG draw per item.
///
/// ```
/// use qid_sampling::Reservoir;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut res = Reservoir::new(3);
/// for x in 0..100 {
///     res.push(x, &mut rng);
/// }
/// assert_eq!(res.items().len(), 3);
/// assert_eq!(res.seen(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    capacity: usize,
    items: Vec<T>,
    seen: usize,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding up to `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            items: Vec::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Offers one item; returns `true` if it was retained (possibly
    /// displacing an earlier one).
    pub fn push<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return true;
        }
        let j = rng.random_range(0..self.seen);
        if j < self.capacity {
            self.items[j] = item;
            true
        } else {
            false
        }
    }

    /// The current sample (uniform over all items seen).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// The configured capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Li's **Algorithm L**: skip-based reservoir with O(k log(n/k)) total
/// RNG draws instead of O(n).
///
/// After the reservoir fills, the algorithm computes geometric skip
/// lengths; items inside a skip are rejected with *zero* per-item RNG
/// work. For sketches over multi-hundred-thousand-row streams this is
/// the difference between 581k draws and a few hundred.
#[derive(Clone, Debug)]
pub struct SkipReservoir<T> {
    capacity: usize,
    items: Vec<T>,
    seen: usize,
    /// Index (0-based among offered items) of the next item to accept.
    next_accept: usize,
    /// Algorithm L's running weight `W`.
    w: f64,
}

impl<T> SkipReservoir<T> {
    /// Creates a reservoir holding up to `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        SkipReservoir {
            capacity,
            items: Vec::with_capacity(capacity),
            seen: 0,
            next_accept: 0,
            w: 1.0,
        }
    }

    /// Draws the next accept index. Called when `self.seen` equals the
    /// index of the next incoming item; a skip of zero accepts it.
    fn schedule_next<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // W ← W · U1^{1/k};  skip ← ⌊log U2 / log(1−W)⌋
        let u1: f64 = rng.random();
        self.w *= u1.powf(1.0 / self.capacity as f64);
        let u2: f64 = rng.random();
        let skip = (u2.ln() / (1.0 - self.w).ln()).floor();
        // Guard against degenerate W (w → 0 or 1 under fp rounding).
        let skip = if skip.is_finite() && skip >= 0.0 {
            skip as usize
        } else {
            usize::MAX / 2
        };
        self.next_accept = self.seen.saturating_add(skip);
    }

    /// Offers one item; returns `true` if it was retained.
    pub fn push<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) -> bool {
        if self.items.len() < self.capacity {
            self.items.push(item);
            self.seen += 1;
            if self.items.len() == self.capacity {
                self.schedule_next(rng);
            }
            return true;
        }
        let accept = self.seen == self.next_accept;
        self.seen += 1;
        if accept {
            let slot = rng.random_range(0..self.capacity);
            self.items[slot] = item;
            self.schedule_next(rng);
        }
        accept
    }

    /// The current sample (uniform over all items seen).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// The reservoir's scalar state, for checkpointing. Together with a
    /// copy of [`items`](Self::items) this is everything Algorithm L
    /// carries between items; [`SkipReservoir::resume`] rebuilds a
    /// reservoir that continues the exact same trajectory (same RNG ⇒
    /// same accepts, same slots, same final sample).
    pub fn state(&self) -> SkipState {
        SkipState {
            capacity: self.capacity,
            seen: self.seen,
            next_accept: self.next_accept,
            w_bits: self.w.to_bits(),
        }
    }

    /// Rebuilds a reservoir from a checkpoint taken by
    /// [`SkipReservoir::state`] plus the retained items.
    ///
    /// Returns `None` when the pieces are mutually inconsistent (item
    /// count does not match the phase implied by `seen`, or the weight
    /// is outside Algorithm L's (0, 1] invariant) — a corrupted or
    /// hand-edited checkpoint, not a programming error, so no panic.
    pub fn resume(state: SkipState, items: Vec<T>) -> Option<Self> {
        if state.capacity == 0 {
            return None;
        }
        let expected = state.seen.min(state.capacity);
        if items.len() != expected {
            return None;
        }
        let w = f64::from_bits(state.w_bits);
        if !w.is_finite() || !(0.0..=1.0).contains(&w) {
            return None;
        }
        Some(SkipReservoir {
            capacity: state.capacity,
            items,
            seen: state.seen,
            next_accept: state.next_accept,
            w,
        })
    }
}

/// The scalar half of a [`SkipReservoir`] checkpoint (the items travel
/// separately — they usually already live in a persisted sample file).
///
/// `w_bits` is the bit pattern of Algorithm L's running weight `W`
/// (`f64::to_bits`): bits rather than the float so a serialisation
/// round-trip cannot perturb the skip sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkipState {
    /// Reservoir capacity `k`.
    pub capacity: usize,
    /// Items offered so far.
    pub seen: usize,
    /// Index (0-based among offered items) of the next accept.
    pub next_accept: usize,
    /// `f64::to_bits` of the running weight `W`.
    pub w_bits: u64,
}

/// `s` independent reservoirs of capacity `k` over one stream, sharing a
/// skip heap so the per-item cost is O(#reservoirs that fire), not O(s).
///
/// With `k = 2` this implements the paper's streaming Motwani–Xu
/// sketch: each slot independently holds a uniform unordered *pair* of
/// stream items, so the `s` slots form `s` i.i.d. uniform pairs (pair
/// sampling "with replacement" across slots, as the MX analysis
/// assumes). Total update work for `n` items is `O(n + s·k·log(n/k))`.
#[derive(Clone, Debug)]
pub struct MultiReservoir<T> {
    k: usize,
    slots: Vec<Vec<T>>,
    seen: usize,
    /// Min-heap of (next-accept index, slot).
    schedule: BinaryHeap<Reverse<(usize, usize)>>,
    /// Per-slot Algorithm L weight.
    weights: Vec<f64>,
}

impl<T: Clone> MultiReservoir<T> {
    /// Creates `s` independent reservoirs of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `s == 0`.
    pub fn new(s: usize, k: usize) -> Self {
        assert!(k > 0, "reservoir capacity must be positive");
        assert!(s > 0, "need at least one slot");
        MultiReservoir {
            k,
            slots: vec![Vec::with_capacity(k); s],
            seen: 0,
            schedule: BinaryHeap::new(),
            weights: vec![1.0; s],
        }
    }

    /// Draws the next accept index for `slot`. `base` is the index of
    /// the next incoming item; a skip of zero accepts it.
    fn schedule_slot<R: Rng + ?Sized>(&mut self, slot: usize, base: usize, rng: &mut R) {
        let u1: f64 = rng.random();
        self.weights[slot] *= u1.powf(1.0 / self.k as f64);
        let u2: f64 = rng.random();
        let w = self.weights[slot];
        let skip = (u2.ln() / (1.0 - w).ln()).floor();
        let skip = if skip.is_finite() && skip >= 0.0 {
            skip as usize
        } else {
            usize::MAX / 2
        };
        let next = base.saturating_add(skip);
        self.schedule.push(Reverse((next, slot)));
    }

    /// Offers one item to all slots.
    pub fn push<R: Rng + ?Sized>(&mut self, item: &T, rng: &mut R) {
        self.push_with(|| item.clone(), rng);
    }

    /// Offers one item to all slots, materialising a copy only when a
    /// slot actually retains it. `make` is called once per retaining
    /// slot and not at all for skipped items — the common case after
    /// warm-up — so callers holding a borrowed form of the item avoid
    /// an up-front conversion on the hot path.
    pub fn push_with<R: Rng + ?Sized, F: FnMut() -> T>(&mut self, mut make: F, rng: &mut R) {
        if self.seen < self.k {
            // Warm-up: every slot takes the first k items.
            for slot in &mut self.slots {
                slot.push(make());
            }
            self.seen += 1;
            if self.seen == self.k {
                for s in 0..self.slots.len() {
                    self.schedule_slot(s, self.seen, rng);
                }
            }
            return;
        }
        while let Some(&Reverse((next, slot))) = self.schedule.peek() {
            if next != self.seen {
                debug_assert!(next > self.seen, "missed a scheduled accept");
                break;
            }
            self.schedule.pop();
            let victim = rng.random_range(0..self.k);
            self.slots[slot][victim] = make();
            self.schedule_slot(slot, self.seen + 1, rng);
        }
        self.seen += 1;
    }

    /// The current samples, one `Vec` of (up to) `k` items per slot.
    pub fn slots(&self) -> &[Vec<T>] {
        &self.slots
    }

    /// Consumes the reservoir, returning all slots.
    pub fn into_slots(self) -> Vec<Vec<T>> {
        self.slots
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> usize {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn algorithm_r_holds_prefix_when_short() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(10);
        for x in 0..5 {
            assert!(r.push(x, &mut rng));
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.capacity(), 10);
    }

    #[test]
    fn algorithm_r_uniformity() {
        // Element 0 should survive in a k=1 reservoir over n=4 items with
        // probability 1/4.
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 40_000;
        let mut zero_kept = 0;
        for _ in 0..trials {
            let mut r = Reservoir::new(1);
            for x in 0..4 {
                r.push(x, &mut rng);
            }
            if r.items()[0] == 0 {
                zero_kept += 1;
            }
        }
        let frac = zero_kept as f64 / trials as f64;
        assert!((0.23..0.27).contains(&frac), "P(keep first) = {frac}");
    }

    #[test]
    fn skip_reservoir_matches_algorithm_r_distribution() {
        // Same uniformity check for Algorithm L.
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 40_000;
        let mut zero_kept = 0;
        for _ in 0..trials {
            let mut r = SkipReservoir::new(1);
            for x in 0..4 {
                r.push(x, &mut rng);
            }
            if r.items()[0] == 0 {
                zero_kept += 1;
            }
        }
        let frac = zero_kept as f64 / trials as f64;
        assert!((0.23..0.27).contains(&frac), "P(keep first) = {frac}");
    }

    #[test]
    fn skip_reservoir_k_many() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = SkipReservoir::new(50);
        for x in 0..10_000 {
            r.push(x, &mut rng);
        }
        assert_eq!(r.items().len(), 50);
        assert_eq!(r.seen(), 10_000);
        // Sample should not be the initial prefix.
        assert!(r.items().iter().any(|&x| x >= 50));
        let mut sorted = r.into_items();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "reservoir kept a duplicate index");
    }

    #[test]
    fn multi_reservoir_pairs_are_distinct_items() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mr = MultiReservoir::new(100, 2);
        for x in 0..1000usize {
            mr.push(&x, &mut rng);
        }
        assert_eq!(mr.seen(), 1000);
        for slot in mr.slots() {
            assert_eq!(slot.len(), 2);
            assert_ne!(slot[0], slot[1], "a pair slot holds a duplicate");
        }
    }

    #[test]
    fn multi_reservoir_slot_marginal_is_uniform_pair() {
        // Over {0,1,2}: each unordered pair should appear w.p. 1/3 in
        // any fixed slot.
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 30_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let mut mr = MultiReservoir::new(1, 2);
            for x in 0..3usize {
                mr.push(&x, &mut rng);
            }
            let mut p = mr.slots()[0].clone();
            p.sort_unstable();
            *counts.entry((p[0], p[1])).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (&pair, &c) in &counts {
            let frac = c as f64 / trials as f64;
            assert!(
                (0.30..0.37).contains(&frac),
                "pair {pair:?} frequency {frac}"
            );
        }
    }

    #[test]
    fn multi_reservoir_short_stream_keeps_prefix() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mr = MultiReservoir::new(3, 5);
        for x in 0..4usize {
            mr.push(&x, &mut rng);
        }
        for slot in mr.slots() {
            assert_eq!(slot, &vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn skip_reservoir_resume_continues_exact_trajectory() {
        // Run one reservoir straight through; run a second to the
        // checkpoint, round-trip it through state()/resume, and finish.
        // Same RNG sequence ⇒ bit-identical samples.
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut straight = SkipReservoir::new(20);
        for x in 0..5_000 {
            straight.push(x, &mut rng_a);
        }

        let mut rng_b = StdRng::seed_from_u64(11);
        let mut first_half = SkipReservoir::new(20);
        for x in 0..2_500 {
            first_half.push(x, &mut rng_b);
        }
        let state = first_half.state();
        let items = first_half.into_items();
        let mut resumed = SkipReservoir::resume(state, items).expect("valid checkpoint");
        for x in 2_500..5_000 {
            resumed.push(x, &mut rng_b);
        }

        assert_eq!(straight.items(), resumed.items());
        assert_eq!(straight.seen(), resumed.seen());
        assert_eq!(straight.state(), resumed.state());
    }

    #[test]
    fn skip_reservoir_resume_rejects_inconsistent_checkpoints() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut r = SkipReservoir::new(3);
        for x in 0..100 {
            r.push(x, &mut rng);
        }
        let good = r.state();
        let items = r.into_items();

        // Item count disagrees with the phase implied by `seen`.
        assert!(SkipReservoir::resume(good, vec![1, 2]).is_none());
        // Zero capacity.
        let mut bad = good;
        bad.capacity = 0;
        assert!(SkipReservoir::resume(bad, items.clone()).is_none());
        // Weight outside (0, 1].
        let mut bad = good;
        bad.w_bits = 2.0_f64.to_bits();
        assert!(SkipReservoir::resume(bad, items.clone()).is_none());
        let mut bad = good;
        bad.w_bits = f64::NAN.to_bits();
        assert!(SkipReservoir::resume(bad, items.clone()).is_none());
        // The untouched checkpoint still resumes.
        assert!(SkipReservoir::resume(good, items).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = MultiReservoir::<u32>::new(0, 2);
    }
}
