//! Property tests for the data substrate.

use proptest::prelude::*;

use qid_dataset::csv::{read_csv_str, write_csv, CsvOptions};
use qid_dataset::{AttrId, DatasetBuilder, Value};

/// Arbitrary small value.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-50i64..50).prop_map(Value::Int),
        "[a-z]{0,6}".prop_map(Value::text),
        (-100i32..100).prop_map(|v| Value::float(v as f64 / 4.0)),
    ]
}

fn rows_strategy() -> impl Strategy<Value = (usize, Vec<Vec<Value>>)> {
    (1usize..4).prop_flat_map(|attrs| {
        proptest::collection::vec(proptest::collection::vec(value_strategy(), attrs), 0..30)
            .prop_map(move |rows| (attrs, rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dictionary encoding is lossless: decoded values equal inputs.
    #[test]
    fn builder_roundtrip((attrs, rows) in rows_strategy()) {
        let names: Vec<String> = (0..attrs).map(|i| format!("c{i}")).collect();
        let mut b = DatasetBuilder::new(names);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let ds = b.finish();
        prop_assert_eq!(ds.n_rows(), rows.len());
        for (r, row) in rows.iter().enumerate() {
            for (a, v) in row.iter().enumerate() {
                prop_assert_eq!(ds.value(r, AttrId::new(a)), v);
            }
        }
    }

    /// Code equality coincides with value equality within a column.
    #[test]
    fn codes_iff_values((attrs, rows) in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let names: Vec<String> = (0..attrs).map(|i| format!("c{i}")).collect();
        let mut b = DatasetBuilder::new(names);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let ds = b.finish();
        for a in 0..attrs {
            let attr = AttrId::new(a);
            for r1 in 0..rows.len() {
                for r2 in 0..rows.len() {
                    prop_assert_eq!(
                        ds.code(r1, attr) == ds.code(r2, attr),
                        rows[r1][a] == rows[r2][a]
                    );
                }
            }
        }
    }

    /// gather ∘ gather composes like index composition.
    #[test]
    fn gather_composes((attrs, rows) in rows_strategy(), picks in proptest::collection::vec(0usize..30, 0..10)) {
        prop_assume!(!rows.is_empty());
        let names: Vec<String> = (0..attrs).map(|i| format!("c{i}")).collect();
        let mut b = DatasetBuilder::new(names);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let ds = b.finish();
        let picks: Vec<usize> = picks.into_iter().map(|p| p % rows.len()).collect();
        let g = ds.gather(&picks);
        prop_assert_eq!(g.n_rows(), picks.len());
        for (i, &p) in picks.iter().enumerate() {
            for a in 0..attrs {
                prop_assert_eq!(g.value(i, AttrId::new(a)), ds.value(p, AttrId::new(a)));
            }
        }
    }

    /// CSV write → read roundtrips every non-null table (nulls render
    /// as empty strings, which re-parse as nulls only for the default
    /// null tokens — also covered).
    #[test]
    fn csv_roundtrip((attrs, rows) in rows_strategy()) {
        let names: Vec<String> = (0..attrs).map(|i| format!("c{i}")).collect();
        let mut b = DatasetBuilder::new(names);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let ds = b.finish();
        let mut out = Vec::new();
        write_csv(&ds, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        prop_assert_eq!(back.n_attrs(), ds.n_attrs());
        for r in 0..ds.n_rows() {
            for a in 0..attrs {
                let orig = ds.value(r, AttrId::new(a));
                let round = back.value(r, AttrId::new(a));
                // Equality after a text round-trip: numbers and text
                // compare by rendered form; Null ↔ empty/"?" both parse
                // to Null. Floats that render integrally come back as
                // ints; compare by display.
                prop_assert_eq!(orig.to_string(), round.to_string());
            }
        }
    }

    /// Projection keeps row count and reorders columns faithfully.
    #[test]
    fn projection_faithful((attrs, rows) in rows_strategy(), perm_seed in 0usize..6) {
        prop_assume!(!rows.is_empty());
        let names: Vec<String> = (0..attrs).map(|i| format!("c{i}")).collect();
        let mut b = DatasetBuilder::new(names);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let ds = b.finish();
        let mut keep: Vec<AttrId> = (0..attrs).map(AttrId::new).collect();
        keep.rotate_left(perm_seed % attrs.max(1));
        let p = ds.project(&keep);
        prop_assert_eq!(p.n_rows(), ds.n_rows());
        for (new_idx, &old) in keep.iter().enumerate() {
            for r in 0..ds.n_rows() {
                prop_assert_eq!(p.value(r, AttrId::new(new_idx)), ds.value(r, old));
            }
        }
    }
}
