//! Minimal CSV reader/writer (RFC-4180 quoting, type inference).
//!
//! Implemented in-crate so the library has no I/O dependencies; it is
//! enough to load the UCI Adult / Covtype files the paper evaluates on
//! when they are available locally, and to round-trip our synthetic
//! data sets.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::AttrId;
use crate::stream::TupleSource;
use crate::symbol::Interner;
use crate::value::Value;

/// Options controlling CSV parsing.
#[derive(Clone, Debug)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Whether the first record is a header row (default `true`).
    pub has_header: bool,
    /// Strings parsed as [`Value::Null`] (default: empty string and `"?"`,
    /// the UCI missing-value convention).
    pub null_tokens: Vec<String>,
    /// Whether to trim ASCII whitespace around unquoted fields (default
    /// `true`; UCI files pad fields after commas).
    pub trim: bool,
    /// Attempt numeric type inference (default `true`). When `false`,
    /// every non-null field becomes [`Value::Text`].
    pub infer_types: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            has_header: true,
            null_tokens: vec![String::new(), "?".to_string()],
            trim: true,
            infer_types: true,
        }
    }
}

/// Splits one logical CSV record (which may span multiple physical lines
/// when quotes contain newlines) into fields.
struct RecordReader<R: BufRead> {
    reader: R,
    delimiter: u8,
    line: usize,
}

impl<R: BufRead> RecordReader<R> {
    fn new(reader: R, delimiter: u8) -> Self {
        RecordReader {
            reader,
            delimiter,
            line: 0,
        }
    }

    /// Reads the next record; `Ok(None)` at EOF.
    fn next_record(&mut self) -> Result<Option<Vec<String>>, DatasetError> {
        let mut raw = String::new();
        let n = self.reader.read_line(&mut raw)?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        // Keep reading physical lines while inside an unterminated quote.
        while count_quotes(&raw) % 2 == 1 {
            let mut cont = String::new();
            let n = self.reader.read_line(&mut cont)?;
            if n == 0 {
                return Err(DatasetError::Csv {
                    line: self.line,
                    message: "unterminated quoted field at end of input".into(),
                });
            }
            self.line += 1;
            raw.push_str(&cont);
        }
        let record = parse_record(trim_newline(&raw), self.delimiter, self.line)?;
        Ok(Some(record))
    }
}

fn count_quotes(s: &str) -> usize {
    s.bytes().filter(|&b| b == b'"').count()
}

fn trim_newline(s: &str) -> &str {
    s.strip_suffix('\n')
        .map(|s| s.strip_suffix('\r').unwrap_or(s))
        .unwrap_or(s)
}

/// Parses a single logical record into unquoted fields.
fn parse_record(line: &str, delimiter: u8, line_no: usize) -> Result<Vec<String>, DatasetError> {
    let bytes = line.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = 0usize;
    let mut in_quotes = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            if b == b'"' {
                if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                    field.push('"');
                    i += 2;
                    continue;
                }
                in_quotes = false;
                i += 1;
            } else {
                // Multi-byte UTF-8 is copied byte-wise; `field` is built
                // from valid UTF-8 slices below.
                let ch_len = utf8_len(b);
                field.push_str(&line[i..i + ch_len]);
                i += ch_len;
            }
        } else if b == b'"' {
            if field.chars().all(|c| c.is_ascii_whitespace()) {
                // Tolerate padding before an opening quote (`a, "x"`).
                field.clear();
            } else {
                return Err(DatasetError::Csv {
                    line: line_no,
                    message: "quote in the middle of an unquoted field".into(),
                });
            }
            in_quotes = true;
            i += 1;
        } else if b == delimiter {
            fields.push(std::mem::take(&mut field));
            i += 1;
        } else {
            let ch_len = utf8_len(b);
            field.push_str(&line[i..i + ch_len]);
            i += ch_len;
        }
    }
    if in_quotes {
        return Err(DatasetError::Csv {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn field_to_value(field: &str, opts: &CsvOptions, interner: &mut Interner) -> Value {
    let field = if opts.trim { field.trim() } else { field };
    if opts.null_tokens.iter().any(|t| t == field) {
        return Value::Null;
    }
    if opts.infer_types {
        if let Ok(i) = field.parse::<i64>() {
            return Value::Int(i);
        }
        // Only finite parses count as numbers: `f64::parse` also accepts
        // "nan"/"inf"/"infinity" (any case), but coercing those would not
        // survive a write → read round-trip, so they stay text.
        if let Ok(f) = field.parse::<f64>() {
            if f.is_finite() {
                return Value::float(f);
            }
        }
    }
    Value::Text(interner.intern(field))
}

/// Reads a CSV data set from any reader.
///
/// This drains a [`CsvTupleSource`] into a [`Dataset`], so the
/// materialising and streaming paths share one parser by construction
/// (header naming, trimming, blank-line tolerance, type inference).
pub fn read_csv<R: Read>(reader: R, opts: &CsvOptions) -> Result<Dataset, DatasetError> {
    // Unbounded interner: the dataset retains every value anyway.
    let mut source = CsvTupleSource::from_bufread(BufReader::new(reader), opts, Interner::new())?;
    let mut builder = DatasetBuilder::new(source.attr_names());
    while let Some(row) = source.next_tuple()? {
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

/// Reads a CSV data set from a file path.
pub fn read_csv_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Dataset, DatasetError> {
    read_csv(File::open(path)?, opts)
}

/// Reads a CSV data set from an in-memory string.
pub fn read_csv_str(data: &str, opts: &CsvOptions) -> Result<Dataset, DatasetError> {
    read_csv(data.as_bytes(), opts)
}

/// How many distinct text values a *streaming* source's interner may
/// retain. Beyond this, unseen strings are returned uncached: a
/// high-cardinality text column (the canonical quasi-identifier) must
/// not grow resident memory to `O(n)` while the reservoir downstream
/// stays `O(m/√ε)`.
const STREAM_INTERN_LIMIT: usize = 1 << 16;

/// A one-pass [`TupleSource`] over a CSV file, for the streaming sketch
/// builders (`qid_core::stream`): memory stays `O(m)` per yielded tuple
/// (plus a bounded intern cache) instead of the `O(n·m)` of
/// [`read_csv_path`]. Values are type-inferred exactly like the
/// materialising reader — which is itself implemented on top of this
/// source — so a sample drawn from the stream matches one drawn from
/// the loaded [`Dataset`].
pub struct CsvTupleSource<R: BufRead = Box<dyn BufRead>> {
    records: RecordReader<R>,
    opts: CsvOptions,
    names: Vec<String>,
    interner: Interner,
    pending: Option<Vec<String>>,
    rows_read: usize,
}

impl CsvTupleSource {
    /// Opens a CSV file as a tuple stream (reads only the header row).
    pub fn open(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Self, DatasetError> {
        let file = File::open(path)?;
        Self::from_reader(file, opts)
    }

    /// Streams CSV from any reader.
    pub fn from_reader<R: Read + 'static>(
        reader: R,
        opts: &CsvOptions,
    ) -> Result<Self, DatasetError> {
        Self::from_bufread(
            Box::new(BufReader::new(reader)) as Box<dyn BufRead>,
            opts,
            Interner::with_limit(STREAM_INTERN_LIMIT),
        )
    }

    /// Opens exactly the byte range `[offset, offset + len)` of a CSV
    /// file as a tuple stream of *data rows only*, with externally
    /// supplied attribute names — the append-suffix path: the header
    /// was parsed when the file was first ingested, and the caller
    /// guarantees `offset` sits on a row boundary. The hard `len` cap
    /// means rows appended after the caller captured its stat are left
    /// for the next revalidation rather than silently consumed.
    ///
    /// Values are inferred per-field exactly like [`open`](Self::open)
    /// (a fresh intern cache changes nothing observable: `Value`
    /// equality is by content), so a sample continued over a suffix
    /// matches one rebuilt over the whole file.
    pub fn open_suffix(
        path: impl AsRef<Path>,
        offset: u64,
        len: u64,
        names: Vec<String>,
        opts: &CsvOptions,
    ) -> Result<Self, DatasetError> {
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let reader = Box::new(BufReader::new(file.take(len))) as Box<dyn BufRead>;
        Ok(CsvTupleSource {
            records: RecordReader::new(reader, opts.delimiter),
            opts: opts.clone(),
            names,
            interner: Interner::with_limit(STREAM_INTERN_LIMIT),
            pending: None,
            rows_read: 0,
        })
    }
}

impl<R: BufRead> CsvTupleSource<R> {
    fn from_bufread(
        reader: R,
        opts: &CsvOptions,
        interner: Interner,
    ) -> Result<Self, DatasetError> {
        let mut records = RecordReader::new(reader, opts.delimiter);
        let (names, pending) = match records.next_record()? {
            None => (Vec::new(), None),
            Some(first) => {
                if opts.has_header {
                    (
                        first
                            .into_iter()
                            .map(|f| if opts.trim { f.trim().to_string() } else { f })
                            .collect(),
                        None,
                    )
                } else {
                    (
                        (0..first.len()).map(|i| format!("col{i}")).collect(),
                        Some(first),
                    )
                }
            }
        };
        Ok(CsvTupleSource {
            records,
            opts: opts.clone(),
            names,
            interner,
            pending,
            rows_read: 0,
        })
    }

    /// Data rows yielded so far (the stream length, once exhausted).
    pub fn rows_read(&self) -> usize {
        self.rows_read
    }
}

impl<R: BufRead> TupleSource for CsvTupleSource<R> {
    fn attr_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn n_attrs(&self) -> usize {
        self.names.len()
    }

    fn next_tuple(&mut self) -> Result<Option<Vec<Value>>, DatasetError> {
        loop {
            let record = match self.pending.take() {
                Some(r) => r,
                None => match self.records.next_record()? {
                    Some(r) => r,
                    None => return Ok(None),
                },
            };
            // Tolerate trailing blank lines, as the materialising
            // reader does.
            if record.len() == 1 && record[0].trim().is_empty() && self.names.len() != 1 {
                continue;
            }
            if record.len() != self.names.len() {
                return Err(DatasetError::RowArity {
                    row: self.rows_read,
                    expected: self.names.len(),
                    got: record.len(),
                });
            }
            self.rows_read += 1;
            return Ok(Some(
                record
                    .iter()
                    .map(|f| field_to_value(f, &self.opts, &mut self.interner))
                    .collect(),
            ));
        }
    }
}

/// Writes a data set as CSV (always with a header row; fields are quoted
/// only when necessary).
pub fn write_csv<W: Write>(ds: &Dataset, mut w: W) -> io::Result<()> {
    let names: Vec<&str> = ds.schema().names().collect();
    write_record(&mut w, names.iter().copied())?;
    for row in 0..ds.n_rows() {
        let fields: Vec<String> = (0..ds.n_attrs())
            .map(|a| ds.value(row, AttrId::new(a)).to_string())
            .collect();
        write_record(&mut w, fields.iter().map(|s| s.as_str()))?;
    }
    Ok(())
}

fn write_record<'a, W: Write>(w: &mut W, fields: impl Iterator<Item = &'a str>) -> io::Result<()> {
    let mut first = true;
    for f in fields {
        if !first {
            w.write_all(b",")?;
        }
        first = false;
        if f.contains(['"', ',', '\n', '\r']) {
            let escaped = f.replace('"', "\"\"");
            write!(w, "\"{escaped}\"")?;
        } else {
            w.write_all(f.as_bytes())?;
        }
    }
    w.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn open_suffix_reads_exactly_the_byte_range() {
        let dir = std::env::temp_dir().join("qid-csv-suffix");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suffix.csv");
        let head = "a,b\n1,x\n2,y\n";
        let tail = "3,z\n4,w\n";
        std::fs::write(&path, format!("{head}{tail}extra,row\n")).unwrap();

        let mut src = CsvTupleSource::open_suffix(
            &path,
            head.len() as u64,
            tail.len() as u64,
            vec!["a".into(), "b".into()],
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(src.n_attrs(), 2);
        // Rows inside the range come through with full type inference;
        // the row past `len` (appended after a hypothetical stat) does
        // not — even though it is on disk.
        assert_eq!(
            src.next_tuple().unwrap(),
            Some(vec![Value::Int(3), Value::text("z")])
        );
        assert_eq!(
            src.next_tuple().unwrap(),
            Some(vec![Value::Int(4), Value::text("w")])
        );
        assert_eq!(src.next_tuple().unwrap(), None);
        assert_eq!(src.rows_read(), 2);
    }

    #[test]
    fn basic_parse_with_header() {
        let ds = read_csv_str("a,b\n1,x\n2,y\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.n_attrs(), 2);
        assert_eq!(ds.schema().attr(0.into()).name(), "a");
        assert_eq!(ds.value(0, 0.into()), &Value::Int(1));
        assert_eq!(ds.value(1, 1.into()), &Value::text("y"));
    }

    #[test]
    fn headerless_parse() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = read_csv_str("1,x\n2,y\n", &opts).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.schema().attr(0.into()).name(), "col0");
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let ds = read_csv_str(
            "a,b\n\"hi, there\",\"say \"\"what\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(ds.value(0, 0.into()), &Value::text("hi, there"));
        assert_eq!(ds.value(0, 1.into()), &Value::text("say \"what\""));
    }

    #[test]
    fn quoted_newline_inside_field() {
        let ds = read_csv_str("a,b\n\"line1\nline2\",3\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 1);
        assert_eq!(ds.value(0, 0.into()), &Value::text("line1\nline2"));
        assert_eq!(ds.value(0, 1.into()), &Value::Int(3));
    }

    #[test]
    fn uci_missing_values_and_padding() {
        let ds = read_csv_str("age,job\n39, State-gov\n50, ?\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.value(0, 1.into()), &Value::text("State-gov"));
        assert_eq!(ds.value(1, 1.into()), &Value::Null);
        assert_eq!(ds.schema().attr(0.into()).dtype(), DataType::Int);
    }

    #[test]
    fn float_inference() {
        let ds = read_csv_str("x\n1.5\n-2.25\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.schema().attr(0.into()).dtype(), DataType::Float);
        assert_eq!(ds.value(0, 0.into()), &Value::float(1.5));
    }

    #[test]
    fn no_inference_when_disabled() {
        let opts = CsvOptions {
            infer_types: false,
            ..CsvOptions::default()
        };
        let ds = read_csv_str("x\n42\n", &opts).unwrap();
        assert_eq!(ds.value(0, 0.into()), &Value::text("42"));
    }

    #[test]
    fn crlf_line_endings() {
        let ds = read_csv_str("a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 1);
        assert_eq!(ds.value(0, 1.into()), &Value::Int(2));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = read_csv_str("a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DatasetError::Csv { .. }));
    }

    #[test]
    fn stray_quote_is_error() {
        let err = read_csv_str("a\nab\"c\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DatasetError::Csv { .. }));
    }

    #[test]
    fn ragged_row_is_error() {
        let err = read_csv_str("a,b\n1\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DatasetError::RowArity { .. }));
    }

    #[test]
    fn empty_input() {
        let ds = read_csv_str("", &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 0);
        assert_eq!(ds.n_attrs(), 0);
    }

    #[test]
    fn roundtrip_write_read() {
        let ds = read_csv_str(
            "name,score\n\"comma, inc\",3\nplain,4\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let mut out = Vec::new();
        write_csv(&ds, &mut out).unwrap();
        let back =
            read_csv_str(std::str::from_utf8(&out).unwrap(), &CsvOptions::default()).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.value(0, 0.into()), &Value::text("comma, inc"));
        assert_eq!(back.value(1, 1.into()), &Value::Int(4));
    }

    #[test]
    fn semicolon_delimiter() {
        let opts = CsvOptions {
            delimiter: b';',
            ..CsvOptions::default()
        };
        let ds = read_csv_str("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(ds.value(0, 1.into()), &Value::Int(2));
    }

    #[test]
    fn tuple_source_matches_materialised_reader() {
        let text = "a,b\n1,x\n2,\"y,z\"\n3, ?\n";
        let opts = CsvOptions::default();
        let ds = read_csv_str(text, &opts).unwrap();
        let mut src =
            CsvTupleSource::from_reader(std::io::Cursor::new(text.to_string()), &opts).unwrap();
        assert_eq!(src.attr_names(), vec!["a".to_string(), "b".to_string()]);
        let mut rows = Vec::new();
        while let Some(t) = src.next_tuple().unwrap() {
            rows.push(t);
        }
        assert_eq!(src.rows_read(), 3);
        assert_eq!(rows.len(), ds.n_rows());
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v, ds.value(i, AttrId::new(j)), "row {i} col {j}");
            }
        }
    }

    #[test]
    fn tuple_source_headerless_and_blank_lines() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let mut src =
            CsvTupleSource::from_reader(std::io::Cursor::new("1,x\n2,y\n\n".to_string()), &opts)
                .unwrap();
        assert_eq!(
            src.attr_names(),
            vec!["col0".to_string(), "col1".to_string()]
        );
        let mut n = 0;
        while src.next_tuple().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn tuple_source_ragged_row_is_error() {
        let mut src = CsvTupleSource::from_reader(
            std::io::Cursor::new("a,b\n1\n".to_string()),
            &CsvOptions::default(),
        )
        .unwrap();
        assert!(src.next_tuple().is_err());
    }

    #[test]
    fn tuple_source_empty_input() {
        let mut src = CsvTupleSource::from_reader(
            std::io::Cursor::new(String::new()),
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(src.n_attrs(), 0);
        assert_eq!(src.next_tuple().unwrap(), None);
    }

    #[test]
    fn unicode_fields() {
        let ds = read_csv_str("a\nnaïve\n\"héllo, wörld\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.value(0, 0.into()), &Value::text("naïve"));
        assert_eq!(ds.value(1, 0.into()), &Value::text("héllo, wörld"));
    }
}
