//! Attribute identifiers, attribute metadata, and schemas.

use std::collections::HashMap;
use std::fmt;

/// Identifies one of the `m` attributes (coordinates) of a data set.
///
/// The paper writes attribute subsets as `A ⊆ [m]`; an `AttrId` is an
/// element of `[m]`, a plain index newtype kept `Copy` and 4 bytes so
/// subsets are compact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u32);

impl AttrId {
    /// Creates an `AttrId` from a zero-based attribute index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX` (over 4 billion attributes).
    pub fn new(index: usize) -> Self {
        AttrId(u32::try_from(index).expect("attribute index exceeds u32::MAX"))
    }

    /// The zero-based attribute index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All attribute ids `0..m`.
    pub fn all(m: usize) -> impl Iterator<Item = AttrId> + Clone {
        (0..m).map(AttrId::new)
    }
}

impl From<usize> for AttrId {
    fn from(i: usize) -> Self {
        AttrId::new(i)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The inferred type of an attribute's values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// All non-null values are integers.
    Int,
    /// All non-null values are floats.
    Float,
    /// All non-null values are text.
    Text,
    /// Values of more than one type (or only nulls).
    Mixed,
}

/// Metadata for one attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    dtype: DataType,
}

impl Attribute {
    /// Creates attribute metadata.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's inferred data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }
}

/// An ordered list of attributes with name lookup.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema from attribute metadata.
    ///
    /// Duplicate names are allowed (real-world CSVs have them); name
    /// lookup resolves to the *first* attribute with that name.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            by_name
                .entry(a.name.clone())
                .or_insert_with(|| AttrId::new(i));
        }
        Schema { attrs, by_name }
    }

    /// Number of attributes `m`.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Metadata for attribute `id`.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// All attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Resolves an attribute by name (first match).
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// The names of all attributes, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name())
    }

    /// A new schema containing only `keep`, in the given order.
    pub fn project(&self, keep: &[AttrId]) -> Schema {
        Schema::new(
            keep.iter()
                .map(|&a| self.attrs[a.index()].clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::new("a", DataType::Int),
            Attribute::new("b", DataType::Text),
            Attribute::new("c", DataType::Float),
        ])
    }

    #[test]
    fn attr_id_roundtrip() {
        let id = AttrId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(AttrId::from(7usize), id);
        assert_eq!(id.to_string(), "#7");
    }

    #[test]
    fn attr_id_all() {
        let ids: Vec<_> = AttrId::all(3).collect();
        assert_eq!(ids, vec![AttrId::new(0), AttrId::new(1), AttrId::new(2)]);
    }

    #[test]
    fn name_lookup() {
        let s = schema3();
        assert_eq!(s.attr_by_name("b"), Some(AttrId::new(1)));
        assert_eq!(s.attr_by_name("nope"), None);
        assert_eq!(s.attr(AttrId::new(2)).dtype(), DataType::Float);
    }

    #[test]
    fn duplicate_names_resolve_to_first() {
        let s = Schema::new(vec![
            Attribute::new("x", DataType::Int),
            Attribute::new("x", DataType::Text),
        ]);
        assert_eq!(s.attr_by_name("x"), Some(AttrId::new(0)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn projection_reorders() {
        let s = schema3();
        let p = s.project(&[AttrId::new(2), AttrId::new(0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.attr(AttrId::new(0)).name(), "c");
        assert_eq!(p.attr(AttrId::new(1)).name(), "a");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.names().count(), 0);
    }
}
