//! Error types for data-set construction and I/O.

use std::fmt;
use std::io;

/// Errors arising while building, parsing, or generating data sets.
#[derive(Debug)]
pub enum DatasetError {
    /// A pushed row had the wrong number of values.
    RowArity {
        /// Zero-based index of the offending row.
        row: usize,
        /// Expected number of values (the attribute count).
        expected: usize,
        /// Number of values actually supplied.
        got: usize,
    },
    /// A column accumulated more than `u32::MAX` distinct values.
    DictionaryOverflow(String),
    /// CSV input was malformed.
    Csv {
        /// One-based line number of the offending record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// A generator was configured with impossible parameters.
    InvalidSpec(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RowArity { row, expected, got } => {
                write!(f, "row {row}: expected {expected} values, got {got}")
            }
            DatasetError::DictionaryOverflow(col) => {
                write!(f, "column {col:?}: more than u32::MAX distinct values")
            }
            DatasetError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::InvalidSpec(msg) => write!(f, "invalid generator spec: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DatasetError::RowArity {
            row: 3,
            expected: 2,
            got: 5,
        };
        assert_eq!(e.to_string(), "row 3: expected 2 values, got 5");
        let e = DatasetError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = DatasetError::InvalidSpec("cardinality 0".into());
        assert!(e.to_string().contains("cardinality 0"));
    }

    #[test]
    fn io_error_source_chain() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = DatasetError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
