//! Row-at-a-time construction of dictionary-encoded data sets.

use std::collections::HashMap;
use std::sync::Arc;

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::{Attribute, DataType, Schema};
use crate::value::Value;

/// Per-column build state: dictionary under construction.
struct ColumnBuilder {
    name: String,
    codes: Vec<u32>,
    dict: Vec<Value>,
    index: HashMap<Value, u32>,
    saw_int: bool,
    saw_float: bool,
    saw_text: bool,
}

impl ColumnBuilder {
    fn new(name: String) -> Self {
        ColumnBuilder {
            name,
            codes: Vec::new(),
            dict: Vec::new(),
            index: HashMap::new(),
            saw_int: false,
            saw_float: false,
            saw_text: false,
        }
    }

    fn push(&mut self, v: Value) -> Result<(), DatasetError> {
        match &v {
            Value::Int(_) => self.saw_int = true,
            Value::Float(_) => self.saw_float = true,
            Value::Text(_) => self.saw_text = true,
            Value::Null => {}
        }
        let code = match self.index.get(&v) {
            Some(&c) => c,
            None => {
                let c = u32::try_from(self.dict.len())
                    .map_err(|_| DatasetError::DictionaryOverflow(self.name.clone()))?;
                self.dict.push(v.clone());
                self.index.insert(v, c);
                c
            }
        };
        self.codes.push(code);
        Ok(())
    }

    fn dtype(&self) -> DataType {
        match (self.saw_int, self.saw_float, self.saw_text) {
            (true, false, false) => DataType::Int,
            (false, true, false) => DataType::Float,
            (false, false, true) => DataType::Text,
            _ => DataType::Mixed,
        }
    }

    fn finish(self) -> (Attribute, Column) {
        let dtype = self.dtype();
        let dict: Arc<[Value]> = self.dict.into();
        (
            Attribute::new(self.name, dtype),
            Column::new(self.codes, dict),
        )
    }
}

/// Builds a [`Dataset`] one tuple at a time, dictionary-encoding values
/// as they arrive.
///
/// The builder is the single ingestion path shared by CSV parsing,
/// streaming reservoirs, and hand-written fixtures:
///
/// ```
/// use qid_dataset::{DatasetBuilder, Value};
/// let mut b = DatasetBuilder::new(["id", "color"]);
/// b.push_row([Value::Int(1), Value::text("red")]).unwrap();
/// b.push_row([Value::Int(2), Value::text("red")]).unwrap();
/// let ds = b.finish();
/// assert_eq!(ds.column(1.into()).cardinality(), 1);
/// ```
pub struct DatasetBuilder {
    columns: Vec<ColumnBuilder>,
    n_rows: usize,
}

impl DatasetBuilder {
    /// Creates a builder with the given attribute names.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DatasetBuilder {
            columns: names
                .into_iter()
                .map(|n| ColumnBuilder::new(n.into()))
                .collect(),
            n_rows: 0,
        }
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Appends one tuple. The tuple length must equal the attribute count.
    pub fn push_row<I>(&mut self, row: I) -> Result<(), DatasetError>
    where
        I: IntoIterator<Item = Value>,
    {
        let values: Vec<Value> = row.into_iter().collect();
        if values.len() != self.columns.len() {
            return Err(DatasetError::RowArity {
                row: self.n_rows,
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (cb, v) in self.columns.iter_mut().zip(values) {
            cb.push(v)?;
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Finalises the data set.
    pub fn finish(self) -> Dataset {
        let mut attrs = Vec::with_capacity(self.columns.len());
        let mut cols = Vec::with_capacity(self.columns.len());
        for cb in self.columns {
            let (a, c) = cb.finish();
            attrs.push(a);
            cols.push(Arc::new(c));
        }
        Dataset::new(Schema::new(attrs), cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn builds_and_infers_types() {
        let mut b = DatasetBuilder::new(["i", "f", "t", "mix"]);
        b.push_row([
            Value::Int(1),
            Value::float(0.5),
            Value::text("a"),
            Value::Int(1),
        ])
        .unwrap();
        b.push_row([
            Value::Int(2),
            Value::float(1.5),
            Value::text("b"),
            Value::text("x"),
        ])
        .unwrap();
        let ds = b.finish();
        let s = ds.schema();
        assert_eq!(s.attr(AttrId::new(0)).dtype(), DataType::Int);
        assert_eq!(s.attr(AttrId::new(1)).dtype(), DataType::Float);
        assert_eq!(s.attr(AttrId::new(2)).dtype(), DataType::Text);
        assert_eq!(s.attr(AttrId::new(3)).dtype(), DataType::Mixed);
    }

    #[test]
    fn dictionary_codes_by_first_appearance() {
        let mut b = DatasetBuilder::new(["x"]);
        for v in [3, 1, 3, 2, 1] {
            b.push_row([Value::Int(v)]).unwrap();
        }
        let ds = b.finish();
        assert_eq!(ds.column(0.into()).codes(), &[0, 1, 0, 2, 1]);
        assert_eq!(ds.column(0.into()).cardinality(), 3);
    }

    #[test]
    fn arity_mismatch_short_row() {
        let mut b = DatasetBuilder::new(["a", "b"]);
        let err = b.push_row([Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DatasetError::RowArity { expected: 2, .. }));
        // builder still usable and aligned
        b.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(b.n_rows(), 1);
        let ds = b.finish();
        assert_eq!(ds.n_rows(), 1);
    }

    #[test]
    fn arity_mismatch_long_row_rolls_back() {
        let mut b = DatasetBuilder::new(["a", "b"]);
        let err = b
            .push_row([Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap_err();
        assert!(matches!(err, DatasetError::RowArity { got: 3, .. }));
        assert_eq!(b.n_rows(), 0);
        b.push_row([Value::Int(9), Value::Int(9)]).unwrap();
        let ds = b.finish();
        assert_eq!(ds.n_rows(), 1);
        assert_eq!(ds.value(0, AttrId::new(0)), &Value::Int(9));
    }

    #[test]
    fn nulls_compare_equal() {
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Null]).unwrap();
        b.push_row([Value::Null]).unwrap();
        let ds = b.finish();
        assert_eq!(ds.code(0, 0.into()), ds.code(1, 0.into()));
    }

    #[test]
    fn empty_dataset() {
        let ds = DatasetBuilder::new(["a", "b"]).finish();
        assert_eq!(ds.n_rows(), 0);
        assert_eq!(ds.n_attrs(), 2);
    }

    #[test]
    fn zero_attr_dataset() {
        let mut b = DatasetBuilder::new(Vec::<String>::new());
        b.push_row([]).unwrap();
        b.push_row([]).unwrap();
        let ds = b.finish();
        assert_eq!(ds.n_attrs(), 0);
        // No columns means n_rows falls back to 0 — zero-attribute data
        // sets are degenerate; rows carry no information.
        assert_eq!(ds.n_rows(), 0);
    }
}
