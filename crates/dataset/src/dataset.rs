//! The immutable, columnar data set.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::column::Column;
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// An immutable data set of `n` tuples over `m` attributes.
///
/// This is the object the paper calls `X = {x_1, …, x_n} ⊆ U^m`. Storage
/// is columnar and dictionary-encoded (see [`Column`]); columns are
/// behind `Arc`, so [`Dataset::project`] is O(|A|) and
/// [`Dataset::gather`] copies only the selected codes.
#[derive(Clone)]
pub struct Dataset {
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    n_rows: usize,
}

impl Dataset {
    /// Assembles a data set from a schema and matching columns.
    ///
    /// # Panics
    /// Panics if the column count differs from the schema or the columns
    /// disagree on row count.
    pub fn new(schema: Schema, columns: Vec<Arc<Column>>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema has {} attributes but {} columns were provided",
            schema.len(),
            columns.len()
        );
        let n_rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(
                c.len(),
                n_rows,
                "column {i} has {} rows, expected {n_rows}",
                c.len()
            );
        }
        Dataset {
            schema: Arc::new(schema),
            columns,
            n_rows,
        }
    }

    /// Number of tuples `n`.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes `m`.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Number of unordered tuple pairs, `C(n, 2)`.
    pub fn n_pairs(&self) -> u128 {
        let n = self.n_rows as u128;
        n * (n.saturating_sub(1)) / 2
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The column for attribute `attr`.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr.index()]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Dictionary code of `(row, attr)` — the O(1) equality token.
    #[inline]
    pub fn code(&self, row: usize, attr: AttrId) -> u32 {
        self.columns[attr.index()].code(row)
    }

    /// Decoded value of `(row, attr)`.
    #[inline]
    pub fn value(&self, row: usize, attr: AttrId) -> &Value {
        self.columns[attr.index()].value(row)
    }

    /// A borrowed view of one tuple.
    pub fn row(&self, row: usize) -> RowRef<'_> {
        assert!(row < self.n_rows, "row {row} out of range {}", self.n_rows);
        RowRef { ds: self, row }
    }

    /// Iterates over all tuples.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> + '_ {
        (0..self.n_rows).map(move |r| RowRef { ds: self, row: r })
    }

    /// Do rows `r1` and `r2` agree on *every* attribute in `attrs`?
    ///
    /// Equivalently: `attrs` fails to separate the pair `(r1, r2)`.
    #[inline]
    pub fn rows_agree_on(&self, r1: usize, r2: usize, attrs: &[AttrId]) -> bool {
        attrs
            .iter()
            .all(|&a| self.columns[a.index()].code(r1) == self.columns[a.index()].code(r2))
    }

    /// Does `attrs` separate the pair `(r1, r2)` (differ somewhere)?
    #[inline]
    pub fn separates(&self, attrs: &[AttrId], r1: usize, r2: usize) -> bool {
        !self.rows_agree_on(r1, r2, attrs)
    }

    /// Lexicographic comparison of the projections of rows `r1`, `r2`
    /// onto `attrs`, in code order (a total order on tuples).
    pub fn cmp_projected(&self, r1: usize, r2: usize, attrs: &[AttrId]) -> Ordering {
        for &a in attrs {
            let col = &self.columns[a.index()];
            match col.code(r1).cmp(&col.code(r2)) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// A new data set containing only the attributes in `keep` (in that
    /// order). Columns are shared, so this is O(|keep|).
    pub fn project(&self, keep: &[AttrId]) -> Dataset {
        let columns = keep
            .iter()
            .map(|&a| Arc::clone(&self.columns[a.index()]))
            .collect();
        Dataset {
            schema: Arc::new(self.schema.project(keep)),
            columns,
            n_rows: self.n_rows,
        }
    }

    /// A new data set containing the given rows (in order, repeats
    /// allowed). Dictionaries are shared; codes remain comparable with
    /// the parent data set's codes.
    ///
    /// This is the primitive behind every sampling-based sketch in the
    /// paper: "sample `R` tuples" is `gather` of a random index set.
    pub fn gather(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(rows)))
            .collect();
        Dataset {
            schema: Arc::clone(&self.schema),
            columns,
            n_rows: rows.len(),
        }
    }

    /// All attribute ids `0..m`.
    pub fn all_attrs(&self) -> Vec<AttrId> {
        AttrId::all(self.n_attrs()).collect()
    }

    /// Estimated resident size in bytes (codes only; dictionaries are
    /// shared and usually negligible).
    pub fn code_bytes(&self) -> usize {
        self.columns.len() * self.n_rows * std::mem::size_of::<u32>()
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dataset")
            .field("n_rows", &self.n_rows)
            .field("n_attrs", &self.n_attrs())
            .field("attrs", &self.schema.names().collect::<Vec<_>>())
            .finish()
    }
}

/// A borrowed view of one tuple of a [`Dataset`].
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    ds: &'a Dataset,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The row index within the data set.
    pub fn index(&self) -> usize {
        self.row
    }

    /// The value of attribute `attr`.
    pub fn value(&self, attr: AttrId) -> &'a Value {
        self.ds.value(self.row, attr)
    }

    /// The dictionary code of attribute `attr`.
    pub fn code(&self, attr: AttrId) -> u32 {
        self.ds.code(self.row, attr)
    }

    /// All values of this tuple, in schema order.
    pub fn values(&self) -> impl Iterator<Item = &'a Value> + '_ {
        let ds = self.ds;
        let row = self.row;
        (0..ds.n_attrs()).map(move |a| ds.value(row, AttrId::new(a)))
    }

    /// Materialises the tuple as an owned `Vec<Value>`.
    pub fn to_vec(&self) -> Vec<Value> {
        self.values().cloned().collect()
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(["a", "b", "c"]);
        b.push_row([Value::Int(1), Value::text("x"), Value::Int(10)])
            .unwrap();
        b.push_row([Value::Int(1), Value::text("y"), Value::Int(10)])
            .unwrap();
        b.push_row([Value::Int(2), Value::text("x"), Value::Int(10)])
            .unwrap();
        b.finish()
    }

    #[test]
    fn dims_and_pairs() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_attrs(), 3);
        assert_eq!(ds.n_pairs(), 3);
    }

    #[test]
    fn n_pairs_edge_cases() {
        let empty = DatasetBuilder::new(["a"]).finish();
        assert_eq!(empty.n_pairs(), 0);
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(1)]).unwrap();
        assert_eq!(b.finish().n_pairs(), 0);
    }

    #[test]
    fn separation_predicates() {
        let ds = sample();
        let a0 = AttrId::new(0);
        let a1 = AttrId::new(1);
        let a2 = AttrId::new(2);
        assert!(ds.rows_agree_on(0, 1, &[a0, a2]));
        assert!(!ds.rows_agree_on(0, 1, &[a1]));
        assert!(ds.separates(&[a1], 0, 1));
        assert!(!ds.separates(&[a2], 0, 2)); // column c is constant
        assert!(ds.rows_agree_on(0, 1, &[])); // empty set separates nothing
    }

    #[test]
    fn cmp_projected_is_lexicographic() {
        let ds = sample();
        let attrs = ds.all_attrs();
        assert_eq!(ds.cmp_projected(0, 0, &attrs), Ordering::Equal);
        // Row 0 and row 2 differ on attribute 0 (codes 0 vs 1).
        assert_eq!(ds.cmp_projected(0, 2, &[AttrId::new(0)]), Ordering::Less);
        assert_eq!(ds.cmp_projected(2, 0, &[AttrId::new(0)]), Ordering::Greater);
        assert_eq!(ds.cmp_projected(0, 1, &[AttrId::new(2)]), Ordering::Equal);
    }

    #[test]
    fn projection_shares_columns() {
        let ds = sample();
        let p = ds.project(&[AttrId::new(2), AttrId::new(0)]);
        assert_eq!(p.n_attrs(), 2);
        assert_eq!(p.schema().attr(AttrId::new(0)).name(), "c");
        assert_eq!(p.value(1, AttrId::new(1)), &Value::Int(1));
        assert_eq!(p.n_rows(), 3);
    }

    #[test]
    fn gather_keeps_code_compatibility() {
        let ds = sample();
        let g = ds.gather(&[2, 0]);
        assert_eq!(g.n_rows(), 2);
        // Row 0 of g is row 2 of ds; codes must match across the two.
        assert_eq!(g.code(0, AttrId::new(0)), ds.code(2, AttrId::new(0)));
        assert_eq!(g.value(1, AttrId::new(1)), &Value::text("x"));
    }

    #[test]
    fn row_ref_views() {
        let ds = sample();
        let r = ds.row(1);
        assert_eq!(r.index(), 1);
        assert_eq!(
            r.to_vec(),
            vec![Value::Int(1), Value::text("y"), Value::Int(10)]
        );
        assert_eq!(format!("{r:?}"), "[Int(1), Text(\"y\"), Int(10)]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let ds = sample();
        let _ = ds.row(3);
    }

    #[test]
    fn debug_format_mentions_dims() {
        let ds = sample();
        let s = format!("{ds:?}");
        assert!(s.contains("n_rows: 3"));
        assert!(s.contains("n_attrs: 3"));
    }
}
