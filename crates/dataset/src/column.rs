//! Dictionary-encoded columns.

use std::sync::Arc;

use crate::value::Value;

/// One dictionary-encoded column: a `u32` code per row plus a shared
/// dictionary mapping codes to [`Value`]s.
///
/// Equality of codes is equality of values, so the paper's central
/// predicate — "do tuples `x_i` and `x_j` agree on attribute `a`?" — is a
/// single integer comparison. Codes are assigned in order of first
/// appearance; any injective assignment works because the algorithms only
/// need *a* total order on `U`, not a particular one.
///
/// Dictionaries are behind `Arc` so that row subsets of a data set
/// ([`crate::Dataset::gather`]) can share them without copying.
#[derive(Clone, Debug)]
pub struct Column {
    codes: Vec<u32>,
    dict: Arc<[Value]>,
}

impl Column {
    /// Creates a column from codes and their dictionary.
    ///
    /// # Panics
    /// Panics if any code is out of range for the dictionary.
    pub fn new(codes: Vec<u32>, dict: Arc<[Value]>) -> Self {
        debug_assert!(
            codes.iter().all(|&c| (c as usize) < dict.len()),
            "column code out of dictionary range"
        );
        if cfg!(not(debug_assertions)) {
            // In release builds validate lazily via the max, still O(n) but
            // branch-free; an out-of-range code is a construction bug.
            if let Some(&max) = codes.iter().max() {
                assert!(
                    (max as usize) < dict.len(),
                    "column code {max} out of dictionary range {}",
                    dict.len()
                );
            }
        }
        Column { codes, dict }
    }

    /// Creates an integer column where code `c` decodes to `Value::Int(c)`.
    ///
    /// Synthetic generators produce category codes directly; this
    /// constructor skips the hash-map dictionary build.
    pub fn from_int_codes(codes: Vec<u32>, cardinality: u32) -> Self {
        let dict: Arc<[Value]> = (0..cardinality as i64).map(Value::Int).collect();
        Column::new(codes, dict)
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary code of `row`.
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All codes, one per row.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The decoded value of `row`.
    #[inline]
    pub fn value(&self, row: usize) -> &Value {
        &self.dict[self.codes[row] as usize]
    }

    /// The shared dictionary (index = code).
    pub fn dict(&self) -> &Arc<[Value]> {
        &self.dict
    }

    /// Dictionary size — an upper bound on the number of distinct values
    /// in this column (exact for freshly built data sets; after
    /// [`crate::Dataset::gather`] some dictionary entries may be unused).
    pub fn dict_size(&self) -> usize {
        self.dict.len()
    }

    /// Exact number of distinct values currently present (O(n)).
    pub fn cardinality(&self) -> usize {
        let mut seen = vec![false; self.dict.len()];
        let mut count = 0usize;
        for &c in &self.codes {
            let slot = &mut seen[c as usize];
            if !*slot {
                *slot = true;
                count += 1;
            }
        }
        count
    }

    /// A new column containing `rows` (in order), sharing this dictionary.
    pub fn gather(&self, rows: &[usize]) -> Column {
        Column {
            codes: rows.iter().map(|&r| self.codes[r]).collect(),
            dict: Arc::clone(&self.dict),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Column {
        let dict: Arc<[Value]> = vec![Value::text("x"), Value::text("y")].into();
        Column::new(vec![0, 1, 0, 0], dict)
    }

    #[test]
    fn code_and_value_access() {
        let c = col();
        assert_eq!(c.len(), 4);
        assert_eq!(c.code(1), 1);
        assert_eq!(c.value(2), &Value::text("x"));
    }

    #[test]
    fn cardinality_counts_present_values() {
        let c = col();
        assert_eq!(c.dict_size(), 2);
        assert_eq!(c.cardinality(), 2);
        let g = c.gather(&[0, 2]);
        assert_eq!(g.dict_size(), 2); // dictionary shared, still size 2
        assert_eq!(g.cardinality(), 1); // only "x" remains
    }

    #[test]
    fn gather_preserves_order_and_repeats() {
        let c = col();
        let g = c.gather(&[3, 3, 1]);
        assert_eq!(g.codes(), &[0, 0, 1]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn from_int_codes_decodes_identity() {
        let c = Column::from_int_codes(vec![2, 0, 1], 3);
        assert_eq!(c.value(0), &Value::Int(2));
        assert_eq!(c.value(1), &Value::Int(0));
        assert_eq!(c.cardinality(), 3);
    }

    #[test]
    #[should_panic(expected = "dictionary range")]
    fn out_of_range_code_panics() {
        let dict: Arc<[Value]> = vec![Value::Int(0)].into();
        let _ = Column::new(vec![1], dict);
    }

    #[test]
    fn empty_column() {
        let dict: Arc<[Value]> = Vec::<Value>::new().into();
        let c = Column::new(vec![], dict);
        assert!(c.is_empty());
        assert_eq!(c.cardinality(), 0);
    }
}
