//! One-pass tuple streams.
//!
//! The paper notes that its sampling algorithms "can easily be
//! implemented in the streaming model" with space proportional to the
//! sample size. [`TupleSource`] is the abstraction those one-pass
//! builders consume: a fallible iterator of owned tuples plus the
//! attribute names.

use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::AttrId;
use crate::value::Value;

/// A one-pass source of tuples.
pub trait TupleSource {
    /// Attribute names, fixed for the life of the stream.
    fn attr_names(&self) -> Vec<String>;

    /// Number of attributes `m`.
    fn n_attrs(&self) -> usize {
        self.attr_names().len()
    }

    /// Yields the next tuple, or `Ok(None)` at end of stream.
    fn next_tuple(&mut self) -> Result<Option<Vec<Value>>, DatasetError>;

    /// A hint of the total number of tuples, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streams an in-memory [`Dataset`] row by row.
pub struct DatasetTupleSource<'a> {
    ds: &'a Dataset,
    next: usize,
}

impl<'a> DatasetTupleSource<'a> {
    /// Creates a stream over all rows of `ds`.
    pub fn new(ds: &'a Dataset) -> Self {
        DatasetTupleSource { ds, next: 0 }
    }
}

impl TupleSource for DatasetTupleSource<'_> {
    fn attr_names(&self) -> Vec<String> {
        self.ds.schema().names().map(str::to_string).collect()
    }

    fn n_attrs(&self) -> usize {
        self.ds.n_attrs()
    }

    fn next_tuple(&mut self) -> Result<Option<Vec<Value>>, DatasetError> {
        if self.next >= self.ds.n_rows() {
            return Ok(None);
        }
        let row = self.ds.row(self.next).to_vec();
        self.next += 1;
        Ok(Some(row))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.ds.n_rows() - self.next)
    }
}

/// An owned, in-memory tuple stream (useful in tests and examples).
pub struct VecTupleSource {
    names: Vec<String>,
    rows: std::vec::IntoIter<Vec<Value>>,
    remaining: usize,
}

impl VecTupleSource {
    /// Creates a stream from attribute names and owned rows.
    pub fn new<I, S>(names: I, rows: Vec<Vec<Value>>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let remaining = rows.len();
        VecTupleSource {
            names: names.into_iter().map(Into::into).collect(),
            rows: rows.into_iter(),
            remaining,
        }
    }
}

impl TupleSource for VecTupleSource {
    fn attr_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn n_attrs(&self) -> usize {
        self.names.len()
    }

    fn next_tuple(&mut self) -> Result<Option<Vec<Value>>, DatasetError> {
        match self.rows.next() {
            Some(r) => {
                self.remaining -= 1;
                if r.len() != self.names.len() {
                    return Err(DatasetError::RowArity {
                        row: 0,
                        expected: self.names.len(),
                        got: r.len(),
                    });
                }
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Drains a stream into a materialised [`Dataset`] (for tests and for
/// callers that decide the data fits in memory after all).
pub fn collect_stream(source: &mut dyn TupleSource) -> Result<Dataset, DatasetError> {
    let mut b = crate::builder::DatasetBuilder::new(source.attr_names());
    while let Some(row) = source.next_tuple()? {
        b.push_row(row)?;
    }
    Ok(b.finish())
}

/// Convenience: the projection of an owned tuple onto an attribute set.
pub fn project_tuple(tuple: &[Value], attrs: &[AttrId]) -> Vec<Value> {
    attrs.iter().map(|&a| tuple[a.index()].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    fn tiny() -> Dataset {
        let mut b = DatasetBuilder::new(["a", "b"]);
        b.push_row([Value::Int(1), Value::text("x")]).unwrap();
        b.push_row([Value::Int(2), Value::text("y")]).unwrap();
        b.finish()
    }

    #[test]
    fn dataset_stream_roundtrip() {
        let ds = tiny();
        let mut s = DatasetTupleSource::new(&ds);
        assert_eq!(s.size_hint(), Some(2));
        let back = collect_stream(&mut s).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.value(1, 0.into()), &Value::Int(2));
    }

    #[test]
    fn vec_stream_yields_all() {
        let mut s = VecTupleSource::new(["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(s.size_hint(), Some(2));
        assert_eq!(s.next_tuple().unwrap(), Some(vec![Value::Int(1)]));
        assert_eq!(s.size_hint(), Some(1));
        assert_eq!(s.next_tuple().unwrap(), Some(vec![Value::Int(2)]));
        assert_eq!(s.next_tuple().unwrap(), None);
    }

    #[test]
    fn vec_stream_arity_error() {
        let mut s = VecTupleSource::new(["a", "b"], vec![vec![Value::Int(1)]]);
        assert!(s.next_tuple().is_err());
    }

    #[test]
    fn project_tuple_picks_attrs() {
        let t = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(
            project_tuple(&t, &[AttrId::new(2), AttrId::new(0)]),
            vec![Value::Int(3), Value::Int(1)]
        );
    }

    #[test]
    fn empty_stream_collects_empty() {
        let mut s = VecTupleSource::new(["a"], vec![]);
        let ds = collect_stream(&mut s).unwrap();
        assert_eq!(ds.n_rows(), 0);
        assert_eq!(ds.n_attrs(), 1);
    }
}
