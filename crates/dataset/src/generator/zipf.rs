//! Zipf-distributed category sampling.

use rand::{Rng, RngExt};

/// Samples category ids `0..cardinality` with probability
/// `P(i) ∝ 1 / (i+1)^exponent`.
///
/// Real categorical attributes (occupation, native country, soil type …)
/// are heavy-tailed; the benchmark-set generators use Zipf marginals to
/// reproduce the clique-size profiles that drive the paper's sampling
/// phenomena. `exponent = 0` degenerates to the uniform distribution.
///
/// Implementation: the cumulative distribution is precomputed once and
/// sampled by binary search — O(cardinality) memory, O(log cardinality)
/// per draw, exact for any exponent.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `cardinality` categories.
    ///
    /// # Panics
    /// Panics if `cardinality == 0` or `exponent` is not finite.
    pub fn new(cardinality: u64, exponent: f64) -> Self {
        assert!(cardinality > 0, "Zipf cardinality must be positive");
        assert!(exponent.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(cardinality as usize);
        let mut total = 0.0f64;
        for i in 0..cardinality {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.0.
        let norm = total;
        for c in &mut cumulative {
            *c /= norm;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cumulative }
    }

    /// Number of categories.
    pub fn cardinality(&self) -> u64 {
        self.cumulative.len() as u64
    }

    /// Draws one category id in `0..cardinality`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the first
        // index whose cumulative mass reaches u.
        let idx = self.cumulative.partition_point(|&c| c < u);
        idx.min(self.cumulative.len() - 1) as u64
    }

    /// The probability mass of category `i`.
    pub fn pmf(&self, i: u64) -> f64 {
        let i = i as usize;
        if i >= self.cumulative.len() {
            return 0.0;
        }
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(10, 1.0);
        let total: f64 = (0..10).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(10), 0.0);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn heavier_exponent_concentrates_head() {
        let z1 = ZipfSampler::new(100, 0.5);
        let z2 = ZipfSampler::new(100, 2.0);
        assert!(z2.pmf(0) > z1.pmf(0));
        assert!(z2.pmf(99) < z1.pmf(99));
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = ZipfSampler::new(50, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let s = z.sample(&mut rng) as usize;
            counts[s] += 1;
        }
        // Head category should dominate under exponent 1.5.
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 20_000 / 10);
    }

    #[test]
    fn cardinality_one_always_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cardinality_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
