//! Generators reproducing the shapes of the paper's evaluation data sets.
//!
//! The paper (Section 4) evaluates on UCI **Adult** (32,561 × 14), UCI
//! **Covtype** (581,012 × 54) and the 2016 Current Population Survey
//! (millions × 388). Those files are not redistributable here, so each
//! generator reproduces the *structural* properties the algorithms are
//! sensitive to — row count, attribute count, per-attribute cardinality
//! and skew, functional dependencies and one-hot blocks — as argued in
//! DESIGN.md. When real CSVs are available, [`crate::csv::read_csv_path`]
//! loads them with the same downstream API.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::Dataset;
use crate::generator::spec::{ColumnSpec, DatasetSpec, SourceRef};

/// The three named evaluation workloads of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkSet {
    /// UCI Adult shape: 32,561 rows × 14 attributes.
    Adult,
    /// UCI Covtype shape: 581,012 rows × 54 attributes.
    Covtype,
    /// US Census CPS 2016 shape: 388 attributes; row count configurable
    /// (the real file has millions of rows; both algorithms' costs are
    /// independent of `n`, see DESIGN.md).
    Cps,
}

impl BenchmarkSet {
    /// Canonical display name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkSet::Adult => "Adult",
            BenchmarkSet::Covtype => "Covtype",
            BenchmarkSet::Cps => "CPS",
        }
    }

    /// Generates this workload at its default scale.
    pub fn generate(self, seed: u64) -> Dataset {
        match self {
            BenchmarkSet::Adult => adult_like(seed),
            BenchmarkSet::Covtype => covtype_like(seed),
            BenchmarkSet::Cps => cps_like(seed, 150_000),
        }
    }
}

/// UCI Adult shape: 32,561 rows, 14 attributes with the real schema's
/// names, cardinalities and skew; `education-num` is an exact functional
/// copy of `education` as in the real data.
pub fn adult_like(seed: u64) -> Dataset {
    DatasetSpec::new(32_561)
        .column(
            "age",
            ColumnSpec::Zipf {
                cardinality: 73,
                exponent: 0.4,
            },
        )
        .column(
            "workclass",
            ColumnSpec::Zipf {
                cardinality: 9,
                exponent: 1.6,
            },
        )
        .column(
            "fnlwgt",
            ColumnSpec::Uniform {
                cardinality: 21_648,
            },
        )
        .column(
            "education",
            ColumnSpec::Zipf {
                cardinality: 16,
                exponent: 0.9,
            },
        )
        .column(
            "education-num",
            ColumnSpec::Derived {
                source: SourceRef::Column(3),
                collapse: 1,
            },
        )
        .column(
            "marital-status",
            ColumnSpec::Zipf {
                cardinality: 7,
                exponent: 1.2,
            },
        )
        .column(
            "occupation",
            ColumnSpec::Zipf {
                cardinality: 15,
                exponent: 0.5,
            },
        )
        .column(
            "relationship",
            ColumnSpec::Zipf {
                cardinality: 6,
                exponent: 0.9,
            },
        )
        .column(
            "race",
            ColumnSpec::Zipf {
                cardinality: 5,
                exponent: 2.2,
            },
        )
        .column("sex", ColumnSpec::Binary { p_one: 0.331 })
        .column(
            "capital-gain",
            ColumnSpec::Zipf {
                cardinality: 119,
                exponent: 2.4,
            },
        )
        .column(
            "capital-loss",
            ColumnSpec::Zipf {
                cardinality: 92,
                exponent: 2.6,
            },
        )
        .column(
            "hours-per-week",
            ColumnSpec::Zipf {
                cardinality: 94,
                exponent: 1.1,
            },
        )
        .column(
            "native-country",
            ColumnSpec::Zipf {
                cardinality: 41,
                exponent: 2.4,
            },
        )
        .generate(seed)
        .expect("adult_like spec is statically valid")
}

/// UCI Covtype shape: 581,012 rows, 54 attributes — 10 numeric columns
/// plus the 4-way wilderness and 40-way soil one-hot indicator blocks.
pub fn covtype_like(seed: u64) -> Dataset {
    covtype_like_scaled(seed, 581_012)
}

/// [`covtype_like`] with a custom row count (tests use small scales).
pub fn covtype_like_scaled(seed: u64, n_rows: usize) -> Dataset {
    let mut spec = DatasetSpec::new(n_rows)
        // Latent 0: wilderness area (4 categories); latent 1: soil type (40).
        .latent(ColumnSpec::Zipf {
            cardinality: 4,
            exponent: 0.9,
        })
        .latent(ColumnSpec::Zipf {
            cardinality: 40,
            exponent: 0.8,
        })
        .column("elevation", ColumnSpec::Uniform { cardinality: 1_978 })
        .column("aspect", ColumnSpec::Uniform { cardinality: 361 })
        .column(
            "slope",
            ColumnSpec::Zipf {
                cardinality: 67,
                exponent: 0.8,
            },
        )
        .column(
            "horiz-dist-hydrology",
            ColumnSpec::Zipf {
                cardinality: 551,
                exponent: 0.5,
            },
        )
        .column(
            "vert-dist-hydrology",
            ColumnSpec::Zipf {
                cardinality: 700,
                exponent: 0.5,
            },
        )
        .column(
            "horiz-dist-roadways",
            ColumnSpec::Uniform { cardinality: 5_785 },
        )
        .column(
            "hillshade-9am",
            ColumnSpec::Zipf {
                cardinality: 207,
                exponent: 0.4,
            },
        )
        .column(
            "hillshade-noon",
            ColumnSpec::Zipf {
                cardinality: 185,
                exponent: 0.4,
            },
        )
        .column(
            "hillshade-3pm",
            ColumnSpec::Zipf {
                cardinality: 255,
                exponent: 0.4,
            },
        )
        .column(
            "horiz-dist-fire",
            ColumnSpec::Uniform { cardinality: 5_827 },
        );
    for w in 0..4u64 {
        spec = spec.column(
            format!("wilderness-{w}"),
            ColumnSpec::OneHotOf {
                source: SourceRef::Latent(0),
                value: w,
            },
        );
    }
    for s in 0..40u64 {
        spec = spec.column(
            format!("soil-{s}"),
            ColumnSpec::OneHotOf {
                source: SourceRef::Latent(1),
                value: s,
            },
        );
    }
    spec.generate(seed)
        .expect("covtype_like spec is statically valid")
}

/// US Census CPS 2016 shape: 388 attributes in census-style blocks —
/// skewed low-cardinality flags and demographics, medium-cardinality
/// coded fields, high-cardinality numeric amounts, and a handful of
/// near-unique weight columns.
///
/// `n_rows` scales the data set; the paper's file has millions of rows
/// but every algorithm under study has cost independent of `n` (they see
/// only samples), so 150k rows reproduces the same behaviour.
pub fn cps_like(seed: u64, n_rows: usize) -> Dataset {
    // Column parameters are drawn from a dedicated RNG so the *schema* is
    // stable for a given seed, then generation uses DatasetSpec's own rng.
    let mut schema_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut spec = DatasetSpec::new(n_rows);
    for i in 0..388usize {
        let name = format!("cps-{i:03}");
        let col = match i % 8 {
            // Flags: binary/ternary, heavily skewed (allocation flags,
            // top-coding indicators …).
            0..=2 => ColumnSpec::Zipf {
                cardinality: schema_rng.random_range(2..=3),
                exponent: 2.5,
            },
            // Demographics: small categorical (sex, race, relationship …).
            3 | 4 => ColumnSpec::Zipf {
                cardinality: schema_rng.random_range(4..=20),
                exponent: 1.2,
            },
            // Coded fields: occupation/industry/geography codes.
            5 | 6 => ColumnSpec::Zipf {
                cardinality: schema_rng.random_range(20..=520),
                exponent: 0.9,
            },
            // Amounts: earnings, hours, weights — high cardinality.
            _ => ColumnSpec::Uniform {
                cardinality: schema_rng.random_range(500..=40_000),
            },
        };
        spec = spec.column(name, col);
    }
    spec.generate(seed)
        .expect("cps_like spec is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn adult_shape_matches_paper() {
        let ds = adult_like(1);
        assert_eq!(ds.n_rows(), 32_561);
        assert_eq!(ds.n_attrs(), 14);
        // Paper: "slightly more than 32,000 values with 14 attributes".
        assert_eq!(ds.schema().attr_by_name("sex"), Some(AttrId::new(9)));
        assert!(ds.column(AttrId::new(9)).cardinality() <= 2);
    }

    #[test]
    fn adult_education_num_is_functional() {
        let ds = adult_like(2);
        let edu = ds.schema().attr_by_name("education").unwrap();
        let num = ds.schema().attr_by_name("education-num").unwrap();
        for r1 in (0..ds.n_rows()).step_by(1000) {
            for r2 in (0..ds.n_rows()).step_by(997) {
                let same_e = ds.code(r1, edu) == ds.code(r2, edu);
                let same_n = ds.code(r1, num) == ds.code(r2, num);
                assert_eq!(same_e, same_n);
            }
        }
    }

    #[test]
    fn covtype_shape_small_scale() {
        let ds = covtype_like_scaled(1, 5_000);
        assert_eq!(ds.n_rows(), 5_000);
        assert_eq!(ds.n_attrs(), 54);
        // One-hot blocks: each row is 1 in exactly one wilderness column.
        for r in (0..5_000).step_by(117) {
            let ones: i64 = (10..14)
                .map(|a| ds.value(r, AttrId::new(a)).as_int().unwrap())
                .sum();
            assert_eq!(ones, 1, "row {r} has {ones} wilderness indicators set");
        }
    }

    #[test]
    fn cps_shape_scaled() {
        let ds = cps_like(1, 2_000);
        assert_eq!(ds.n_rows(), 2_000);
        assert_eq!(ds.n_attrs(), 388);
    }

    #[test]
    fn cps_schema_stable_across_scales() {
        // Same seed, different n: per-column cardinality *classes* match.
        let a = cps_like(7, 500);
        let b = cps_like(7, 1_000);
        assert_eq!(a.n_attrs(), b.n_attrs());
        for i in (0..388).step_by(31) {
            assert_eq!(
                a.schema().attr(AttrId::new(i)).name(),
                b.schema().attr(AttrId::new(i)).name()
            );
        }
    }

    #[test]
    fn benchmark_set_names() {
        assert_eq!(BenchmarkSet::Adult.name(), "Adult");
        assert_eq!(BenchmarkSet::Covtype.name(), "Covtype");
        assert_eq!(BenchmarkSet::Cps.name(), "CPS");
    }
}
