//! Seedable synthetic data generators.
//!
//! Two families:
//!
//! * a declarative per-column distribution language
//!   ([`ColumnSpec`] / [`DatasetSpec`]) used to build arbitrary
//!   workloads, plus [`adult_like`] / [`covtype_like`] / [`cps_like`]
//!   which instantiate it to reproduce the *shapes* of the paper's
//!   three evaluation data sets (UCI Adult, UCI Covtype, US Census CPS
//!   2016 — see DESIGN.md for the substitution rationale).
//! * the two adversarial constructions from the
//!   paper's lower-bound proofs: the grid data set `[q]^m` of Lemma 3
//!   (kept implicit: `q^m` rows are never materialised) and the
//!   planted-clique data set of Lemma 4.

mod benchmark_sets;
mod lower_bounds;
mod spec;
mod zipf;

pub use benchmark_sets::{adult_like, covtype_like, covtype_like_scaled, cps_like, BenchmarkSet};
pub use lower_bounds::{planted_clique, planted_clique_size, GridDataset};
pub use spec::{ColumnSpec, DatasetSpec, SourceRef};
pub use zipf::ZipfSampler;
