//! The adversarial constructions behind the paper's lower bounds.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::value::Value;

/// The grid data set `D = {1, …, q}^m` from the proof of **Lemma 3**
/// (the `Ω(√(log m / ε))` lower bound for constant failure probability).
///
/// `D` has `q^m` rows — far too many to materialise — but the proof only
/// ever *samples* from it, and sampling a uniform tuple is sampling each
/// coordinate i.i.d. uniform on `{0, …, q−1}`. This type keeps the data
/// set implicit and exposes exactly that sampling operation.
///
/// Key properties (proved in Appendix C.1, validated in tests here):
/// every singleton attribute set is *bad* for `ε ≈ 1/q`, because its
/// auxiliary graph consists of `q` cliques of size `q^(m−1)`.
#[derive(Clone, Copy, Debug)]
pub struct GridDataset {
    q: u64,
    m: usize,
}

impl GridDataset {
    /// Creates the implicit grid data set `[q]^m`.
    ///
    /// # Panics
    /// Panics if `q == 0` or `m == 0`.
    pub fn new(q: u64, m: usize) -> Self {
        assert!(q > 0, "grid base q must be positive");
        assert!(m > 0, "grid dimension m must be positive");
        GridDataset { q, m }
    }

    /// The per-coordinate alphabet size `q` (≈ `1/ε`).
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The number of attributes `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The (implicit) number of rows `q^m`, saturating at `u128::MAX`.
    pub fn n_rows(&self) -> u128 {
        let mut n: u128 = 1;
        for _ in 0..self.m {
            n = n.saturating_mul(self.q as u128);
        }
        n
    }

    /// The separation shortfall of every singleton attribute set: a
    /// single coordinate partitions the rows into `q` equal cliques, so
    /// it fails to separate a `((q^(m-1) - 1) / (q^m - 1))`-fraction of
    /// pairs — about `1/q`. Singletons are `ε`-bad for any
    /// `ε` below this value.
    pub fn singleton_unseparated_fraction(&self) -> f64 {
        let n = self.n_rows() as f64;
        let clique = n / self.q as f64;
        (clique - 1.0) / (n - 1.0)
    }

    /// Samples one uniform tuple (each coordinate i.i.d. uniform).
    pub fn sample_tuple<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        (0..self.m).map(|_| rng.random_range(0..self.q)).collect()
    }

    /// Samples `r` tuples i.i.d. (sampling **with replacement** from the
    /// implicit data set — exactly the model of Appendix C.1) and
    /// materialises them as a [`Dataset`] for downstream algorithms.
    pub fn sample(&self, r: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> = (0..self.m).map(|i| format!("x{i}")).collect();
        let mut b = DatasetBuilder::new(names);
        for _ in 0..r {
            let t = self.sample_tuple(&mut rng);
            b.push_row(t.into_iter().map(|v| Value::Int(v as i64)))
                .expect("grid tuples have fixed arity");
        }
        b.finish()
    }
}

/// The planted-clique data set from the proof of **Lemma 4** (the
/// `Ω(m/√ε)` lower bound for failure probability `e^−m`).
///
/// Construction (Appendix C.2): coordinate 0 takes a single value on
/// `⌈√(2ε)·n⌉` rows (one big clique in the auxiliary graph `G_{0}`) and
/// pairwise-distinct values elsewhere (isolated vertices); coordinate 1
/// is a row id so that a key exists; remaining coordinates are random
/// bits. Rejecting the bad singleton `{0}` requires sampling two rows of
/// the big clique, which needs `Ω(m/√ε)` uniform samples.
///
/// # Panics
/// Panics if `ε` is outside `(0, 1/2]`, `m < 2`, or the clique would not
/// fit (`√(2ε)·n < 2`).
pub fn planted_clique(n: usize, m: usize, eps: f64, seed: u64) -> Dataset {
    assert!(
        eps > 0.0 && eps <= 0.5,
        "eps must be in (0, 1/2], got {eps}"
    );
    assert!(m >= 2, "need at least 2 attributes (clique + key)");
    let clique = ((2.0 * eps).sqrt() * n as f64).ceil() as usize;
    assert!(
        (2..=n).contains(&clique),
        "clique size {clique} infeasible for n = {n}"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    // Randomly choose which rows belong to the big clique, so samplers
    // cannot exploit row order.
    let mut rows: Vec<usize> = (0..n).collect();
    // Partial Fisher–Yates: the first `clique` entries become the clique.
    for i in 0..clique {
        let j = rng.random_range(i..n);
        rows.swap(i, j);
    }
    let mut coord0 = vec![0i64; n];
    let mut next_distinct = 1i64;
    let mut in_clique = vec![false; n];
    for &r in &rows[..clique] {
        in_clique[r] = true;
    }
    for (r, c0) in coord0.iter_mut().enumerate() {
        if !in_clique[r] {
            *c0 = next_distinct;
            next_distinct += 1;
        }
    }

    let names: Vec<String> = (0..m).map(|i| format!("x{i}")).collect();
    let mut b = DatasetBuilder::new(names);
    for (r, &c0) in coord0.iter().enumerate() {
        let mut row = Vec::with_capacity(m);
        row.push(Value::Int(c0));
        row.push(Value::Int(r as i64)); // coordinate 1: a perfect key
        for _ in 2..m {
            row.push(Value::Int(i64::from(rng.random_bool(0.5))));
        }
        b.push_row(row).expect("planted rows have fixed arity");
    }
    b.finish()
}

/// The size of the planted clique for given `(n, ε)` — exposed so
/// experiments can compute exact detection probabilities.
pub fn planted_clique_size(n: usize, eps: f64) -> usize {
    ((2.0 * eps).sqrt() * n as f64).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use std::collections::HashMap;

    #[test]
    fn grid_counts() {
        let g = GridDataset::new(10, 3);
        assert_eq!(g.n_rows(), 1000);
        let f = g.singleton_unseparated_fraction();
        // 10 cliques of 100 rows: (100-1)/(1000-1) ≈ 0.0991
        assert!((f - 99.0 / 999.0).abs() < 1e-12);
    }

    #[test]
    fn grid_saturates() {
        let g = GridDataset::new(u64::MAX, 3);
        assert_eq!(g.n_rows(), u128::MAX);
    }

    #[test]
    fn grid_samples_in_range_and_deterministic() {
        let g = GridDataset::new(7, 4);
        let a = g.sample(50, 3);
        let b = g.sample(50, 3);
        assert_eq!(a.n_rows(), 50);
        assert_eq!(a.n_attrs(), 4);
        for r in 0..50 {
            for c in 0..4 {
                let v = a.value(r, AttrId::new(c)).as_int().unwrap();
                assert!((0..7).contains(&v));
                assert_eq!(a.value(r, AttrId::new(c)), b.value(r, AttrId::new(c)));
            }
        }
    }

    #[test]
    fn grid_coordinates_roughly_uniform() {
        let g = GridDataset::new(4, 2);
        let ds = g.sample(8000, 11);
        let mut counts = [0usize; 4];
        for r in 0..ds.n_rows() {
            counts[ds.value(r, AttrId::new(0)).as_int().unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "counts {counts:?} not uniform");
        }
    }

    #[test]
    fn planted_clique_structure() {
        let n = 10_000;
        let eps = 0.02;
        let ds = planted_clique(n, 5, eps, 42);
        assert_eq!(ds.n_rows(), n);
        assert_eq!(ds.n_attrs(), 5);

        // Coordinate 0: one clique of the advertised size, singletons
        // elsewhere.
        let mut freq: HashMap<u32, usize> = HashMap::new();
        for r in 0..n {
            *freq.entry(ds.code(r, AttrId::new(0))).or_default() += 1;
        }
        let expected = planted_clique_size(n, eps);
        let mut big: Vec<usize> = freq.values().copied().filter(|&c| c > 1).collect();
        big.sort_unstable();
        assert_eq!(big, vec![expected], "exactly one clique of size {expected}");

        // Coordinate 1 is a key.
        let mut seen = std::collections::HashSet::new();
        for r in 0..n {
            assert!(seen.insert(ds.code(r, AttrId::new(1))));
        }
    }

    #[test]
    fn planted_clique_singleton_zero_is_bad() {
        let n = 5_000;
        let eps = 0.01;
        let ds = planted_clique(n, 3, eps, 7);
        let c = planted_clique_size(n, eps) as u128;
        // Unseparated pairs within the big clique: C(c, 2) > ε·C(n, 2)
        // (this is the Lemma 4 inequality |E(G_A)| > ε n(n−1)/2).
        let unseparated = c * (c - 1) / 2;
        let total = ds.n_pairs();
        assert!(
            unseparated as f64 > eps * total as f64,
            "{unseparated} vs eps*total = {}",
            eps * total as f64
        );
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn planted_clique_rejects_bad_eps() {
        let _ = planted_clique(100, 3, 0.9, 0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn planted_clique_rejects_tiny_n() {
        let _ = planted_clique(2, 3, 0.0001, 0);
    }
}
