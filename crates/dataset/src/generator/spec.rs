//! Declarative synthetic data-set specifications.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::schema::{Attribute, DataType, Schema};
use crate::value::Value;

use super::zipf::ZipfSampler;

/// Where a derived column reads its input from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceRef {
    /// A latent (hidden) column by index; latents are generated first and
    /// never appear in the output schema.
    Latent(usize),
    /// An earlier *output* column by index (must be `<` the current one).
    Column(usize),
}

/// Per-column value distribution.
#[derive(Clone, Debug)]
pub enum ColumnSpec {
    /// Uniform over `0..cardinality`.
    Uniform {
        /// Number of distinct raw values.
        cardinality: u64,
    },
    /// Zipf over `0..cardinality` with the given exponent
    /// (`P(i) ∝ 1/(i+1)^exponent`).
    Zipf {
        /// Number of distinct raw values.
        cardinality: u64,
        /// Skew exponent; `0` is uniform.
        exponent: f64,
    },
    /// The row index itself — a perfect key on its own.
    RowId,
    /// A single constant value — separates nothing on its own.
    Constant,
    /// `1` with probability `p_one`, else `0`.
    Binary {
        /// Probability of a `1`.
        p_one: f64,
    },
    /// Indicator column: `1` iff the source column equals `value`
    /// (one-hot encodings, as in UCI Covtype's soil/wilderness blocks).
    OneHotOf {
        /// The categorical column being encoded.
        source: SourceRef,
        /// The category this indicator fires on.
        value: u64,
    },
    /// Deterministic coarsening of another column: `v ↦ v / collapse`.
    /// With `collapse = 1` this is an exact functional copy (e.g. UCI
    /// Adult's `education-num` is determined by `education`).
    Derived {
        /// The column being coarsened.
        source: SourceRef,
        /// Integer divisor applied to the source's raw value.
        collapse: u64,
    },
    /// A copy of another column that is re-randomised with probability
    /// `flip_prob` (models noisy functional dependencies / fuzzy
    /// duplicates).
    NoisyCopy {
        /// The column being copied.
        source: SourceRef,
        /// Probability that a row's value is replaced by a uniform draw.
        flip_prob: f64,
        /// Cardinality of the uniform replacement draw.
        cardinality: u64,
    },
}

impl ColumnSpec {
    fn validate(&self, name: &str) -> Result<(), DatasetError> {
        let bad = |msg: String| Err(DatasetError::InvalidSpec(format!("column {name:?}: {msg}")));
        match self {
            ColumnSpec::Uniform { cardinality } if *cardinality == 0 => {
                return bad("cardinality must be positive".into());
            }
            ColumnSpec::Zipf {
                cardinality,
                exponent,
            } => {
                if *cardinality == 0 {
                    return bad("cardinality must be positive".into());
                }
                if !exponent.is_finite() {
                    return bad("exponent must be finite".into());
                }
            }
            ColumnSpec::Binary { p_one } if !(0.0..=1.0).contains(p_one) => {
                return bad(format!("p_one {p_one} outside [0, 1]"));
            }
            ColumnSpec::Derived { collapse, .. } if *collapse == 0 => {
                return bad("collapse must be positive".into());
            }
            ColumnSpec::NoisyCopy {
                flip_prob,
                cardinality,
                ..
            } => {
                if !(0.0..=1.0).contains(flip_prob) {
                    return bad(format!("flip_prob {flip_prob} outside [0, 1]"));
                }
                if *cardinality == 0 {
                    return bad("cardinality must be positive".into());
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn source(&self) -> Option<SourceRef> {
        match self {
            ColumnSpec::OneHotOf { source, .. }
            | ColumnSpec::Derived { source, .. }
            | ColumnSpec::NoisyCopy { source, .. } => Some(*source),
            _ => None,
        }
    }
}

/// A complete synthetic data-set specification: optional latent columns
/// (generated but not emitted) plus named output columns.
///
/// ```
/// use qid_dataset::generator::{ColumnSpec, DatasetSpec};
///
/// let spec = DatasetSpec::new(1000)
///     .column("id", ColumnSpec::RowId)
///     .column("city", ColumnSpec::Zipf { cardinality: 50, exponent: 1.1 })
///     .column("flag", ColumnSpec::Binary { p_one: 0.2 });
/// let ds = spec.generate(42).unwrap();
/// assert_eq!(ds.n_rows(), 1000);
/// assert_eq!(ds.n_attrs(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    n_rows: usize,
    latents: Vec<ColumnSpec>,
    columns: Vec<(String, ColumnSpec)>,
}

impl DatasetSpec {
    /// Starts a spec for a data set of `n_rows` tuples.
    pub fn new(n_rows: usize) -> Self {
        DatasetSpec {
            n_rows,
            latents: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Adds a latent (hidden) column and returns its index for
    /// [`SourceRef::Latent`].
    pub fn latent(mut self, spec: ColumnSpec) -> Self {
        self.latents.push(spec);
        self
    }

    /// Adds an output column.
    pub fn column(mut self, name: impl Into<String>, spec: ColumnSpec) -> Self {
        self.columns.push((name.into(), spec));
        self
    }

    /// Number of output columns so far.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows this spec will generate.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Generates the data set deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<Dataset, DatasetError> {
        let mut rng = StdRng::seed_from_u64(seed);

        // Latents may not reference anything.
        for (i, spec) in self.latents.iter().enumerate() {
            if spec.source().is_some() {
                return Err(DatasetError::InvalidSpec(format!(
                    "latent {i} may not reference another column"
                )));
            }
        }
        let latents: Vec<Vec<u64>> = self
            .latents
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                spec.validate(&format!("latent#{i}"))?;
                Ok(generate_raw(spec, self.n_rows, &mut rng, &[], &[]))
            })
            .collect::<Result<_, DatasetError>>()?;

        let mut raw_columns: Vec<Vec<u64>> = Vec::with_capacity(self.columns.len());
        for (i, (name, spec)) in self.columns.iter().enumerate() {
            spec.validate(name)?;
            if let Some(src) = spec.source() {
                match src {
                    SourceRef::Latent(l) if l >= latents.len() => {
                        return Err(DatasetError::InvalidSpec(format!(
                            "column {name:?} references latent {l}, but only {} exist",
                            latents.len()
                        )));
                    }
                    SourceRef::Column(c) if c >= i => {
                        return Err(DatasetError::InvalidSpec(format!(
                            "column {name:?} references column {c}, which is not earlier than it"
                        )));
                    }
                    _ => {}
                }
            }
            let raw = generate_raw(spec, self.n_rows, &mut rng, &latents, &raw_columns);
            raw_columns.push(raw);
        }

        // Dense-encode each raw column; dictionary values keep the raw
        // integers so the data reads naturally.
        let mut attrs = Vec::with_capacity(self.columns.len());
        let mut cols = Vec::with_capacity(self.columns.len());
        for ((name, _), raw) in self.columns.iter().zip(raw_columns) {
            let (codes, dict) = dense_encode(&raw);
            attrs.push(Attribute::new(name.clone(), DataType::Int));
            cols.push(Arc::new(Column::new(codes, dict)));
        }
        Ok(Dataset::new(Schema::new(attrs), cols))
    }
}

/// Generates the raw `u64` values for one column.
fn generate_raw(
    spec: &ColumnSpec,
    n_rows: usize,
    rng: &mut StdRng,
    latents: &[Vec<u64>],
    earlier: &[Vec<u64>],
) -> Vec<u64> {
    let read = |src: SourceRef, row: usize| -> u64 {
        match src {
            SourceRef::Latent(l) => latents[l][row],
            SourceRef::Column(c) => earlier[c][row],
        }
    };
    match spec {
        ColumnSpec::Uniform { cardinality } => (0..n_rows)
            .map(|_| rng.random_range(0..*cardinality))
            .collect(),
        ColumnSpec::Zipf {
            cardinality,
            exponent,
        } => {
            let z = ZipfSampler::new(*cardinality, *exponent);
            (0..n_rows).map(|_| z.sample(rng)).collect()
        }
        ColumnSpec::RowId => (0..n_rows as u64).collect(),
        ColumnSpec::Constant => vec![0; n_rows],
        ColumnSpec::Binary { p_one } => (0..n_rows)
            .map(|_| u64::from(rng.random_bool(*p_one)))
            .collect(),
        ColumnSpec::OneHotOf { source, value } => (0..n_rows)
            .map(|r| u64::from(read(*source, r) == *value))
            .collect(),
        ColumnSpec::Derived { source, collapse } => {
            (0..n_rows).map(|r| read(*source, r) / collapse).collect()
        }
        ColumnSpec::NoisyCopy {
            source,
            flip_prob,
            cardinality,
        } => (0..n_rows)
            .map(|r| {
                if rng.random_bool(*flip_prob) {
                    rng.random_range(0..*cardinality)
                } else {
                    read(*source, r)
                }
            })
            .collect(),
    }
}

/// Maps raw values to dense `u32` codes (first-appearance order) and
/// builds the decoding dictionary.
fn dense_encode(raw: &[u64]) -> (Vec<u32>, Arc<[Value]>) {
    let mut map: HashMap<u64, u32> = HashMap::new();
    let mut dict: Vec<Value> = Vec::new();
    let codes = raw
        .iter()
        .map(|&v| match map.get(&v) {
            Some(&c) => c,
            None => {
                let c = dict.len() as u32;
                dict.push(Value::Int(v as i64));
                map.insert(v, c);
                c
            }
        })
        .collect();
    (codes, dict.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn deterministic_given_seed() {
        let spec = DatasetSpec::new(200)
            .column("u", ColumnSpec::Uniform { cardinality: 10 })
            .column(
                "z",
                ColumnSpec::Zipf {
                    cardinality: 5,
                    exponent: 1.0,
                },
            );
        let a = spec.generate(99).unwrap();
        let b = spec.generate(99).unwrap();
        for r in 0..200 {
            assert_eq!(a.code(r, 0.into()), b.code(r, 0.into()));
            assert_eq!(a.code(r, 1.into()), b.code(r, 1.into()));
        }
        let c = spec.generate(100).unwrap();
        let same = (0..200).all(|r| a.code(r, 0.into()) == c.code(r, 0.into()));
        assert!(!same, "different seeds should differ somewhere");
    }

    #[test]
    fn row_id_is_a_key() {
        let ds = DatasetSpec::new(50)
            .column("id", ColumnSpec::RowId)
            .generate(1)
            .unwrap();
        assert_eq!(ds.column(0.into()).cardinality(), 50);
    }

    #[test]
    fn constant_has_cardinality_one() {
        let ds = DatasetSpec::new(50)
            .column("c", ColumnSpec::Constant)
            .generate(1)
            .unwrap();
        assert_eq!(ds.column(0.into()).cardinality(), 1);
    }

    #[test]
    fn derived_copy_is_functional_dependency() {
        let ds = DatasetSpec::new(500)
            .column("base", ColumnSpec::Uniform { cardinality: 20 })
            .column(
                "copy",
                ColumnSpec::Derived {
                    source: SourceRef::Column(0),
                    collapse: 1,
                },
            )
            .generate(3)
            .unwrap();
        for r1 in 0..50 {
            for r2 in 0..50 {
                let same_base = ds.code(r1, 0.into()) == ds.code(r2, 0.into());
                let same_copy = ds.code(r1, 1.into()) == ds.code(r2, 1.into());
                assert_eq!(same_base, same_copy);
            }
        }
    }

    #[test]
    fn derived_collapse_coarsens() {
        let ds = DatasetSpec::new(100)
            .column("base", ColumnSpec::RowId)
            .column(
                "bucket",
                ColumnSpec::Derived {
                    source: SourceRef::Column(0),
                    collapse: 10,
                },
            )
            .generate(3)
            .unwrap();
        assert_eq!(ds.column(1.into()).cardinality(), 10);
        assert_eq!(ds.value(37, 1.into()), &Value::Int(3));
    }

    #[test]
    fn one_hot_of_latent() {
        let ds = DatasetSpec::new(1000)
            .latent(ColumnSpec::Uniform { cardinality: 4 })
            .column(
                "is0",
                ColumnSpec::OneHotOf {
                    source: SourceRef::Latent(0),
                    value: 0,
                },
            )
            .column(
                "is1",
                ColumnSpec::OneHotOf {
                    source: SourceRef::Latent(0),
                    value: 1,
                },
            )
            .generate(5)
            .unwrap();
        // A row can't be 1 in both indicator columns.
        for r in 0..1000 {
            let a = ds.value(r, 0.into()).as_int().unwrap();
            let b = ds.value(r, 1.into()).as_int().unwrap();
            assert!(a + b <= 1);
        }
    }

    #[test]
    fn noisy_copy_mostly_agrees() {
        let ds = DatasetSpec::new(2000)
            .column("base", ColumnSpec::Uniform { cardinality: 50 })
            .column(
                "noisy",
                ColumnSpec::NoisyCopy {
                    source: SourceRef::Column(0),
                    flip_prob: 0.1,
                    cardinality: 50,
                },
            )
            .generate(8)
            .unwrap();
        let agree = (0..2000)
            .filter(|&r| ds.value(r, 0.into()) == ds.value(r, 1.into()))
            .count();
        assert!(agree > 1700, "agreement was only {agree}/2000");
    }

    #[test]
    fn forward_reference_rejected() {
        let err = DatasetSpec::new(10)
            .column(
                "bad",
                ColumnSpec::Derived {
                    source: SourceRef::Column(0),
                    collapse: 1,
                },
            )
            .generate(0)
            .unwrap_err();
        assert!(matches!(err, DatasetError::InvalidSpec(_)));
    }

    #[test]
    fn missing_latent_rejected() {
        let err = DatasetSpec::new(10)
            .column(
                "bad",
                ColumnSpec::OneHotOf {
                    source: SourceRef::Latent(0),
                    value: 1,
                },
            )
            .generate(0)
            .unwrap_err();
        assert!(matches!(err, DatasetError::InvalidSpec(_)));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(DatasetSpec::new(10)
            .column("u", ColumnSpec::Uniform { cardinality: 0 })
            .generate(0)
            .is_err());
        assert!(DatasetSpec::new(10)
            .column("b", ColumnSpec::Binary { p_one: 1.5 })
            .generate(0)
            .is_err());
    }

    #[test]
    fn zero_rows_is_fine() {
        let ds = DatasetSpec::new(0)
            .column("u", ColumnSpec::Uniform { cardinality: 3 })
            .generate(0)
            .unwrap();
        assert_eq!(ds.n_rows(), 0);
    }

    #[test]
    fn binary_p_extremes() {
        let ds = DatasetSpec::new(100)
            .column("zero", ColumnSpec::Binary { p_one: 0.0 })
            .column("one", ColumnSpec::Binary { p_one: 1.0 })
            .generate(0)
            .unwrap();
        assert_eq!(ds.column(AttrId::new(0)).cardinality(), 1);
        assert_eq!(ds.value(0, 0.into()), &Value::Int(0));
        assert_eq!(ds.value(0, 1.into()), &Value::Int(1));
    }
}
