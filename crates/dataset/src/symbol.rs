//! String interning so repeated text values share one allocation.

use std::collections::HashMap;
use std::sync::Arc;

/// A string interner.
///
/// CSV parsing and streaming ingestion see the same category strings
/// millions of times; interning turns each occurrence into a cheap
/// `Arc<str>` clone of a single allocation. The interner is purely an
/// ingestion-side optimisation — [`crate::Value::Text`] values compare by
/// content whether or not they were interned.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Arc<str>, ()>,
    limit: Option<usize>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner that stops *caching* after `limit` distinct
    /// strings: further unseen strings are returned as fresh
    /// allocations instead of being retained. Streaming ingestion uses
    /// this so a high-cardinality text column (the canonical
    /// quasi-identifier!) cannot grow the interner to `O(n)` while the
    /// reservoir itself stays `O(m/√ε)`.
    pub fn with_limit(limit: usize) -> Self {
        Interner {
            map: HashMap::new(),
            limit: Some(limit),
        }
    }

    /// Returns the shared `Arc<str>` for `s`, allocating it on first
    /// use (without retaining it once over the limit, if any).
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some((k, ())) = self.map.get_key_value(s) {
            return Arc::clone(k);
        }
        let arc: Arc<str> = Arc::from(s);
        if self.limit.is_none_or(|l| self.map.len() < l) {
            self.map.insert(Arc::clone(&arc), ());
        }
        arc
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_share_allocation() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn limit_caps_retained_strings() {
        let mut i = Interner::with_limit(2);
        let a = i.intern("a");
        i.intern("b");
        i.intern("c"); // over the limit: returned but not retained
        i.intern("d");
        assert_eq!(i.len(), 2);
        // Cached strings still share; uncached ones are fresh each time.
        assert!(Arc::ptr_eq(&a, &i.intern("a")));
        let c1 = i.intern("c");
        let c2 = i.intern("c");
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_eq!(c1, c2);
    }

    #[test]
    fn distinct_strings_distinct_arcs() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn intern_empty_string() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(&*e, "");
        assert_eq!(i.len(), 1);
    }
}
