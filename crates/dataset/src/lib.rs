//! # qid-dataset — data substrate for quasi-identifier discovery
//!
//! This crate implements the data-set model of Hildebrant, Le, Ta and Vu,
//! *"Towards Better Bounds for Finding Quasi-Identifiers"* (PODS 2023):
//! a data set is `n` tuples over `m` attributes whose values live in a
//! totally ordered universe `U` with constant-time comparisons.
//!
//! Design highlights:
//!
//! * **Dictionary-encoded columnar storage.** Every column stores one
//!   `u32` code per row plus a dictionary mapping codes back to
//!   [`Value`]s. Two rows agree on an attribute iff their codes are
//!   equal, so the separation predicates at the heart of the paper are
//!   single integer comparisons. Codes themselves form a total order
//!   (any total order suffices for the paper's sort-based algorithms).
//! * **Immutable, cheaply shareable data.** Columns and dictionaries are
//!   behind `Arc`, so projections ([`Dataset::project`]) and row subsets
//!   ([`Dataset::gather`]) — the operations sketching algorithms perform
//!   constantly — are cheap and allocation-light.
//! * **Synthetic workload generators** ([`generator`]) reproducing the
//!   shapes of the paper's three evaluation data sets (UCI Adult, UCI
//!   Covtype, Census CPS 2016) and the two lower-bound constructions of
//!   Lemmas 3 and 4.
//! * **CSV I/O** ([`csv`]) so real UCI files can be swapped in.
//!
//! ```
//! use qid_dataset::{DatasetBuilder, Value};
//!
//! let mut b = DatasetBuilder::new(["city", "zip", "age"]);
//! b.push_row([Value::text("SD"), Value::Int(92101), Value::Int(33)]).unwrap();
//! b.push_row([Value::text("SD"), Value::Int(92102), Value::Int(41)]).unwrap();
//! let ds = b.finish();
//! assert_eq!(ds.n_rows(), 2);
//! assert_eq!(ds.n_attrs(), 3);
//! // The two rows agree on "city" but differ on "zip".
//! assert_eq!(ds.code(0, 0.into()), ds.code(1, 0.into()));
//! assert_ne!(ds.code(0, 1.into()), ds.code(1, 1.into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod column;
pub mod csv;
mod dataset;
mod error;
pub mod generator;
mod schema;
mod stream;
mod symbol;
mod value;

pub use builder::DatasetBuilder;
pub use column::Column;
pub use dataset::{Dataset, RowRef};
pub use error::DatasetError;
pub use schema::{AttrId, Attribute, DataType, Schema};
pub use stream::{collect_stream, project_tuple, DatasetTupleSource, TupleSource, VecTupleSource};
pub use symbol::Interner;
pub use value::{TotalF64, Value};
