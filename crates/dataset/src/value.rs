//! The value universe `U`: a totally ordered set with O(1) comparisons.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An `f64` wrapper with a *total* order (`f64::total_cmp`), equality and
/// hashing by bit pattern.
///
/// The paper assumes the universe `U` is totally ordered; IEEE-754 floats
/// are not (`NaN`), so all floating point attribute values are stored
/// through this wrapper. Equality by bit pattern is exactly the equality
/// induced by `total_cmp`, so `Eq`/`Ord`/`Hash` are mutually consistent.
#[derive(Clone, Copy, Debug)]
pub struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl Hash for TotalF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl From<f64> for TotalF64 {
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}
impl fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A single attribute value.
///
/// Values are totally ordered (`Null < Int < Float < Text`, and within
/// each variant by the natural order). Text values are reference-counted
/// so that dictionaries and interners can share them without copying.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Missing / unknown. Two `Null`s are *equal* (they do not separate a
    /// pair), matching the semantics used for quasi-identifier discovery
    /// in noisy data.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float under the total order of [`TotalF64`].
    Float(TotalF64),
    /// An interned / shared string.
    Text(Arc<str>),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Self {
        Value::Float(TotalF64(v))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(v.0),
            _ => None,
        }
    }

    /// The string payload, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_f64_orders_nan_and_zero() {
        let neg_zero = TotalF64(-0.0);
        let pos_zero = TotalF64(0.0);
        let nan = TotalF64(f64::NAN);
        assert!(neg_zero < pos_zero);
        assert!(pos_zero < nan);
        assert_eq!(nan, TotalF64(f64::NAN));
    }

    #[test]
    fn total_f64_hash_consistent_with_eq() {
        let a = TotalF64(1.5);
        let b = TotalF64(1.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(TotalF64(-0.0), TotalF64(0.0));
    }

    #[test]
    fn value_variant_order() {
        let mut vs = vec![
            Value::text("a"),
            Value::Int(3),
            Value::Null,
            Value::float(2.0),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Int(3),
                Value::float(2.0),
                Value::text("a"),
            ]
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), None);
        assert_eq!(Value::float(1.25).as_float(), Some(1.25));
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::float(0.5).to_string(), "0.5");
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(String::from("s")), Value::text("s"));
        assert_eq!(Value::from(2.0f64), Value::float(2.0));
    }

    #[test]
    fn null_equals_null() {
        // Nulls do not separate a pair of tuples.
        assert_eq!(Value::Null, Value::Null);
    }
}
