//! Seeded synthetic request mixes.
//!
//! A [`RequestMix`] turns `(seed, dataset, attribute names, weights)`
//! into an infinite, deterministic stream of wire-ready request lines.
//! Determinism is a hard requirement, not a convenience: a benchmark
//! row is only reproducible if the traffic behind it is, so the same
//! seed must yield a byte-identical stream on every machine (the
//! vendored `rand` shim is deterministic per seed by contract).

use qid_server::proto::{DatasetRef, Request};
use rand::{RngExt, SeedableRng, StdRng};

/// How many sub-`check`s a generated `batch` line carries.
const BATCH_FANOUT: usize = 4;

/// `audit` lattice depth in generated traffic — kept shallow so one
/// audit costs milliseconds, not the whole measurement window.
const AUDIT_MAX_KEY_SIZE: usize = 2;

/// Relative frequencies of the generated commands (any `u32`s; only
/// ratios matter, and all-zero falls back to pure `check`).
///
/// The default mix is deliberately `check`-heavy: `check` is the
/// steady-state request the zero-allocation fast path serves, so a
/// saturation run should spend most of its budget there, with enough
/// `stats`/`sketch`/`batch`/`audit` sprinkled in to keep the general
/// dispatch path honest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixWeights {
    /// Weight of `check` (fast-path candidate).
    pub check: u32,
    /// Weight of `stats` (sketch-backed, no materialisation).
    pub stats: u32,
    /// Weight of `sketch` (Theorem 2 Γ-estimate).
    pub sketch: u32,
    /// Weight of `audit` (lattice enumeration, the heavy request).
    pub audit: u32,
    /// Weight of `batch` (one line, `BATCH_FANOUT` = 4 sub-`check`s).
    pub batch: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        MixWeights {
            check: 88,
            stats: 5,
            sketch: 3,
            audit: 1,
            batch: 3,
        }
    }
}

impl MixWeights {
    /// A pure-`check` mix: every request is a fast-path candidate.
    pub fn check_only() -> Self {
        MixWeights {
            check: 1,
            stats: 0,
            sketch: 0,
            audit: 0,
            batch: 0,
        }
    }

    fn total(&self) -> u32 {
        self.check + self.stats + self.sketch + self.audit + self.batch
    }
}

/// A deterministic, seeded generator of request wire lines over one
/// dataset. Two mixes built with the same arguments produce
/// byte-identical streams.
#[derive(Debug)]
pub struct RequestMix {
    rng: StdRng,
    weights: MixWeights,
    ds: DatasetRef,
    attrs: Vec<String>,
}

impl RequestMix {
    /// Builds a mix over `ds`, drawing attribute subsets from `attrs`
    /// (the dataset's column names; an empty pool degenerates to
    /// positional `"0"`).
    pub fn new(seed: u64, ds: DatasetRef, mut attrs: Vec<String>, weights: MixWeights) -> Self {
        if attrs.is_empty() {
            attrs.push("0".to_string());
        }
        RequestMix {
            rng: StdRng::seed_from_u64(seed),
            weights,
            ds,
            attrs,
        }
    }

    /// The next request in the stream.
    pub fn next_request(&mut self) -> Request {
        let total = self.weights.total();
        let mut pick = if total == 0 {
            0
        } else {
            self.rng.random_range(0..total)
        };
        let w = self.weights;
        if total == 0 || pick < w.check {
            return Request::Check {
                ds: self.ds.clone(),
                attrs: self.draw_attrs(),
            };
        }
        pick -= w.check;
        if pick < w.stats {
            return Request::Stats {
                ds: self.ds.clone(),
            };
        }
        pick -= w.stats;
        if pick < w.sketch {
            return Request::Sketch {
                ds: self.ds.clone(),
                attrs: self.draw_attrs(),
            };
        }
        pick -= w.sketch;
        if pick < w.audit {
            return Request::Audit {
                ds: self.ds.clone(),
                max_key_size: AUDIT_MAX_KEY_SIZE,
            };
        }
        Request::Batch {
            requests: (0..BATCH_FANOUT)
                .map(|_| Request::Check {
                    ds: self.ds.clone(),
                    attrs: self.draw_attrs(),
                })
                .collect(),
        }
    }

    /// The next request, encoded as one wire line (no trailing
    /// newline).
    pub fn next_line(&mut self) -> String {
        self.next_request().encode()
    }

    /// Draws 1–3 distinct attribute names via a partial Fisher–Yates
    /// shuffle over the pool indices.
    fn draw_attrs(&mut self) -> Vec<String> {
        let n = self.attrs.len();
        let k = self.rng.random_range(1..=n.min(3));
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.rng.random_range(i..n);
            indices.swap(i, j);
        }
        indices[..k]
            .iter()
            .map(|&i| self.attrs[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> DatasetRef {
        DatasetRef {
            path: "/data/people.csv".to_string(),
            eps: 0.01,
            seed: 7,
        }
    }

    fn pool() -> Vec<String> {
        vec!["zip".into(), "age".into(), "sex".into(), "job".into()]
    }

    #[test]
    fn same_seed_yields_a_byte_identical_stream() {
        let mut a = RequestMix::new(42, ds(), pool(), MixWeights::default());
        let mut b = RequestMix::new(42, ds(), pool(), MixWeights::default());
        for _ in 0..1000 {
            assert_eq!(a.next_line(), b.next_line());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RequestMix::new(1, ds(), pool(), MixWeights::default());
        let mut b = RequestMix::new(2, ds(), pool(), MixWeights::default());
        let diverged = (0..100).any(|_| a.next_line() != b.next_line());
        assert!(diverged, "two seeds produced the same 100-line stream");
    }

    #[test]
    fn default_mix_covers_every_command_and_stays_check_heavy() {
        let mut m = RequestMix::new(7, ds(), pool(), MixWeights::default());
        let mut checks = 0usize;
        let mut others = std::collections::BTreeSet::new();
        let total = 2000;
        for _ in 0..total {
            match m.next_request() {
                Request::Check { attrs, .. } => {
                    checks += 1;
                    assert!(!attrs.is_empty() && attrs.len() <= 3);
                    let unique: std::collections::BTreeSet<_> = attrs.iter().collect();
                    assert_eq!(unique.len(), attrs.len(), "drawn attrs must be distinct");
                }
                Request::Stats { .. } => {
                    others.insert("stats");
                }
                Request::Sketch { .. } => {
                    others.insert("sketch");
                }
                Request::Audit { max_key_size, .. } => {
                    assert_eq!(max_key_size, AUDIT_MAX_KEY_SIZE);
                    others.insert("audit");
                }
                Request::Batch { requests } => {
                    assert_eq!(requests.len(), BATCH_FANOUT);
                    assert!(requests.iter().all(|r| matches!(r, Request::Check { .. })));
                    others.insert("batch");
                }
                other => panic!("mix generated {other:?}"),
            }
        }
        assert!(
            checks > total * 3 / 4,
            "default mix should be check-heavy: {checks}/{total}"
        );
        assert_eq!(
            others.into_iter().collect::<Vec<_>>(),
            vec!["audit", "batch", "sketch", "stats"],
            "2000 draws should witness every non-check command"
        );
    }

    #[test]
    fn check_only_mix_generates_only_checks() {
        let mut m = RequestMix::new(7, ds(), pool(), MixWeights::check_only());
        for _ in 0..200 {
            assert!(matches!(m.next_request(), Request::Check { .. }));
        }
    }

    #[test]
    fn generated_lines_decode_back() {
        let mut m = RequestMix::new(3, ds(), pool(), MixWeights::default());
        for _ in 0..200 {
            let line = m.next_line();
            Request::decode(&line).expect("generated lines are valid wire requests");
        }
    }
}
