//! Aggregated results of one load run.

use qid_server::json::{obj, s, Json};

/// Everything one saturation run measured. Latency percentiles are
/// computed over the post-warm-up window only; byte counters cover the
/// whole connection lifetime (including warm-up), matching what the
/// server's `bytes_read`/`bytes_written` metrics see.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// `"closed"` or `"open"` (see [`crate::LoopMode`]).
    pub mode: String,
    /// Connections that completed the run.
    pub connections: usize,
    /// For open-loop runs, the scheduled aggregate request rate; 0 for
    /// closed loop.
    pub target_rps: u64,
    /// Measured-window wall time, seconds.
    pub elapsed_s: f64,
    /// Requests measured (after warm-up).
    pub requests: u64,
    /// Measured requests answered `"ok":true`.
    pub ok: u64,
    /// Measured requests answered with a structured error — still a
    /// served request, but counted separately so a mix that trips
    /// errors is visible.
    pub errors: u64,
    /// Connection-level failures: connect/write/read I/O errors or an
    /// unexpected EOF. A healthy run has zero.
    pub transport_errors: u64,
    /// Measured requests per second (`requests / elapsed_s`).
    pub rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile request latency, microseconds.
    pub p999_us: f64,
    /// Request bytes written to the sockets (newlines included).
    pub bytes_sent: u64,
    /// Response bytes read off the sockets.
    pub bytes_received: u64,
}

impl BenchReport {
    /// Assembles a report from raw per-request latencies
    /// (microseconds, unsorted — sorted in place here) and counters.
    #[allow(clippy::too_many_arguments)] // a plain result bundle
    pub fn from_raw(
        mode: &str,
        connections: usize,
        target_rps: u64,
        elapsed_s: f64,
        latencies_us: &mut [u64],
        ok: u64,
        errors: u64,
        transport_errors: u64,
        bytes_sent: u64,
        bytes_received: u64,
    ) -> BenchReport {
        latencies_us.sort_unstable();
        let requests = ok + errors;
        BenchReport {
            mode: mode.to_string(),
            connections,
            target_rps,
            elapsed_s,
            requests,
            ok,
            errors,
            transport_errors,
            rps: if elapsed_s > 0.0 {
                requests as f64 / elapsed_s
            } else {
                0.0
            },
            p50_us: quantile_us(latencies_us, 0.50),
            p99_us: quantile_us(latencies_us, 0.99),
            p999_us: quantile_us(latencies_us, 0.999),
            bytes_sent,
            bytes_received,
        }
    }

    /// Renders the report as one JSON object (the shape embedded in
    /// `BENCH_server.json`'s `saturation` rows; every field is
    /// documented in `docs/BENCHMARKS.md`).
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("mode", s(&self.mode)),
            ("connections", Json::Int(self.connections as i64)),
            ("target_rps", Json::Int(self.target_rps as i64)),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("requests", Json::Int(self.requests as i64)),
            ("ok", Json::Int(self.ok as i64)),
            ("errors", Json::Int(self.errors as i64)),
            ("transport_errors", Json::Int(self.transport_errors as i64)),
            ("rps", Json::Num(self.rps)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("p999_us", Json::Num(self.p999_us)),
            ("bytes_sent", Json::Int(self.bytes_sent as i64)),
            ("bytes_received", Json::Int(self.bytes_received as i64)),
        ])
    }

    /// [`Self::to_json_value`] rendered to a string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// Nearest-rank quantile over an ascending-sorted slice, in
/// microseconds; 0 for an empty slice.
fn quantile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(quantile_us(&sorted, 0.50), 500.0);
        assert_eq!(quantile_us(&sorted, 0.99), 990.0);
        assert_eq!(quantile_us(&sorted, 0.999), 999.0);
        assert_eq!(quantile_us(&[], 0.5), 0.0);
        assert_eq!(quantile_us(&[42], 0.999), 42.0);
    }

    #[test]
    fn report_renders_valid_json_with_every_field() {
        let mut lat: Vec<u64> = vec![300, 100, 200];
        let report = BenchReport::from_raw("closed", 4, 0, 2.0, &mut lat, 2, 1, 0, 400, 900);
        assert_eq!(report.requests, 3);
        assert_eq!(report.rps, 1.5);
        assert_eq!(report.p50_us, 200.0);
        let parsed = qid_server::json::parse(&report.to_json()).expect("valid json");
        for field in [
            "mode",
            "connections",
            "target_rps",
            "elapsed_s",
            "requests",
            "ok",
            "errors",
            "transport_errors",
            "rps",
            "p50_us",
            "p99_us",
            "p999_us",
            "bytes_sent",
            "bytes_received",
        ] {
            assert!(parsed.get(field).is_some(), "missing {field}");
        }
    }
}
