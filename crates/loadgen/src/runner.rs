//! The closed/open-loop driver.
//!
//! One thread per connection, all released together by a barrier:
//! a warm-up window (traffic sent, latencies discarded) followed by a
//! time-boxed measured window. The two loop disciplines answer
//! different questions:
//!
//! * **Closed loop** — each connection keeps exactly one request
//!   outstanding. Throughput is the quantity under test: the measured
//!   rps is the saturation rate at that concurrency, and latency is
//!   whatever the saturated server delivers.
//! * **Open loop** — requests are sent on a fixed schedule
//!   (`target_rps` spread evenly across connections) regardless of
//!   when replies arrive, and each latency is measured from the
//!   *scheduled* send time. A server that stalls therefore accrues
//!   queueing delay in the percentiles instead of quietly pausing the
//!   arrival clock — the coordinated-omission trap closed-loop
//!   latencies fall into.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use qid_server::proto::{DatasetRef, LoadMode, Request, Response};
use qid_server::Client;

use crate::mix::{MixWeights, RequestMix};
use crate::report::BenchReport;

/// The loop discipline of a run (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopMode {
    /// One outstanding request per connection; measures saturation
    /// throughput.
    Closed,
    /// Fixed aggregate arrival rate (requests/second across all
    /// connections); measures latency under a known offered load.
    Open {
        /// Scheduled aggregate request rate, requests per second.
        rps: u64,
    },
}

/// One saturation run, fully specified. Every field is a harness knob
/// documented in `docs/BENCHMARKS.md`; two runs with equal configs
/// drive byte-identical request streams.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Dataset path *as the server resolves it* (absolute paths avoid
    /// surprises when the server's working directory differs).
    pub path: String,
    /// Separation slack ε of the dataset key.
    pub eps: f64,
    /// Mix seed; also the dataset-key seed.
    pub seed: u64,
    /// Concurrent connections (clamped to ≥ 1).
    pub connections: usize,
    /// Measured-window length.
    pub duration: Duration,
    /// Warm-up window before measurement: traffic flows (closed-loop),
    /// latencies are discarded. Lets the registry, caches, and branch
    /// predictors settle.
    pub warmup: Duration,
    /// Loop discipline.
    pub mode: LoopMode,
    /// Request-mix weights.
    pub weights: MixWeights,
}

/// What one connection thread brings home.
#[derive(Debug, Default)]
struct ConnStats {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    transport_errors: u64,
    bytes_sent: u64,
    bytes_received: u64,
    /// This connection's actual measured-window length, seconds
    /// (≥ `duration` when the final request ran past the deadline).
    measured_s: f64,
}

/// Runs one load configuration to completion and aggregates the
/// per-connection results.
///
/// Errors on the *setup* path (connecting the control client, loading
/// the dataset) are returned as `Err`; errors during the run itself
/// (a connection dying mid-window) are data, counted in
/// [`BenchReport::transport_errors`].
pub fn run(config: &LoadConfig) -> io::Result<BenchReport> {
    let connections = config.connections.max(1);
    let ds = DatasetRef {
        path: config.path.clone(),
        eps: config.eps,
        seed: config.seed,
    };

    // Setup, outside every measured window: load the dataset once
    // (stream mode — the resident sample answers the whole mix) and
    // learn the column names the mix draws attribute subsets from.
    let mut control = Client::connect(&config.addr)?;
    match control
        .call(&Request::Load {
            ds: ds.clone(),
            mode: LoadMode::Stream,
        })
        .map_err(|e| io::Error::other(format!("load request failed: {e}")))?
    {
        Response::Loaded { .. } => {}
        Response::Error { message } => {
            return Err(io::Error::other(format!("server rejected load: {message}")));
        }
        other => {
            return Err(io::Error::other(format!(
                "unexpected load reply: {other:?}"
            )))
        }
    }
    let attrs: Vec<String> = match control
        .call(&Request::Stats { ds: ds.clone() })
        .map_err(|e| io::Error::other(format!("stats request failed: {e}")))?
    {
        Response::Stats { columns, .. } => columns.into_iter().map(|(name, _)| name).collect(),
        other => {
            return Err(io::Error::other(format!(
                "unexpected stats reply: {other:?}"
            )))
        }
    };

    // All threads connect, then start warm-up together on the barrier;
    // the main thread measures the wall clock of the post-warm-up
    // window (its own barrier arrival is the start signal).
    let barrier = Arc::new(Barrier::new(connections + 1));
    let mut handles = Vec::with_capacity(connections);
    for i in 0..connections {
        let barrier = Arc::clone(&barrier);
        let config = config.clone();
        let ds = ds.clone();
        let attrs = attrs.clone();
        let handle = std::thread::Builder::new()
            .name(format!("qid-loadgen-{i}"))
            .spawn(move || drive_connection(i, connections, &config, ds, attrs, &barrier))
            .expect("spawn loadgen thread");
        handles.push(handle);
    }
    barrier.wait();

    let mut latencies = Vec::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut transport_errors = 0u64;
    let mut bytes_sent = 0u64;
    let mut bytes_received = 0u64;
    let mut measured_windows: Vec<f64> = Vec::new();
    for handle in handles {
        let stats = handle
            .join()
            .map_err(|_| io::Error::other("a load-generator thread panicked"))?;
        latencies.extend_from_slice(&stats.latencies_us);
        ok += stats.ok;
        errors += stats.errors;
        transport_errors += stats.transport_errors;
        bytes_sent += stats.bytes_sent;
        bytes_received += stats.bytes_received;
        if stats.measured_s > 0.0 {
            measured_windows.push(stats.measured_s);
        }
    }
    // Throughput is requests over the *measured* window. Threads may
    // start their windows at slightly different times (warm-up
    // overruns), so the mean per-connection window is the honest
    // denominator.
    let elapsed_s = if measured_windows.is_empty() {
        0.0
    } else {
        measured_windows.iter().sum::<f64>() / measured_windows.len() as f64
    };

    let (mode, target_rps) = match config.mode {
        LoopMode::Closed => ("closed", 0),
        LoopMode::Open { rps } => ("open", rps),
    };
    Ok(BenchReport::from_raw(
        mode,
        connections,
        target_rps,
        elapsed_s,
        &mut latencies,
        ok,
        errors,
        transport_errors,
        bytes_sent,
        bytes_received,
    ))
}

/// Runs one connection through warm-up and the measured window.
fn drive_connection(
    index: usize,
    connections: usize,
    config: &LoadConfig,
    ds: DatasetRef,
    attrs: Vec<String>,
    barrier: &Barrier,
) -> ConnStats {
    let mut stats = ConnStats::default();
    // Decorrelate per-connection streams without losing determinism:
    // the sub-seed is a pure function of (seed, connection index).
    let sub_seed = config
        .seed
        .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut mix = RequestMix::new(sub_seed, ds, attrs, config.weights);

    let stream = TcpStream::connect(&config.addr);
    let stream = match stream.and_then(|s| {
        s.set_nodelay(true)?;
        s.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(s)
    }) {
        Ok(stream) => stream,
        Err(_) => {
            // The barrier must not deadlock on a failed connect.
            barrier.wait();
            stats.transport_errors = 1;
            return stats;
        }
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            barrier.wait();
            stats.transport_errors = 1;
            return stats;
        }
    });
    let mut writer = stream;
    let mut reply = String::new();

    barrier.wait();
    let started = Instant::now();

    // Warm-up: closed-loop in both modes (its only job is to settle
    // caches); latencies discarded, bytes still counted so the totals
    // stay cross-checkable against the server's byte counters.
    while started.elapsed() < config.warmup {
        if exchange(&mut mix, &mut writer, &mut reader, &mut reply, &mut stats).is_none() {
            return stats;
        }
    }
    // A slow request straddling the warm-up boundary (the first
    // `sketch` triggers a one-time sketch build; an `audit` enumerates
    // the lattice) may overrun the wall window; the measured window
    // still gets its full `duration`, starting when warm-up actually
    // ended.
    let measure_from = started.elapsed().max(config.warmup);
    let deadline = measure_from + config.duration;

    'measure: {
        match config.mode {
            LoopMode::Closed => {
                while started.elapsed() < deadline {
                    let t = Instant::now();
                    let Some(served_ok) =
                        exchange(&mut mix, &mut writer, &mut reader, &mut reply, &mut stats)
                    else {
                        break 'measure;
                    };
                    stats.latencies_us.push(t.elapsed().as_micros() as u64);
                    if served_ok {
                        stats.ok += 1;
                    } else {
                        stats.errors += 1;
                    }
                }
            }
            LoopMode::Open { rps } => {
                // Each connection owns every `connections`-th slot of
                // the aggregate schedule, phase-shifted by its index so
                // the fleet's arrivals interleave instead of bursting.
                let interval =
                    Duration::from_nanos(1_000_000_000u64 * connections as u64 / rps.max(1));
                let phase = interval * index as u32 / connections as u32;
                let mut k = 0u32;
                loop {
                    let scheduled = measure_from + phase + interval * k;
                    if scheduled >= deadline {
                        break;
                    }
                    if let Some(lag) = scheduled.checked_sub(started.elapsed()) {
                        std::thread::sleep(lag);
                    }
                    let Some(served_ok) =
                        exchange(&mut mix, &mut writer, &mut reader, &mut reply, &mut stats)
                    else {
                        break 'measure;
                    };
                    // Latency from the *scheduled* arrival: running
                    // late (a slow previous reply) is queueing delay
                    // the percentile must include.
                    let lat = started.elapsed().saturating_sub(scheduled);
                    stats.latencies_us.push(lat.as_micros() as u64);
                    if served_ok {
                        stats.ok += 1;
                    } else {
                        stats.errors += 1;
                    }
                    k += 1;
                }
            }
        }
    }
    stats.measured_s = started.elapsed().saturating_sub(measure_from).as_secs_f64();
    stats
}

/// One request/reply exchange. Returns `Some(true)` for an `"ok":true`
/// reply, `Some(false)` for a structured error reply, and `None` after
/// recording a transport error (the connection is dead).
fn exchange(
    mix: &mut RequestMix,
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    reply: &mut String,
    stats: &mut ConnStats,
) -> Option<bool> {
    let line = mix.next_line();
    let sent = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
    if sent.is_err() {
        stats.transport_errors += 1;
        return None;
    }
    stats.bytes_sent += line.len() as u64 + 1;
    reply.clear();
    match reader.read_line(reply) {
        Ok(0) | Err(_) => {
            stats.transport_errors += 1;
            None
        }
        Ok(n) => {
            stats.bytes_received += n as u64;
            Some(reply.starts_with(r#"{"ok":true"#))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_server::{Server, ServerConfig};

    /// End-to-end smoke: a tiny closed-loop run against an in-process
    /// server over a generated CSV must finish with zero transport
    /// errors, non-zero throughput, and byte counters that agree with
    /// the server's own read/write metrics.
    #[test]
    fn closed_loop_smoke_run_agrees_with_server_byte_counters() {
        let dir = std::env::temp_dir().join("qid-loadgen-smoke");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("people.csv");
        let mut csv = String::from("zip,age,sex\n");
        for i in 0..200 {
            csv.push_str(&format!("{:05},{},{}\n", i % 97, 18 + i % 60, i % 2));
        }
        std::fs::write(&path, csv).expect("write csv");

        let server = Server::bind(&ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr();
        let state = server.state();
        let running = server.spawn();

        let report = run(&LoadConfig {
            addr: addr.to_string(),
            path: path.to_str().expect("utf-8 path").to_string(),
            eps: 0.05,
            seed: 7,
            connections: 2,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(100),
            mode: LoopMode::Closed,
            weights: MixWeights::default(),
        })
        .expect("run");

        assert_eq!(report.mode, "closed");
        assert_eq!(report.connections, 2);
        assert_eq!(report.transport_errors, 0, "{report:?}");
        assert_eq!(report.errors, 0, "the mix over a loaded dataset is all-ok");
        assert!(report.requests > 0 && report.rps > 0.0, "{report:?}");
        assert!(report.p50_us > 0.0 && report.p50_us <= report.p99_us);
        assert!(report.p99_us <= report.p999_us);

        // Server-side cross-check: the harness's sent bytes are a
        // lower bound on what the server read (the control client and
        // shutdown below also produce traffic), and likewise for the
        // response direction.
        let mut client = Client::connect(addr).expect("connect");
        let server_report = match client.call(&Request::Metrics).expect("metrics") {
            Response::Metrics(r) => r,
            other => panic!("metrics failed: {other:?}"),
        };
        assert!(
            server_report.bytes_read >= report.bytes_sent,
            "server read {} < harness sent {}",
            server_report.bytes_read,
            report.bytes_sent
        );
        assert!(
            server_report.bytes_written >= report.bytes_received,
            "server wrote {} < harness received {}",
            server_report.bytes_written,
            report.bytes_received
        );
        client.call(&Request::Shutdown).expect("shutdown");
        running.join().expect("server exits");
        drop(state);
    }

    /// Open-loop pacing: the measured request count tracks the
    /// scheduled rate (loosely — CI machines jitter), and the run
    /// honours the configured mode in the report.
    #[test]
    fn open_loop_run_paces_near_the_scheduled_rate() {
        let dir = std::env::temp_dir().join("qid-loadgen-open");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("people.csv");
        std::fs::write(&path, "a,b\n1,2\n3,4\n5,6\n7,8\n").expect("write csv");

        let server = Server::bind(&ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr();
        let running = server.spawn();

        let report = run(&LoadConfig {
            addr: addr.to_string(),
            path: path.to_str().expect("utf-8 path").to_string(),
            eps: 0.05,
            seed: 11,
            connections: 2,
            duration: Duration::from_millis(500),
            warmup: Duration::from_millis(50),
            mode: LoopMode::Open { rps: 200 },
            weights: MixWeights::check_only(),
        })
        .expect("run");

        assert_eq!(report.mode, "open");
        assert_eq!(report.target_rps, 200);
        assert_eq!(report.transport_errors, 0, "{report:?}");
        // 200 rps × 0.5 s ≈ 100 scheduled arrivals; allow wide slack
        // for scheduler jitter but reject both runaway and stalled
        // pacing.
        assert!((30..=140).contains(&(report.requests as i64)), "{report:?}");

        let mut client = Client::connect(addr).expect("connect");
        client.call(&Request::Shutdown).expect("shutdown");
        running.join().expect("server exits");
    }
}
