//! # qid-loadgen — saturation load generation for `qid-server`
//!
//! The server benchmarks up to PR 5 measured *sequential* round trips:
//! one client, one outstanding request. That answers "how fast is one
//! request" but not "what does the server do at saturation" — the
//! question the zero-allocation request path exists for. This crate is
//! the missing harness:
//!
//! * [`mix`] — a **seeded synthetic request mix**: a deterministic
//!   stream of `check` / `stats` / `sketch` / `audit` / `batch` wire
//!   lines over one loaded dataset. Same seed ⇒ byte-identical stream,
//!   so a benchmark row names everything needed to reproduce it.
//! * [`runner`] — the **closed/open-loop driver**: N concurrent
//!   connections, each sending its own seeded mix for a time-boxed
//!   window. Closed loop keeps one request outstanding per connection
//!   (throughput-seeking); open loop sends on a fixed schedule and
//!   measures latency from the *scheduled* send time, so a stalling
//!   server accrues queueing delay instead of silently pausing the
//!   clock (no coordinated omission).
//! * [`report`] — the aggregated [`report::BenchReport`]: rps,
//!   p50/p99/p999 latency, error and transport-error counts, and
//!   bytes sent/received (cross-checkable against the server's
//!   `bytes_read`/`bytes_written` metrics).
//!
//! The harness allocates freely — it is the *measuring* side. The
//! zero-allocation discipline applies to the server under test, and is
//! proved separately by the counting-allocator test in the root crate.
//!
//! See `docs/BENCHMARKS.md` for every knob and how to read the output.
//!
//! ## One measured run
//!
//! ```no_run
//! use qid_loadgen::{LoadConfig, LoopMode};
//! use std::time::Duration;
//!
//! let report = qid_loadgen::run(&LoadConfig {
//!     addr: "127.0.0.1:4070".to_string(),
//!     path: "data.csv".to_string(),
//!     eps: 0.01,
//!     seed: 7,
//!     connections: 16,
//!     duration: Duration::from_secs(10),
//!     warmup: Duration::from_secs(1),
//!     mode: LoopMode::Closed,
//!     weights: qid_loadgen::MixWeights::default(),
//! })
//! .unwrap();
//! println!("{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mix;
pub mod report;
pub mod runner;

pub use mix::{MixWeights, RequestMix};
pub use report::BenchReport;
pub use runner::{run, LoadConfig, LoopMode};
