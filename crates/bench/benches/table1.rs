//! Regenerates the paper's **Table 1**. Scale via `QID_SCALE=full`.

use qid_bench::experiments::{run_table1, Table1Config};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[table1] scale = {scale:?} (set QID_SCALE=full for paper-size data)");
    let table = run_table1(Table1Config::paper(scale));
    table.print();
}
