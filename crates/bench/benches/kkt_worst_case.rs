//! Regenerates the **Lemma 1 / Lemma 2 / Appendix C.3** analysis
//! experiments (E5).

use qid_bench::experiments::{
    run_c3_table, run_collision_experiment, run_kkt_worst_case, KktConfig,
};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[kkt] scale = {scale:?}");
    run_c3_table().print();
    let cfg = KktConfig::paper(scale);
    run_kkt_worst_case(cfg).print();
    run_collision_experiment(cfg, 10).print();
}
