//! Regenerates the **Lemma 3** lower-bound shape (experiment E1).

use qid_bench::experiments::{run_lemma3, Lemma3Config};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[lemma3] scale = {scale:?}");
    run_lemma3(Lemma3Config::paper(scale)).print();
}
