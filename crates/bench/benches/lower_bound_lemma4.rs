//! Regenerates the **Lemma 4** lower-bound shape (experiment E2).

use qid_bench::experiments::{run_lemma4, Lemma4Config};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[lemma4] scale = {scale:?}");
    run_lemma4(Lemma4Config::paper(scale)).print();
}
