//! Regenerates the **Theorem 2** sketch experiments (E3): accuracy
//! sweep plus the Section 3.2 hard-instance decoding demonstration.

use qid_bench::experiments::{run_hard_instance_decode, run_sketch_accuracy, SketchAccuracyConfig};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[sketch] scale = {scale:?}");
    run_sketch_accuracy(SketchAccuracyConfig::paper(scale)).print();
    let (k, t, m) = match scale {
        Scale::Smoke => (3, 3, 4),
        _ => (5, 4, 8),
    };
    run_hard_instance_decode(k, t, m, 1234).print();
}
