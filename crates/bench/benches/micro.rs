//! **E6 — Criterion micro-benchmarks** for the paper's cost claims:
//! filter query time (`O(|A|·m/ε)` vs `O(|A|·(m/√ε)·log(m/ε))`),
//! sketch construction, partition refinement, and the greedy cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qid_core::filter::{FilterParams, PairSampleFilter, SeparationFilter, TupleSampleFilter};
use qid_core::minkey::GreedyRefineMinKey;
use qid_core::separation::{PartitionIndex, Refiner};
use qid_core::sketch::{NonSeparationSketch, SketchParams};
use qid_dataset::generator::covtype_like_scaled;
use qid_dataset::AttrId;

fn covtype_small() -> qid_dataset::Dataset {
    covtype_like_scaled(7, 20_000)
}

fn query_attrs(m: usize) -> Vec<AttrId> {
    // A mid-size subset: every third attribute.
    (0..m).step_by(3).map(AttrId::new).collect()
}

fn bench_filter_queries(c: &mut Criterion) {
    let ds = covtype_small();
    let attrs = query_attrs(ds.n_attrs());
    let mut group = c.benchmark_group("filter_query");
    for &eps in &[0.01, 0.001] {
        let params = FilterParams::new(eps);
        let pair = PairSampleFilter::build(&ds, params, 1);
        let tuple = TupleSampleFilter::build(&ds, params, 1);
        group.bench_with_input(BenchmarkId::new("pair_MX", eps), &eps, |b, _| {
            b.iter(|| black_box(pair.query(black_box(&attrs))))
        });
        group.bench_with_input(BenchmarkId::new("tuple_sorted", eps), &eps, |b, _| {
            b.iter(|| black_box(tuple.query_sorted(black_box(&attrs))))
        });
        group.bench_with_input(BenchmarkId::new("tuple_hashed", eps), &eps, |b, _| {
            b.iter(|| black_box(tuple.query_hashed(black_box(&attrs))))
        });
    }
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let ds = covtype_small();
    let params = FilterParams::new(0.001);
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("pair_filter", |b| {
        b.iter(|| black_box(PairSampleFilter::build(&ds, params, 2)))
    });
    group.bench_function("tuple_filter", |b| {
        b.iter(|| black_box(TupleSampleFilter::build(&ds, params, 2)))
    });
    group.bench_function("nonsep_sketch", |b| {
        b.iter(|| {
            black_box(NonSeparationSketch::build(
                &ds,
                SketchParams::new(0.1, 0.1, 4),
                2,
            ))
        })
    });
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let ds = covtype_small();
    let sample = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rows = qid_sampling::swor::sample_indices(&mut rng, ds.n_rows(), 2_000);
        ds.gather(&rows)
    };
    let idx = PartitionIndex::build(&sample);
    let all: Vec<u32> = (0..sample.n_rows() as u32).collect();
    let mut group = c.benchmark_group("refinement");
    group.bench_function("partition_index_build", |b| {
        b.iter(|| black_box(PartitionIndex::build(black_box(&sample))))
    });
    group.bench_function("split_sizes_one_attr", |b| {
        let mut refiner = Refiner::new(&idx);
        b.iter(|| {
            black_box(
                refiner
                    .split_sizes(&idx, AttrId::new(0), black_box(&all))
                    .len(),
            )
        })
    });
    group.bench_function("greedy_refine_full", |b| {
        b.iter(|| black_box(GreedyRefineMinKey::run_on_sample(black_box(&sample))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_queries,
    bench_builds,
    bench_refinement
);
criterion_main!(benches);
