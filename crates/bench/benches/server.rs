//! E8: served vs one-shot audit throughput. Scale via `QID_SCALE=full`.
//!
//! Besides the printed table, writes the machine-readable
//! `BENCH_server.json` (requests/sec and p50 latency per mode) to the
//! working directory so CI can track the perf trajectory.

use qid_bench::experiments::{run_server_bench, ServerBenchConfig};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[server] scale = {scale:?} (set QID_SCALE=full for paper-size data)");
    let result = run_server_bench(ServerBenchConfig::default_at(scale));
    result.table.print();
    let json = result.to_json();
    let out = "BENCH_server.json";
    match std::fs::write(out, format!("{json}\n")) {
        Ok(()) => eprintln!("[server] wrote {out}"),
        Err(e) => eprintln!("[server] could not write {out}: {e}"),
    }
}
