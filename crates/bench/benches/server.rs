//! E8: served vs one-shot audit throughput, plus closed-loop
//! saturation points from the `qid-loadgen` harness. Scale via
//! `QID_SCALE=full`.
//!
//! Besides the printed table, writes the machine-readable
//! `BENCH_server.json` (requests/sec and latency percentiles per
//! mode and per saturation point) to the working directory so CI can
//! track the perf trajectory. Exits non-zero if any saturation run
//! recorded a transport error — a connection dying under load is a
//! server bug, not a measurement.

use qid_bench::experiments::{run_server_bench, ServerBenchConfig};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[server] scale = {scale:?} (set QID_SCALE=full for paper-size data)");
    let result = run_server_bench(ServerBenchConfig::default_at(scale));
    result.table.print();
    let json = result.to_json();
    let out = "BENCH_server.json";
    match std::fs::write(out, format!("{json}\n")) {
        Ok(()) => eprintln!("[server] wrote {out}"),
        Err(e) => eprintln!("[server] could not write {out}: {e}"),
    }
    let transport_errors: u64 = result.saturation.iter().map(|p| p.transport_errors).sum();
    if transport_errors > 0 {
        eprintln!("[server] FAILED: {transport_errors} transport error(s) under saturation load");
        std::process::exit(1);
    }
}
