//! Regenerates the **Proposition 1** minimum-key comparison (E4).

use qid_bench::experiments::{run_minkey_comparison, MinKeyConfig};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[minkey] scale = {scale:?}");
    run_minkey_comparison(MinKeyConfig::paper(scale)).print();
}
