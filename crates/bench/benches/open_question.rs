//! Explores the paper's **open question** (E7): the gap between
//! `Ω(√(log m / ε))` and `Θ(m/√ε)` for constant failure probability.

use qid_bench::experiments::{run_open_question, OpenQuestionConfig};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[open-question] scale = {scale:?}");
    run_open_question(OpenQuestionConfig::paper(scale)).print();
}
