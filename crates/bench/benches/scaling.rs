//! Regenerates the **cost-scaling sweep** (E6b): sample sizes and
//! build/query times of both filters as ε shrinks.

use qid_bench::experiments::{run_scaling, ScalingConfig};
use qid_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[scaling] scale = {scale:?}");
    run_scaling(ScalingConfig::paper(scale)).print();
}
