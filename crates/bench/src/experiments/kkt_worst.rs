//! **E5 — Lemma 1 / 2 and Appendix C.3**: the worst-case clique
//! profile, and the `Θ(m/√ε)` sample bound it implies.
//!
//! Three parts:
//! 1. the C.3 counter-example reproduced exactly;
//! 2. the two-value family dominating free-form local search (Lemma 1);
//! 3. the collision experiment of Lemma 2: sampling `C·m/√ε` balls from
//!    the worst profile collides w.h.p. — the tuple filter's engine.

use qid_core::analysis::{
    best_two_value_profile, c3_example, distinct_nonzero_values, local_search_worst_profile,
    NonCollision,
};
use qid_sampling::alias::AliasTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;
use crate::timing::parallel_trials;
use crate::Scale;

/// Parameters for the worst-case profile experiment.
#[derive(Clone, Copy, Debug)]
pub struct KktConfig {
    /// Profile length `n`.
    pub n: usize,
    /// Constraint slack `ε`.
    pub eps: f64,
    /// Balls drawn per collision trial factor sweep.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KktConfig {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        KktConfig {
            n: 200,
            eps: 0.04,
            trials: scale.trials(600),
            seed: 99,
        }
    }
}

/// Part 1+2: the C.3 example and the two-value dominance sweep.
pub fn run_kkt_worst_case(cfg: KktConfig) -> Table {
    let mut table = Table::new(
        "Lemma 1 — worst-case profiles have ≤ 2 distinct values (f = e_r)",
        &[
            "n",
            "eps",
            "r",
            "f(two-value opt)",
            "f(free search)",
            "distinct vals (opt)",
        ],
    );

    // The exact C.3 setting first, then larger sweeps.
    let settings = [
        (40usize, 0.25f64, 10usize),
        (cfg.n / 4, cfg.eps * 4.0, 8),
        (cfg.n / 2, cfg.eps * 2.0, 10),
        (cfg.n, cfg.eps, 12),
    ];
    for &(n, eps, r) in &settings {
        let two = best_two_value_profile(n, eps, r);
        let free = local_search_worst_profile(n, eps, r, 2_000, cfg.seed);
        table.row(vec![
            n.to_string(),
            format!("{eps}"),
            r.to_string(),
            format!("{:.4e}", two.objective),
            format!("{:.4e}", free.objective),
            distinct_nonzero_values(&two.profile, 1e-9).to_string(),
        ]);
    }
    table
}

/// Part 1 alone: the Appendix C.3 numbers, printed exactly.
pub fn run_c3_table() -> Table {
    let (f1, f2) = c3_example();
    let mut table = Table::new(
        "Appendix C.3 — equal blocks are not optimal (n = 40, eps' = 1/16, r = 10)",
        &["profile", "f(s) = e_10(s)"],
    );
    table.row(vec!["s1 = (2.5 × 16)".to_string(), format!("{f1:.2}")]);
    table.row(vec!["s2 = (10, 1 × 30)".to_string(), format!("{f2:.0}")]);
    table
}

/// Part 3 — Lemma 2's collision bound: drawing `C·m/√ε` balls from the
/// worst two-value profile (scaled to mass `n`) collides with
/// probability `→ 1`; the analytic non-collision probability is printed
/// alongside the Monte-Carlo estimate.
pub fn run_collision_experiment(cfg: KktConfig, m: usize) -> Table {
    let worst = best_two_value_profile(cfg.n, cfg.eps, (m as f64 / cfg.eps.sqrt()) as usize);
    let nc = NonCollision::new(&worst.profile);
    let alias_weights: Vec<f64> = worst.profile.iter().copied().filter(|&v| v > 0.0).collect();
    let alias = AliasTable::new(&alias_weights);

    let mut table = Table::new(
        format!(
            "Lemma 2 — collision probability drawing r balls from the worst profile (n = {}, eps = {}, m = {m})",
            cfg.n, cfg.eps
        ),
        &["r", "r/(m/√ε)", "P(collision) analytic", "P(collision) empirical"],
    );

    let unit = m as f64 / cfg.eps.sqrt();
    for &frac in &[0.25, 0.5, 1.0, 2.0] {
        let r = ((unit * frac).round() as usize).max(2);
        let analytic = 1.0 - nc.with_replacement(r);
        let seeds: Vec<u64> = (0..cfg.trials as u64)
            .map(|t| cfg.seed ^ t.wrapping_mul(0x2545_f491) ^ ((r as u64) << 20))
            .collect();
        let hits: usize = parallel_trials(&seeds, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut seen = vec![false; alias_weights.len()];
            for _ in 0..r {
                let c = alias.sample(&mut rng);
                if seen[c] {
                    return 1usize;
                }
                seen[c] = true;
            }
            0usize
        })
        .into_iter()
        .sum();
        table.row(vec![
            r.to_string(),
            format!("{frac:.2}"),
            format!("{analytic:.4}"),
            format!("{:.4}", hits as f64 / cfg.trials as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c3_table_exact() {
        let t = run_c3_table();
        // f(s1) = C(16,10)·2.5^10 = 76,370,239.2578125 (prints rounded).
        assert!(t.cell(0, 1).starts_with("76370239.2"), "{}", t.cell(0, 1));
        assert_eq!(t.cell(1, 1), "173116515");
    }

    #[test]
    fn two_value_dominates_everywhere() {
        let cfg = KktConfig {
            n: 32,
            eps: 0.25,
            trials: 10,
            seed: 1,
        };
        let t = run_kkt_worst_case(cfg);
        for row in 0..t.n_rows() {
            let two: f64 = t.cell(row, 3).parse().unwrap();
            let free: f64 = t.cell(row, 4).parse().unwrap();
            assert!(two >= free * (1.0 - 1e-6), "row {row}: {two} < {free}");
            let distinct: usize = t.cell(row, 5).parse().unwrap();
            assert!(distinct <= 2);
        }
    }

    #[test]
    fn collision_grows_with_r_and_matches_analytic() {
        let cfg = KktConfig {
            n: 64,
            eps: 0.25,
            trials: 150,
            seed: 8,
        };
        let t = run_collision_experiment(cfg, 4);
        let mut prev = 0.0f64;
        for row in 0..t.n_rows() {
            let analytic: f64 = t.cell(row, 2).parse().unwrap();
            let emp: f64 = t.cell(row, 3).parse().unwrap();
            assert!(
                (analytic - emp).abs() < 0.15,
                "row {row}: {analytic} vs {emp}"
            );
            assert!(analytic >= prev - 1e-9, "collision must not shrink with r");
            prev = analytic;
        }
    }
}
