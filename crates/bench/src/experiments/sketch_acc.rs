//! **E3 — Theorem 2's sketch, empirically** (Section 3.1 + 3.2).
//!
//! Two tables:
//! 1. accuracy — relative error of `Γ̂_A` vs the exact `Γ_A` on random
//!    subsets of an Adult-shaped data set, as the sample budget
//!    (equivalently `ε`) varies;
//! 2. the Section 3.2 hard instance — the sketch decodes a planted
//!    Index column via the Lemma 6 gap, demonstrating the structure
//!    behind the `Ω(mk·log 1/ε)` lower bound.

use qid_core::oracle::ExactOracle;
use qid_core::sketch::{
    gamma_for_guess, index_matrix_dataset, random_index_matrix, NonSeparationSketch, SketchParams,
};
use qid_dataset::AttrId;

use crate::report::{fmt_count, Table};
use crate::workloads::{random_attr_subsets, table1_workloads};
use crate::Scale;

/// Parameters for the sketch-accuracy experiment.
#[derive(Clone, Copy, Debug)]
pub struct SketchAccuracyConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Density threshold α.
    pub alpha: f64,
    /// Query-size budget k.
    pub k: usize,
    /// Number of random subsets to evaluate.
    pub n_subsets: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl SketchAccuracyConfig {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        SketchAccuracyConfig {
            scale,
            alpha: 0.05,
            k: 4,
            n_subsets: match scale {
                Scale::Smoke => 10,
                _ => 40,
            },
            seed: 55,
        }
    }
}

/// Runs E3 (accuracy sweep) and returns the table.
pub fn run_sketch_accuracy(cfg: SketchAccuracyConfig) -> Table {
    // Adult-shaped workload (first of the Table 1 set).
    let ds = table1_workloads(cfg.scale, cfg.seed)
        .into_iter()
        .next()
        .expect("workloads non-empty")
        .dataset;
    let oracle = ExactOracle::new(&ds);
    let total_pairs = ds.n_pairs() as f64;

    let mut table = Table::new(
        format!(
            "Theorem 2 sketch — relative error on dense subsets (alpha = {}, k = {}, Adult shape, n = {})",
            cfg.alpha,
            cfg.k,
            fmt_count(ds.n_rows())
        ),
        &["eps", "pairs stored", "dense subsets", "mean rel. err", "max rel. err", "within ±eps"],
    );

    // Random subsets of size ≤ k, drawn from the low-cardinality half
    // of the schema: those are the subsets with non-trivial
    // non-separation mass (high-cardinality attributes separate nearly
    // everything, making every query "small" and the table empty).
    let mut by_card: Vec<usize> = (0..ds.n_attrs()).collect();
    by_card.sort_by_key(|&a| ds.column(AttrId::new(a)).dict_size());
    let low_card: Vec<usize> = by_card[..ds.n_attrs() / 2].to_vec();
    let subsets: Vec<Vec<AttrId>> = random_attr_subsets(low_card.len(), cfg.n_subsets, cfg.seed)
        .into_iter()
        .map(|mut s| {
            s.truncate(cfg.k);
            s.into_iter()
                .map(|a| AttrId::new(low_card[a.index()]))
                .collect()
        })
        .collect();

    for &eps in &[0.3, 0.2, 0.1, 0.05] {
        let params = SketchParams::new(cfg.alpha, eps, cfg.k);
        let sk = NonSeparationSketch::build(&ds, params, cfg.seed ^ 77);
        let mut errs = Vec::new();
        let mut within = 0usize;
        for attrs in &subsets {
            let exact = oracle.unseparated(attrs) as f64;
            if exact < cfg.alpha * total_pairs {
                continue; // not covered by the guarantee
            }
            if let Some(est) = sk.query(attrs).estimate() {
                let rel = (est - exact).abs() / exact;
                if rel <= eps {
                    within += 1;
                }
                errs.push(rel);
            } else {
                // Answering Small on a dense subset is a failure; count
                // as a max-size error.
                errs.push(1.0);
            }
        }
        let dense = errs.len();
        let mean = if dense == 0 {
            0.0
        } else {
            errs.iter().sum::<f64>() / dense as f64
        };
        let max = errs.iter().copied().fold(0.0f64, f64::max);
        table.row(vec![
            format!("{eps}"),
            fmt_count(sk.sample_size()),
            dense.to_string(),
            format!("{mean:.4}"),
            format!("{max:.4}"),
            format!("{within}/{dense}"),
        ]);
    }
    table
}

/// Runs the Section 3.2 decoding demonstration: Bob recovers a planted
/// Index column through sketch queries alone.
pub fn run_hard_instance_decode(k: usize, t: usize, m: usize, seed: u64) -> Table {
    let c = random_index_matrix(m, k, t, seed);
    let ds = index_matrix_dataset(&c);
    let n = k * t;

    // ε small enough to resolve the Lemma 6 gap:
    // 11/(200t² − 200t + 11) from Section 3.2.
    let gap_eps = 11.0 / (200.0 * (t * t) as f64 - 200.0 * t as f64 + 11.0);
    let eps = (gap_eps / 2.0).min(0.2);
    let params = SketchParams::with_multiplier(1.0 / 16.0, eps, k + 1, 4.0);
    let sk = NonSeparationSketch::build(&ds, params, seed ^ 0xbeef);

    let mut table = Table::new(
        format!(
            "Section 3.2 hard instance — decoding planted columns (k = {k}, t = {t}, m = {m}, eps = {eps:.4}, pairs stored = {})",
            fmt_count(sk.sample_size())
        ),
        &["column", "true Γ (perfect guess)", "sketch Γ̂ (perfect guess)", "Γ̂ (worst guess)", "decoded correctly"],
    );

    let perfect_gamma = gamma_for_guess(k, t, k) as f64;
    let accept_threshold = (1.0 + eps) * perfect_gamma;
    #[allow(clippy::needless_range_loop)] // col doubles as the AttrId payload
    for col in 0..m {
        let ones: Vec<usize> = (0..n).filter(|&r| c[col][r]).collect();
        let zeros: Vec<usize> = (0..n).filter(|&r| !c[col][r]).collect();

        let query = |guess: &[usize]| -> f64 {
            let attrs: Vec<AttrId> = std::iter::once(AttrId::new(col))
                .chain(guess.iter().map(|&r| AttrId::new(m + r)))
                .collect();
            sk.query(&attrs).estimate().unwrap_or(perfect_gamma) // Small never fires here: Γ > C(n,2)/16
        };

        let est_perfect = query(&ones);
        let worst: Vec<usize> = zeros.iter().copied().take(k).collect();
        let est_worst = query(&worst);

        // Bob's rule: a guess is good iff Γ̂ ≤ (1+ε)·Γ(u = k).
        let decode_ok = est_perfect <= accept_threshold && est_worst > accept_threshold;
        table.row(vec![
            col.to_string(),
            format!("{perfect_gamma:.0}"),
            format!("{est_perfect:.0}"),
            format!("{est_worst:.0}"),
            decode_ok.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_improves_with_smaller_eps() {
        let cfg = SketchAccuracyConfig {
            scale: Scale::Smoke,
            alpha: 0.05,
            k: 3,
            n_subsets: 15,
            seed: 3,
        };
        let t = run_sketch_accuracy(cfg);
        assert_eq!(t.n_rows(), 4);
        // Mean error at eps=0.05 should not exceed eps=0.3's by much;
        // typically it is far smaller. Sample sizes must grow.
        let s_loose: usize = t.cell(0, 1).replace(',', "").parse().unwrap();
        let s_tight: usize = t.cell(3, 1).replace(',', "").parse().unwrap();
        assert!(s_tight > s_loose * 20, "sample must scale as 1/eps²");
    }

    #[test]
    fn hard_instance_decodes() {
        let t = run_hard_instance_decode(3, 3, 4, 11);
        assert_eq!(t.n_rows(), 4);
        for row in 0..t.n_rows() {
            assert_eq!(t.cell(row, 4), "true", "column {row} failed to decode");
        }
    }
}
