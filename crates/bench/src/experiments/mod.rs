//! The experiment functions behind each bench target (see DESIGN.md's
//! experiment index: T1 and E1–E6).

mod kkt_worst;
mod lemma3;
mod lemma4;
mod minkey_cmp;
mod open_question;
mod scaling;
mod server;
mod sketch_acc;
mod table1;

pub use kkt_worst::{run_c3_table, run_collision_experiment, run_kkt_worst_case, KktConfig};
pub use lemma3::{run_lemma3, Lemma3Config};
pub use lemma4::{run_lemma4, Lemma4Config};
pub use minkey_cmp::{run_minkey_comparison, MinKeyConfig};
pub use open_question::{run_open_question, OpenQuestionConfig};
pub use scaling::{run_scaling, ScalingConfig};
pub use server::{run_server_bench, ModeStats, ServerBenchConfig, ServerBenchResult};
pub use sketch_acc::{run_hard_instance_decode, run_sketch_accuracy, SketchAccuracyConfig};
pub use table1::{run_table1, Table1Config};
