//! **E7 — the paper's open question**, explored empirically.
//!
//! For constant failure probability δ the paper leaves a gap: uniform
//! sampling provably needs `Ω(√(log m / ε))` tuples (Lemma 3) and
//! provably suffices with `Θ(m/√ε)` (Theorem 1). Which is the truth?
//!
//! This experiment computes, for both known hard-instance families, the
//! *exact* minimal sample size `r*` achieving failure ≤ δ:
//!
//! * the Lemma 3 grid `[q]^m` — failure = some bad singleton escapes,
//!   `P(all detected) = (1 − NC(q, r))^m` with `NC` the uniform
//!   birthday non-collision probability;
//! * the Lemma 4 planted clique — failure = the single bad coordinate
//!   escapes, hypergeometric `P(≤ 1 clique hit)`.
//!
//! Both grow like `√(1/ε)·polylog`, far below `m/√ε` — evidence that
//! for *these* families the lower bound is the truth, and that closing
//! the gap needs a genuinely different construction (or a better upper
//! bound). One Monte-Carlo column cross-checks the analytic values.

use qid_dataset::generator::{planted_clique_size, GridDataset};
use qid_dataset::AttrId;
use qid_sampling::birthday::non_collision_prob_uniform;

use crate::report::Table;
use crate::timing::parallel_trials;
use crate::Scale;

/// Parameters for the open-question exploration.
#[derive(Clone, Copy, Debug)]
pub struct OpenQuestionConfig {
    /// Separation slack (grid `q = 1/ε`).
    pub eps: f64,
    /// Target constant failure probability.
    pub delta: f64,
    /// Monte-Carlo trials for the cross-check column.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OpenQuestionConfig {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        OpenQuestionConfig {
            eps: 0.01,
            delta: 0.25,
            trials: scale.trials(300),
            seed: 77,
        }
    }
}

/// Smallest `r` with `(1 − NC(q, r))^m ≥ 1 − δ` (grid family).
fn grid_r_star(q: u64, m: usize, delta: f64) -> usize {
    let target = 1.0 - delta;
    let mut r = 2usize;
    while ((1.0 - non_collision_prob_uniform(q, r as u64)).powi(m as i32)) < target {
        r += 1;
        if r as u64 > q {
            return q as usize; // pigeonhole: guaranteed collision
        }
    }
    r
}

/// Smallest `r` with hypergeometric `P(≤1 clique hit) ≤ δ` (planted
/// family, clique `c` in `n` rows).
fn planted_r_star(n: usize, c: usize, delta: f64) -> usize {
    let ln_choose = |n: usize, k: usize| -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        let mut v = 0.0f64;
        for i in 0..k {
            v += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        v
    };
    let mut r = 2usize;
    loop {
        let denom = ln_choose(n, r);
        let p0 = (ln_choose(n - c, r) - denom).exp();
        let p1 = ((c as f64).ln() + ln_choose(n - c, r - 1) - denom).exp();
        if p0 + p1 <= delta {
            return r;
        }
        r += 1;
        if r >= n {
            return n;
        }
    }
}

/// Runs E7: `r*` vs the two bound curves, sweeping `m`.
pub fn run_open_question(cfg: OpenQuestionConfig) -> Table {
    let q = (1.0 / cfg.eps).round() as u64;
    let n_planted = 50_000usize;
    let clique = planted_clique_size(n_planted, cfg.eps);

    let mut table = Table::new(
        format!(
            "Open question — minimal r for failure ≤ δ = {} (eps = {}, grid q = {q}, planted n = {n_planted})",
            cfg.delta, cfg.eps
        ),
        &[
            "m",
            "lower √(q·ln m)",
            "upper m·√q",
            "r* grid (exact)",
            "r* grid (MC)",
            "r* planted (exact)",
        ],
    );

    for &m in &[4usize, 8, 16, 32, 64, 128] {
        let lower = ((q as f64) * (m as f64).ln()).sqrt();
        let upper = m as f64 * (q as f64).sqrt();
        let r_grid = grid_r_star(q, m, cfg.delta);
        let r_planted = planted_r_star(n_planted, clique, cfg.delta);

        // Monte-Carlo cross-check of the grid value at r = r_grid.
        let grid = GridDataset::new(q, m);
        let seeds: Vec<u64> = (0..cfg.trials as u64)
            .map(|t| cfg.seed ^ t.wrapping_mul(0x0b5d_13f5) ^ ((m as u64) << 40))
            .collect();
        let detected: usize =
            parallel_trials(&seeds, |seed| {
                let sample = grid.sample(r_grid, seed);
                usize::from((0..m).all(|a| {
                    qid_core::separation::unseparated_pairs(&sample, &[AttrId::new(a)]) > 0
                }))
            })
            .into_iter()
            .sum();
        let fail_mc = 1.0 - detected as f64 / cfg.trials as f64;
        let mc_ok = if fail_mc <= cfg.delta * 1.5 {
            "ok"
        } else {
            "high"
        };

        table.row(vec![
            m.to_string(),
            format!("{lower:.0}"),
            format!("{upper:.0}"),
            r_grid.to_string(),
            format!("{r_grid} (fail {fail_mc:.2}, {mc_ok})"),
            r_planted.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_r_star_tracks_lower_bound_not_upper() {
        // The discriminator between the two bounds is the *growth rate*
        // in m: the lower bound predicts r*(64)/r*(4) ≈ √(ln64/ln4)
        // ≈ 1.7, the upper bound predicts 16. The grid family follows
        // the lower bound.
        let q = 100u64;
        let delta = 0.25;
        let r4 = grid_r_star(q, 4, delta) as f64;
        let r64 = grid_r_star(q, 64, delta) as f64;
        let growth = r64 / r4;
        assert!(
            growth < 4.0,
            "r* grew {growth:.2}× from m=4 to m=64 — upper-bound-like, expected √log-like"
        );
        // And each value sits within a small factor of √(q ln m).
        for m in [4usize, 16, 64] {
            let r = grid_r_star(q, m, delta) as f64;
            let lower = ((q as f64) * (m as f64).ln()).sqrt();
            assert!(
                r < 6.0 * lower,
                "m={m}: r*={r} should be within a small factor of √(q ln m)={lower:.0}"
            );
        }
    }

    #[test]
    fn grid_r_star_monotone_in_m() {
        let q = 64u64;
        let mut prev = 0;
        for m in [2usize, 4, 8, 16] {
            let r = grid_r_star(q, m, 0.2);
            assert!(r >= prev, "r* must not shrink as m grows");
            prev = r;
        }
    }

    #[test]
    fn planted_r_star_independent_of_m_scale() {
        // The planted family's r* depends only on (n, c, δ).
        let r = planted_r_star(10_000, 450, 0.25);
        // Need roughly 2/p ln-ish draws with p = c/n = 0.045.
        assert!((20..200).contains(&r), "r* = {r}");
    }

    #[test]
    fn full_table_smoke() {
        let cfg = OpenQuestionConfig {
            eps: 0.04,
            delta: 0.3,
            trials: 40,
            seed: 5,
        };
        let t = run_open_question(cfg);
        assert_eq!(t.n_rows(), 6);
    }
}
