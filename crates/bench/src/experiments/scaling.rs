//! **E6b — cost scaling in ε** (complements the Criterion micro suite).
//!
//! The paper's complexity claims: the MX filter stores `m/ε` pairs and
//! answers in `O(|A|·m/ε)`; the tuple filter stores `m/√ε` tuples and
//! answers in `O(|A|·(m/√ε)·log)`. Sweeping ε exposes the `1/ε` vs
//! `1/√ε` growth directly — the quadratic gap is the paper's headline.

use qid_core::filter::{FilterParams, PairSampleFilter, SeparationFilter, TupleSampleFilter};
use qid_dataset::generator::covtype_like_scaled;
use qid_dataset::AttrId;

use crate::report::{fmt_count, fmt_duration, Table};
use crate::timing::time_avg;
use crate::Scale;

/// Parameters for the scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Rows in the backing data set.
    pub n_rows: usize,
    /// Queries per timing average.
    pub reps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        ScalingConfig {
            n_rows: scale.rows(200_000),
            reps: match scale {
                Scale::Smoke => 3,
                _ => 20,
            },
            seed: 88,
        }
    }
}

/// Runs the ε sweep on a Covtype-shaped data set and reports sample
/// sizes, build times and per-query times for both filters.
pub fn run_scaling(cfg: ScalingConfig) -> Table {
    let ds = covtype_like_scaled(cfg.seed, cfg.n_rows);
    let attrs: Vec<AttrId> = (0..ds.n_attrs()).step_by(3).map(AttrId::new).collect();
    let mut table = Table::new(
        format!(
            "Cost scaling in eps — Covtype shape, n = {}, |A| = {} (query avg over {} reps)",
            fmt_count(ds.n_rows()),
            attrs.len(),
            cfg.reps
        ),
        &[
            "eps",
            "S MX",
            "S ours",
            "build MX",
            "build ours",
            "query MX",
            "query ours",
        ],
    );

    for &eps in &[0.01, 0.003, 0.001, 0.0003] {
        let params = FilterParams::new(eps);

        let t0 = std::time::Instant::now();
        let pair = PairSampleFilter::build(&ds, params, cfg.seed);
        let build_mx = t0.elapsed();
        let t0 = std::time::Instant::now();
        let tuple = TupleSampleFilter::build(&ds, params, cfg.seed);
        let build_ours = t0.elapsed();

        let q_mx = time_avg(cfg.reps, || {
            std::hint::black_box(pair.query(&attrs));
        });
        let q_ours = time_avg(cfg.reps, || {
            std::hint::black_box(tuple.query(&attrs));
        });

        table.row(vec![
            format!("{eps}"),
            fmt_count(pair.sample_size()),
            fmt_count(tuple.sample_size()),
            fmt_duration(build_mx),
            fmt_duration(build_ours),
            fmt_duration(q_mx),
            fmt_duration(q_ours),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_quadratic_sample_gap() {
        let cfg = ScalingConfig {
            n_rows: 3_000,
            reps: 2,
            seed: 1,
        };
        let t = run_scaling(cfg);
        assert_eq!(t.n_rows(), 4);
        // At the last row (eps = 0.0003) the MX/ours sample ratio must
        // be ≈ 1/√eps ≈ 57.7.
        let s_mx: f64 = t.cell(3, 1).replace(',', "").parse().unwrap();
        let s_ours: f64 = t.cell(3, 2).replace(',', "").parse().unwrap();
        let ratio = s_mx / s_ours;
        assert!((45.0..70.0).contains(&ratio), "ratio {ratio}");
    }
}
