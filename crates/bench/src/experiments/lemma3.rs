//! **E1 — Lemma 3's lower bound, empirically** (Section 2.2).
//!
//! On the grid data set `[q]^m` every singleton attribute set is bad;
//! detecting *all* of them needs `Ω(√(q·log m)) = Ω(√(log m / ε))`
//! sampled tuples. We sweep the sample size `r` and measure the
//! probability that the tuple filter rejects every singleton,
//! alongside the proof's analytic envelope
//! `P(detect all) ≤ (1 − ∏_{i<r}(1 − i/q))^m`.

use qid_dataset::generator::GridDataset;
use qid_dataset::AttrId;
use qid_sampling::birthday::non_collision_prob_uniform;

use crate::report::Table;
use crate::timing::parallel_trials;
use crate::Scale;

/// Parameters for the Lemma 3 experiment.
#[derive(Clone, Copy, Debug)]
pub struct Lemma3Config {
    /// Grid base `q ≈ 1/ε`.
    pub q: u64,
    /// Number of attributes `m` (must satisfy `log m < q/4`).
    pub m: usize,
    /// Monte-Carlo trials per sample size.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Lemma3Config {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        Lemma3Config {
            q: 100,
            m: 20,
            trials: scale.trials(400),
            seed: 33,
        }
    }
}

/// Runs E1: sweep `r` around the `√(q·ln m)` threshold.
pub fn run_lemma3(cfg: Lemma3Config) -> Table {
    let grid = GridDataset::new(cfg.q, cfg.m);
    let threshold = ((cfg.q as f64) * (cfg.m as f64).ln()).sqrt();
    let mut table = Table::new(
        format!(
            "Lemma 3 — detect all {} bad singletons on [{}]^{}; threshold √(q·ln m) ≈ {threshold:.1}",
            cfg.m, cfg.q, cfg.m
        ),
        &["r (samples)", "r/√(q·ln m)", "P(detect all)", "analytic upper bound"],
    );

    let fracs = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
    for &frac in &fracs {
        let r = ((threshold * frac).round() as usize).max(2);
        let seeds: Vec<u64> = (0..cfg.trials as u64)
            .map(|t| cfg.seed ^ (t.wrapping_mul(0x9e37_79b9)) ^ (r as u64) << 32)
            .collect();
        let hits: usize = parallel_trials(&seeds, |seed| {
            let sample = grid.sample(r, seed);
            // Did every singleton get caught (some pair of samples
            // collides on that coordinate)?
            let all_detected = (0..cfg.m).all(|a| {
                let attrs = [AttrId::new(a)];
                qid_core::separation::unseparated_pairs(&sample, &attrs) > 0
            });
            usize::from(all_detected)
        })
        .into_iter()
        .sum();
        let p_hat = hits as f64 / cfg.trials as f64;

        // Analytic envelope from the proof: detection of one coordinate
        // is a birthday collision among q bins; coordinates are
        // independent, so P(detect all) = (1 − ∏(1−i/q))^m exactly for
        // with-replacement sampling.
        let p_theory = (1.0 - non_collision_prob_uniform(cfg.q, r as u64)).powi(cfg.m as i32);

        table.row(vec![
            r.to_string(),
            format!("{frac:.2}"),
            format!("{p_hat:.3}"),
            format!("{p_theory:.3}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_probability_increases_with_r() {
        let cfg = Lemma3Config {
            q: 25,
            m: 5,
            trials: 60,
            seed: 5,
        };
        let t = run_lemma3(cfg);
        assert_eq!(t.n_rows(), 7);
        let first: f64 = t.cell(0, 2).parse().unwrap();
        let last: f64 = t.cell(t.n_rows() - 1, 2).parse().unwrap();
        assert!(
            last >= first,
            "P(detect) should grow with r: {first} → {last}"
        );
        // At 3× the threshold detection should be near-certain.
        assert!(last > 0.8, "last = {last}");
    }

    #[test]
    fn empirical_tracks_theory() {
        let cfg = Lemma3Config {
            q: 25,
            m: 4,
            trials: 150,
            seed: 9,
        };
        let t = run_lemma3(cfg);
        for row in 0..t.n_rows() {
            let emp: f64 = t.cell(row, 2).parse().unwrap();
            let theory: f64 = t.cell(row, 3).parse().unwrap();
            assert!(
                (emp - theory).abs() < 0.2,
                "row {row}: empirical {emp} vs theory {theory}"
            );
        }
    }
}
