//! **T1 — the paper's Table 1**: sample size, running time, agreement.
//!
//! For each data set (Adult / Covtype / CPS shapes), build the
//! Motwani–Xu pair filter (★) and this paper's tuple filter (★★) with
//! `ε = 0.001`, query ~100 random attribute subsets, and report:
//! sample sizes `S`, average running time `T` over the trials
//! (build + all queries, as a cold run of the tool would pay), and the
//! percentage of queries on which the two algorithms agree.

use qid_core::filter::{FilterParams, PairSampleFilter, SeparationFilter, TupleSampleFilter};

use crate::report::{fmt_count, fmt_duration, Table};
use crate::timing::time;
use crate::workloads::{random_attr_subsets, table1_workloads};
use crate::Scale;

/// Parameters for the Table 1 reproduction.
#[derive(Clone, Copy, Debug)]
pub struct Table1Config {
    /// Workload scale.
    pub scale: Scale,
    /// Trials to average times over (paper: 10).
    pub trials: usize,
    /// Number of random attribute subsets to query (paper: ~100).
    pub n_subsets: usize,
    /// Separation slack (paper: 0.001).
    pub eps: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Table1Config {
    /// The paper's settings at the given scale.
    pub fn paper(scale: Scale) -> Self {
        Table1Config {
            scale,
            trials: scale.trials(10),
            n_subsets: match scale {
                Scale::Smoke => 20,
                _ => 100,
            },
            eps: 0.001,
            seed: 20_230_613,
        }
    }
}

/// Runs T1 and returns the paper-style table.
pub fn run_table1(cfg: Table1Config) -> Table {
    let mut table = Table::new(
        format!(
            "Table 1 — sample size (S), avg time (T) over {} trials, agreement (A); eps = {}",
            cfg.trials, cfg.eps
        ),
        &[
            "Dataset", "n", "m", "S (MX)", "S (ours)", "T (MX)", "T (ours)", "A %",
        ],
    );

    for w in table1_workloads(cfg.scale, cfg.seed) {
        let ds = &w.dataset;
        let m = ds.n_attrs();
        let params = FilterParams::new(cfg.eps);
        let subsets = random_attr_subsets(m, cfg.n_subsets, cfg.seed ^ 0xabcd);

        let mut t_mx = std::time::Duration::ZERO;
        let mut t_ours = std::time::Duration::ZERO;
        let mut s_mx = 0usize;
        let mut s_ours = 0usize;
        let mut agreements = 0usize;
        let mut queries = 0usize;

        for trial in 0..cfg.trials {
            let seed = cfg.seed.wrapping_add(trial as u64);

            let (mx_decisions, d_mx) = time(|| {
                let f = PairSampleFilter::build(ds, params, seed);
                s_mx = f.sample_size();
                subsets.iter().map(|a| f.query(a)).collect::<Vec<_>>()
            });
            t_mx += d_mx;

            let (our_decisions, d_ours) = time(|| {
                let f = TupleSampleFilter::build(ds, params, seed);
                s_ours = f.sample_size();
                subsets.iter().map(|a| f.query(a)).collect::<Vec<_>>()
            });
            t_ours += d_ours;

            agreements += mx_decisions
                .iter()
                .zip(&our_decisions)
                .filter(|(a, b)| a == b)
                .count();
            queries += subsets.len();
        }

        table.row(vec![
            w.name.to_string(),
            fmt_count(ds.n_rows()),
            m.to_string(),
            fmt_count(s_mx),
            fmt_count(s_ours),
            fmt_duration(t_mx / cfg.trials as u32),
            fmt_duration(t_ours / cfg.trials as u32),
            format!("{:.0}%", 100.0 * agreements as f64 / queries as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_three_rows() {
        let cfg = Table1Config {
            scale: Scale::Smoke,
            trials: 1,
            n_subsets: 5,
            eps: 0.01,
            seed: 1,
        };
        let t = run_table1(cfg);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.cell(0, 0), "Adult");
        assert_eq!(t.cell(1, 0), "Covtype");
        assert_eq!(t.cell(2, 0), "CPS");
        // Sample-size ratio must be ~1/√ε = 10 at ε = 0.01.
        let s_mx: usize = t.cell(0, 3).replace(',', "").parse().unwrap();
        let s_ours: usize = t.cell(0, 4).replace(',', "").parse().unwrap();
        let ratio = s_mx as f64 / s_ours as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }
}
