//! **E4 — Proposition 1**: approximate minimum keys, MX vs. refined.
//!
//! Compares the Motwani–Xu greedy (ground set = `Θ(m/ε)` explicit
//! pairs) against this paper's partition-refinement greedy (implicit
//! ground set over `Θ(m/√ε)` tuples) and — where affordable — the exact
//! minimum on the same sample. Reports key sizes, runtimes, and the
//! quality of the returned key measured on the *full* data set.

use qid_core::filter::FilterParams;
use qid_core::minkey::{GreedyRefineMinKey, MxGreedyMinKey};
use qid_core::oracle::ExactOracle;

use crate::report::{fmt_duration, Table};
use crate::timing::time;
use crate::workloads::table1_workloads;
use crate::Scale;

/// Parameters for the minimum-key comparison.
#[derive(Clone, Copy, Debug)]
pub struct MinKeyConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Separation slack.
    pub eps: f64,
    /// Trials (different sampling seeds) to average over.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl MinKeyConfig {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        MinKeyConfig {
            scale,
            eps: 0.001,
            trials: scale.trials(6),
            seed: 66,
        }
    }
}

/// Runs E4 and returns the comparison table.
pub fn run_minkey_comparison(cfg: MinKeyConfig) -> Table {
    let mut table = Table::new(
        format!(
            "Proposition 1 — approximate minimum eps-separation keys (eps = {}, {} trials)",
            cfg.eps, cfg.trials
        ),
        &[
            "Dataset",
            "|key| MX",
            "|key| ours",
            "T MX",
            "T ours",
            "sep. ratio MX",
            "sep. ratio ours",
        ],
    );

    for w in table1_workloads(cfg.scale, cfg.seed) {
        let ds = &w.dataset;
        let params = FilterParams::new(cfg.eps);
        let oracle = ExactOracle::new(ds);

        let mut size_mx = 0usize;
        let mut size_ours = 0usize;
        let mut t_mx = std::time::Duration::ZERO;
        let mut t_ours = std::time::Duration::ZERO;
        let mut ratio_mx = 0.0f64;
        let mut ratio_ours = 0.0f64;

        for trial in 0..cfg.trials {
            let seed = cfg.seed.wrapping_add(trial as u64 * 131);

            let (mx, d) = time(|| MxGreedyMinKey::new(params).run(ds, seed));
            t_mx += d;
            size_mx += mx.key_size();
            ratio_mx += oracle.separation_ratio(&mx.attrs);

            let (ours, d) = time(|| GreedyRefineMinKey::new(params).run(ds, seed));
            t_ours += d;
            size_ours += ours.key_size();
            ratio_ours += oracle.separation_ratio(&ours.attrs);
        }

        let k = cfg.trials as f64;
        table.row(vec![
            w.name.to_string(),
            format!("{:.1}", size_mx as f64 / k),
            format!("{:.1}", size_ours as f64 / k),
            fmt_duration(t_mx / cfg.trials as u32),
            fmt_duration(t_ours / cfg.trials as u32),
            format!("{:.6}", ratio_mx / k),
            format!("{:.6}", ratio_ours / k),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_comparable_keys() {
        let cfg = MinKeyConfig {
            scale: Scale::Smoke,
            eps: 0.01,
            trials: 2,
            seed: 4,
        };
        let t = run_minkey_comparison(cfg);
        assert_eq!(t.n_rows(), 3);
        for row in 0..3 {
            let mx: f64 = t.cell(row, 1).parse().unwrap();
            let ours: f64 = t.cell(row, 2).parse().unwrap();
            // Key sizes should be within a couple attributes of each
            // other; both must find *some* small key.
            assert!(mx >= 1.0 && ours >= 1.0);
            assert!((mx - ours).abs() <= 3.0, "row {row}: {mx} vs {ours}");
            // Both keys separate ≥ 1−10ε of pairs on the full data.
            let r_mx: f64 = t.cell(row, 5).parse().unwrap();
            let r_ours: f64 = t.cell(row, 6).parse().unwrap();
            assert!(r_mx > 1.0 - 10.0 * cfg.eps, "row {row}: MX ratio {r_mx}");
            assert!(
                r_ours > 1.0 - 10.0 * cfg.eps,
                "row {row}: ours ratio {r_ours}"
            );
        }
    }
}
