//! E8: served vs. one-shot audit throughput.
//!
//! The `qid-server` pitch quantified: a one-shot `audit` pays the full
//! CSV scan plus sampling on every invocation, the served `audit` pays
//! it once and answers every subsequent request from the registry's
//! resident sketch. This experiment spins an in-process server on an
//! ephemeral port, drives `requests` audits through the real TCP
//! client, and compares against the same number of cold one-shot runs.
//! Results go into a [`Table`] and (via [`ServerBenchResult::to_json`])
//! the machine-readable `BENCH_server.json` the CI trend tracking
//! consumes.

use std::io::Write as _;
use std::time::{Duration, Instant};

use qid_core::filter::TupleSampleFilter;
use qid_core::minkey::{enumerate_minimal_keys, LatticeConfig};
use qid_dataset::csv::{read_csv_path, write_csv, CsvOptions};
use qid_dataset::generator::covtype_like_scaled;
use qid_server::json::{obj, s, Json};
use qid_server::proto::{DatasetRef, LoadMode, Request, Response};
use qid_server::{Client, Registry, Server, ServerConfig};

use crate::report::Table;
use crate::Scale;

/// Configuration for the served-vs-one-shot comparison.
#[derive(Clone, Copy, Debug)]
pub struct ServerBenchConfig {
    /// Workload scale (rows of the covtype-shaped CSV).
    pub scale: Scale,
    /// Audit requests per mode.
    pub requests: usize,
    /// Separation slack ε.
    pub eps: f64,
    /// Worker threads for the server under test.
    pub workers: usize,
    /// Idle keep-alive connections in the small idle-scaling herd.
    pub idle_low: usize,
    /// Idle keep-alive connections in the large idle-scaling herd.
    /// The default (1000) needs ~2× that in file descriptors between
    /// the bench process and the in-process server — the CI bench
    /// step raises `ulimit -n` first; pass something smaller when the
    /// environment cannot (the unit smoke test does).
    pub idle_high: usize,
    /// Optional C10K-class idle herd (the headline row for the sharded
    /// connection core). `None` skips it: at ≥10k connections the
    /// in-process server doubles the fd bill (~2× the herd in one
    /// process), beyond stock rlimits, so the row is measured on
    /// demand — `default_at` arms it when the `QID_IDLE_10K`
    /// environment variable is set (its value is the herd size; values
    /// under 1000 fall back to 10_000). When `QID_IDLE_10K_BIN` also
    /// names a `qid` binary, the point is measured against a *spawned*
    /// server process instead — load generator and server then each
    /// pay ~one fd per connection, which fits environments whose
    /// per-process hard limit cannot cover both ends.
    pub idle_10k: Option<usize>,
    /// Connection counts for the closed-loop saturation rows (the
    /// `qid-loadgen` harness at two concurrencies).
    pub saturation_conns: [usize; 2],
    /// Measured window per saturation point, milliseconds.
    pub saturation_ms: u64,
}

impl ServerBenchConfig {
    /// The default comparison at a given scale.
    pub fn default_at(scale: Scale) -> Self {
        ServerBenchConfig {
            scale,
            requests: scale.trials(64),
            eps: 0.01,
            workers: 4,
            idle_low: 10,
            idle_high: 1000,
            idle_10k: std::env::var("QID_IDLE_10K").ok().map(|v| {
                let herd = v.parse().unwrap_or(10_000);
                if herd < 1000 {
                    10_000
                } else {
                    herd
                }
            }),
            saturation_conns: [4, 32],
            saturation_ms: match scale {
                Scale::Full => 10_000,
                Scale::Default => 3_000,
                Scale::Smoke => 1_000,
            },
        }
    }
}

/// Latency summary of one mode.
#[derive(Clone, Copy, Debug)]
pub struct ModeStats {
    /// Requests per second over the whole run.
    pub rps: f64,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
}

/// Client-observed served-audit latency with a given number of idle
/// keep-alive connections registered with the server's poller.
#[derive(Clone, Copy, Debug)]
pub struct IdleScalingPoint {
    /// Idle connections actually held open during the measurement.
    pub idle: usize,
    /// Median audit latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile audit latency, microseconds.
    pub p99_us: f64,
}

/// The append-vs-rebuild comparison: absorbing a suffix through the
/// registry's resumed ingest state against a cold rebuild over the
/// whole grown file.
#[derive(Clone, Copy, Debug)]
pub struct AppendVsRebuild {
    /// Rows in the base file the entry was built from.
    pub base_rows: usize,
    /// Rows appended before the timed lookup.
    pub appended_rows: usize,
    /// Time for the appending lookup (classify + suffix scan + entry
    /// swap), microseconds.
    pub absorb_us: f64,
    /// Time for a cold build over the grown file, microseconds.
    pub rebuild_us: f64,
}

impl AppendVsRebuild {
    /// How many times cheaper the absorb was than the rebuild.
    pub fn speedup(&self) -> f64 {
        if self.absorb_us > 0.0 {
            self.rebuild_us / self.absorb_us
        } else {
            0.0
        }
    }
}

/// The experiment outcome.
#[derive(Clone, Debug)]
pub struct ServerBenchResult {
    /// Rows in the generated workload.
    pub rows: usize,
    /// Attributes in the generated workload.
    pub attrs: usize,
    /// Requests measured per mode.
    pub requests: usize,
    /// Audits answered by the resident server (cache-hot after the
    /// first).
    pub served: ModeStats,
    /// Audits where every invocation re-reads and re-samples the CSV.
    pub oneshot: ModeStats,
    /// First-audit latency (µs) of a *restarted* server that warms its
    /// registry from the persisted `--cache-dir` sample instead of
    /// re-scanning the source.
    pub warm_restart_us: f64,
    /// Amortised per-command latency (µs) of `requests` sequential
    /// `check` calls (one round trip each) against the warm registry.
    pub sequential_per_cmd_us: f64,
    /// Amortised per-command latency (µs) of the same `check` commands
    /// sent as a single `batch` line (one round trip, one registry
    /// resolution total).
    pub batched_per_cmd_us: f64,
    /// Served-audit latency with few idle connections registered.
    pub idle_low: IdleScalingPoint,
    /// Served-audit latency with ~1000 idle connections registered —
    /// the readiness-core claim: within 2× of [`Self::idle_low`],
    /// because quiet registrations never touch a worker.
    pub idle_high: IdleScalingPoint,
    /// Served-audit latency with a ≥10k idle herd sharded across the
    /// pollers — measured only when [`ServerBenchConfig::idle_10k`]
    /// is armed (see its fd-budget caveat).
    pub idle_10k: Option<IdleScalingPoint>,
    /// Closed-loop saturation points from the `qid-loadgen` harness,
    /// one per configured connection count: throughput and
    /// p50/p99/p999 latency under the default check-heavy mix.
    pub saturation: Vec<qid_loadgen::BenchReport>,
    /// Absorbing an appended suffix vs rebuilding from scratch — the
    /// incremental-ingestion claim quantified (a ~7% append should be
    /// ≥5× cheaper than a rescan at the 150k-row full scale).
    pub append: AppendVsRebuild,
    /// The human-readable table.
    pub table: Table,
}

impl ServerBenchResult {
    /// Renders the machine-readable `BENCH_server.json` payload.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("bench", s("server")),
            ("rows", Json::Int(self.rows as i64)),
            ("attrs", Json::Int(self.attrs as i64)),
            ("requests", Json::Int(self.requests as i64)),
            (
                "served",
                obj(vec![
                    ("rps", Json::Num(self.served.rps)),
                    ("p50_us", Json::Num(self.served.p50_us)),
                ]),
            ),
            (
                "oneshot",
                obj(vec![
                    ("rps", Json::Num(self.oneshot.rps)),
                    ("p50_us", Json::Num(self.oneshot.p50_us)),
                ]),
            ),
            (
                "speedup_p50",
                Json::Num(if self.served.p50_us > 0.0 {
                    self.oneshot.p50_us / self.served.p50_us
                } else {
                    0.0
                }),
            ),
            ("warm_restart_us", Json::Num(self.warm_restart_us)),
            (
                "idle_scaling",
                obj(vec![
                    ("idle_low", Json::Int(self.idle_low.idle as i64)),
                    ("p50_low_us", Json::Num(self.idle_low.p50_us)),
                    ("p99_low_us", Json::Num(self.idle_low.p99_us)),
                    ("idle_high", Json::Int(self.idle_high.idle as i64)),
                    ("p50_high_us", Json::Num(self.idle_high.p50_us)),
                    ("p99_high_us", Json::Num(self.idle_high.p99_us)),
                    (
                        "p99_ratio",
                        Json::Num(if self.idle_low.p99_us > 0.0 {
                            self.idle_high.p99_us / self.idle_low.p99_us
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "idle_scaling_10k",
                match &self.idle_10k {
                    Some(point) => obj(vec![
                        ("idle", Json::Int(point.idle as i64)),
                        ("p50_us", Json::Num(point.p50_us)),
                        ("p99_us", Json::Num(point.p99_us)),
                        (
                            "p99_ratio_vs_low",
                            Json::Num(if self.idle_low.p99_us > 0.0 {
                                point.p99_us / self.idle_low.p99_us
                            } else {
                                0.0
                            }),
                        ),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "saturation",
                Json::Arr(
                    self.saturation
                        .iter()
                        .map(qid_loadgen::BenchReport::to_json_value)
                        .collect(),
                ),
            ),
            (
                "append_vs_rebuild",
                obj(vec![
                    ("base_rows", Json::Int(self.append.base_rows as i64)),
                    ("appended_rows", Json::Int(self.append.appended_rows as i64)),
                    ("absorb_us", Json::Num(self.append.absorb_us)),
                    ("rebuild_us", Json::Num(self.append.rebuild_us)),
                    ("speedup", Json::Num(self.append.speedup())),
                ]),
            ),
            (
                "batch",
                obj(vec![
                    (
                        "sequential_per_cmd_us",
                        Json::Num(self.sequential_per_cmd_us),
                    ),
                    ("batched_per_cmd_us", Json::Num(self.batched_per_cmd_us)),
                    (
                        "speedup",
                        Json::Num(if self.batched_per_cmd_us > 0.0 {
                            self.sequential_per_cmd_us / self.batched_per_cmd_us
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
        ])
        .render()
    }
}

fn summarise(latencies: &mut [Duration], total: Duration, requests: usize) -> ModeStats {
    latencies.sort_unstable();
    let p50_us = if latencies.is_empty() {
        0.0
    } else {
        latencies[latencies.len() / 2].as_secs_f64() * 1e6
    };
    let rps = if total.as_secs_f64() > 0.0 {
        requests as f64 / total.as_secs_f64()
    } else {
        0.0
    };
    ModeStats { rps, p50_us }
}

/// Runs the comparison; panics on I/O failures (bench environment).
pub fn run_server_bench(cfg: ServerBenchConfig) -> ServerBenchResult {
    let requests = cfg.requests.max(1);
    let rows = cfg.scale.rows(100_000);
    let ds = covtype_like_scaled(7, rows);
    let (n, m) = (ds.n_rows(), ds.n_attrs());

    // Materialise the workload as a real CSV file: both modes must pay
    // (or dodge) the same parse.
    let dir = std::env::temp_dir().join("qid-bench-server");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("covtype_{rows}.csv"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("csv file"));
    write_csv(&ds, &mut file).expect("write workload");
    file.flush().expect("flush workload");
    drop(file);
    drop(ds);
    let path = path.to_str().expect("utf-8 path").to_string();
    let max_key_size = 2;

    // Served: one resident server, `requests` audits over one client.
    // The cache dir doubles as the warm-restart fixture measured below.
    let cache_dir = dir.join(format!("cache_{rows}"));
    let _ = std::fs::remove_dir_all(&cache_dir); // fresh warm tier per run
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: cfg.workers,
        // Two shards even on small machines: the bench must measure
        // the sharded connection core, and the idle herds should
        // split across pollers the way a production deployment's do.
        pollers: 2,
        cache_dir: Some(cache_dir.to_str().expect("utf-8 path").to_string()),
        ..ServerConfig::default()
    };
    let server = Server::bind(&server_config).expect("bind server");
    let addr = server.local_addr();
    let running = server.spawn();
    let mut client = Client::connect(addr).expect("connect");
    let request = Request::Audit {
        ds: DatasetRef {
            path: path.clone(),
            eps: cfg.eps,
            seed: 7,
        },
        max_key_size,
    };
    // Warm the registry outside the measured window: the served story
    // is steady-state traffic against a resident sketch.
    match client
        .call(&Request::Load {
            ds: DatasetRef {
                path: path.clone(),
                eps: cfg.eps,
                seed: 7,
            },
            mode: LoadMode::Memory,
        })
        .expect("load")
    {
        Response::Loaded { .. } => {}
        other => panic!("load failed: {other:?}"),
    }
    let mut served_lat = Vec::with_capacity(requests);
    let served_start = Instant::now();
    for _ in 0..requests {
        let t = Instant::now();
        match client.call(&request).expect("served audit") {
            Response::Audit { .. } => {}
            other => panic!("audit failed: {other:?}"),
        }
        served_lat.push(t.elapsed());
    }
    let served_total = served_start.elapsed();
    let served = summarise(&mut served_lat, served_total, requests);

    // Batched vs sequential: the same `check` answered `requests`
    // times — once as `requests` round trips, once as one `batch`
    // line (one round trip, one registry resolution for the whole
    // array). Both run against the warm registry, so the difference
    // is pure wire + dispatch amortisation.
    let check = Request::Check {
        ds: DatasetRef {
            path: path.clone(),
            eps: cfg.eps,
            seed: 7,
        },
        attrs: vec!["0".to_string()],
    };
    let seq_start = Instant::now();
    for _ in 0..requests {
        match client.call(&check).expect("sequential check") {
            Response::Check { .. } => {}
            other => panic!("check failed: {other:?}"),
        }
    }
    let sequential_per_cmd_us = seq_start.elapsed().as_secs_f64() * 1e6 / requests as f64;
    let batch = Request::Batch {
        requests: vec![check; requests],
    };
    let batch_start = Instant::now();
    match client.call(&batch).expect("batched checks") {
        Response::Batch { results } => {
            assert_eq!(results.len(), requests, "one result per sub-command");
            assert!(
                results.iter().all(|r| matches!(r, Response::Check { .. })),
                "batched checks must all succeed"
            );
        }
        other => panic!("batch failed: {other:?}"),
    }
    let batched_per_cmd_us = batch_start.elapsed().as_secs_f64() * 1e6 / requests as f64;

    // Idle-connection scaling: the same served audit, measured with a
    // small and a large herd of quiet keep-alive connections
    // registered with the poller. Under the readiness core the herd
    // is O(1) bookkeeping the poller never visits while silent, so
    // p99 must stay flat (the acceptance bound is 2×); under the old
    // time-sliced core every idle connection cost a worker a blocked
    // 150 ms read per cycle and this measurement took *seconds*.
    let idle_low = measure_idle_point(&mut client, addr, &request, cfg.idle_low, requests);
    let idle_high = measure_idle_point(&mut client, addr, &request, cfg.idle_high, requests);
    let idle_10k = cfg
        .idle_10k
        .map(|herd| match std::env::var("QID_IDLE_10K_BIN") {
            Ok(bin) => {
                measure_idle_point_external(&bin, cfg.workers, &path, &request, herd, requests)
            }
            Err(_) => measure_idle_point(&mut client, addr, &request, herd, requests),
        });

    // Saturation: the qid-loadgen harness drives the default
    // check-heavy mix closed-loop at two connection counts against
    // the same warm server. These are the rows that witness the
    // zero-allocation request path under concurrency, not one
    // sequential client.
    let saturation: Vec<qid_loadgen::BenchReport> = cfg
        .saturation_conns
        .iter()
        .map(|&conns| {
            qid_loadgen::run(&qid_loadgen::LoadConfig {
                addr: addr.to_string(),
                path: path.clone(),
                eps: cfg.eps,
                seed: 7,
                connections: conns,
                duration: Duration::from_millis(cfg.saturation_ms),
                warmup: Duration::from_millis((cfg.saturation_ms / 5).clamp(100, 1_000)),
                mode: qid_loadgen::LoopMode::Closed,
                weights: qid_loadgen::MixWeights::default(),
            })
            .expect("saturation run")
        })
        .collect();

    client.call(&Request::Shutdown).expect("shutdown");
    running.join().expect("server exits");

    // One-shot: every request re-reads the CSV and re-samples, exactly
    // what `qid audit` does per invocation (sans process startup).
    let mut oneshot_lat = Vec::with_capacity(requests);
    let oneshot_start = Instant::now();
    for _ in 0..requests {
        let t = Instant::now();
        let ds = read_csv_path(&path, &CsvOptions::default()).expect("read workload");
        let filter = TupleSampleFilter::build(&ds, qid_core::filter::FilterParams::new(cfg.eps), 7);
        let keys = enumerate_minimal_keys(
            filter.sample(),
            LatticeConfig {
                max_size: max_key_size,
                max_candidates: 500_000,
            },
        );
        // Mirror the served handler's full work: unique fractions too.
        let fractions: Vec<usize> = keys
            .iter()
            .map(|key| {
                qid_core::separation::group_sizes(filter.sample(), key)
                    .iter()
                    .filter(|&&sz| sz == 1)
                    .count()
            })
            .collect();
        std::hint::black_box((&keys, &fractions));
        oneshot_lat.push(t.elapsed());
    }
    let oneshot_total = oneshot_start.elapsed();
    let oneshot = summarise(&mut oneshot_lat, oneshot_total, requests);

    // Append vs rebuild: the incremental-ingestion claim. Build a
    // registry entry over a base file, append a ~7% suffix, and time
    // the absorbing lookup (classify + suffix scan + entry swap)
    // against a cold build over the whole grown file. Uses its own
    // workload file so the warm-restart fixture below stays pristine.
    let append = {
        let base_rows = cfg.scale.rows(150_000);
        let suffix_rows = (base_rows / 15).max(50);
        let grown = covtype_like_scaled(11, base_rows + suffix_rows);
        let mut full_csv = Vec::new();
        write_csv(&grown, &mut full_csv).expect("render append workload");
        drop(grown);
        // Byte offset just past the header plus the base rows: the
        // suffix appended later starts exactly on this row boundary.
        let mut newlines = 0usize;
        let split = full_csv
            .iter()
            .position(|&b| {
                if b == b'\n' {
                    newlines += 1;
                    newlines == 1 + base_rows
                } else {
                    false
                }
            })
            .expect("split boundary")
            + 1;
        let append_path = dir.join(format!("append_{base_rows}.csv"));
        std::fs::write(&append_path, &full_csv[..split]).expect("write base");
        let append_path = append_path.to_str().expect("utf-8 path").to_string();
        let dsr = DatasetRef {
            path: append_path.clone(),
            eps: cfg.eps,
            seed: 7,
        };
        let reg = Registry::new();
        reg.get_or_load(&dsr, LoadMode::Stream)
            .0
            .expect("base build");
        let mut f = std::fs::File::options()
            .append(true)
            .open(&append_path)
            .expect("open for append");
        f.write_all(&full_csv[split..]).expect("append suffix");
        f.flush().expect("flush suffix");
        drop(f);

        let t = Instant::now();
        let (absorbed, hit) = reg.get_or_load(&dsr, LoadMode::Stream);
        let absorb_us = t.elapsed().as_secs_f64() * 1e6;
        let absorbed = absorbed.expect("absorb");
        assert!(hit, "the appending lookup must absorb, not rebuild");
        assert_eq!(absorbed.rows, base_rows + suffix_rows);
        assert_eq!(reg.append_updates(), 1, "exactly one append absorbed");
        assert_eq!(reg.snapshot().stale_rebuilds, 0, "no full rebuild");

        let cold = Registry::new();
        let t = Instant::now();
        let (rebuilt, _) = cold.get_or_load(&dsr, LoadMode::Stream);
        let rebuild_us = t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(rebuilt.expect("cold rebuild").rows, base_rows + suffix_rows);

        let point = AppendVsRebuild {
            base_rows,
            appended_rows: suffix_rows,
            absorb_us,
            rebuild_us,
        };
        // The acceptance bound, asserted only at full scale: a 10k-row
        // append onto 150k resident rows must be at least 5× cheaper
        // than a rescan. Smaller scales report without asserting — a
        // sub-millisecond absorb is all scheduler noise.
        if matches!(cfg.scale, Scale::Full) {
            assert!(
                point.speedup() >= 5.0,
                "append absorb regressed below 5x: {point:?}"
            );
        }
        point
    };

    // Warm restart: a fresh server over the same cache dir answers its
    // first audit from the persisted Θ(m/√ε) sample — the restart story
    // the registry's disk tier exists for. Measured as one request
    // because it is a one-time cost per (restart, dataset). The journal
    // is pinned off for this life: armed (the production default), the
    // boot-time replay would eagerly re-admit the entry and resume the
    // first life's counters, turning the measured audit into a plain
    // resident hit and breaking the disk-hit/miss proof below. The
    // eager-replay path is covered by tests/crash_recovery.rs and the
    // CI crash-recovery loop; this row measures the lazy restore.
    let restart_config = ServerConfig {
        wal_max_bytes: 0,
        ..server_config.clone()
    };
    let server = Server::bind(&restart_config).expect("bind restarted server");
    let addr = server.local_addr();
    let running = server.spawn();
    let mut client = Client::connect(addr).expect("connect to restarted server");
    let t = Instant::now();
    match client.call(&request).expect("warm-restart audit") {
        Response::Audit { .. } => {}
        other => panic!("warm-restart audit failed: {other:?}"),
    }
    let warm_restart_us = t.elapsed().as_secs_f64() * 1e6;
    // Prove the number measures the disk tier, not a silent fallback
    // to a cold re-scan (e.g. a failed persist or rejected restore).
    match client.call(&Request::Metrics).expect("metrics") {
        Response::Metrics(report) => {
            assert_eq!(
                report.cache_disk_hits, 1,
                "warm restart must come from the disk tier: {report:?}"
            );
            assert_eq!(
                report.cache_misses, 0,
                "warm restart must not re-scan the source: {report:?}"
            );
        }
        other => panic!("metrics failed: {other:?}"),
    }
    client.call(&Request::Shutdown).expect("shutdown restarted");
    running.join().expect("restarted server exits");

    let mut table = Table::new(
        format!("E8: served vs one-shot audit ({n} rows x {m} attrs, {requests} requests)"),
        &["mode", "req/s", "p50 latency (us)"],
    );
    table.row(vec![
        "served (cached sketch)".to_string(),
        format!("{:.1}", served.rps),
        format!("{:.0}", served.p50_us),
    ]);
    table.row(vec![
        "one-shot (rescan per request)".to_string(),
        format!("{:.1}", oneshot.rps),
        format!("{:.0}", oneshot.p50_us),
    ]);
    table.row(vec![
        "warm restart (first audit, disk tier)".to_string(),
        "-".to_string(),
        format!("{warm_restart_us:.0}"),
    ]);
    table.row(vec![
        format!("sequential checks (x{requests})"),
        "-".to_string(),
        format!("{sequential_per_cmd_us:.0}"),
    ]);
    table.row(vec![
        format!("batched checks (one line, x{requests})"),
        "-".to_string(),
        format!("{batched_per_cmd_us:.0}"),
    ]);
    table.row(vec![
        format!(
            "audit + {} idle conns (p99 {:.0} us)",
            idle_low.idle, idle_low.p99_us
        ),
        "-".to_string(),
        format!("{:.0}", idle_low.p50_us),
    ]);
    table.row(vec![
        format!(
            "audit + {} idle conns (p99 {:.0} us)",
            idle_high.idle, idle_high.p99_us
        ),
        "-".to_string(),
        format!("{:.0}", idle_high.p50_us),
    ]);
    if let Some(point) = &idle_10k {
        table.row(vec![
            format!(
                "audit + {} idle conns, 2 shards (p99 {:.0} us)",
                point.idle, point.p99_us
            ),
            "-".to_string(),
            format!("{:.0}", point.p50_us),
        ]);
    }
    for point in &saturation {
        table.row(vec![
            format!(
                "saturation x{} conns (p99 {:.0} us, p999 {:.0} us)",
                point.connections, point.p99_us, point.p999_us
            ),
            format!("{:.1}", point.rps),
            format!("{:.0}", point.p50_us),
        ]);
    }
    table.row(vec![
        format!(
            "append absorb (+{} rows onto {}; rebuild {:.0} us, {:.1}x)",
            append.appended_rows,
            append.base_rows,
            append.rebuild_us,
            append.speedup()
        ),
        "-".to_string(),
        format!("{:.0}", append.absorb_us),
    ]);

    ServerBenchResult {
        rows: n,
        attrs: m,
        requests,
        served,
        oneshot,
        warm_restart_us,
        sequential_per_cmd_us,
        batched_per_cmd_us,
        idle_low,
        idle_high,
        idle_10k,
        saturation,
        append,
        table,
    }
}

/// Measures served-audit latency with `idle` quiet keep-alive
/// connections held open against the running server at `addr`. The
/// herd is fully accepted (observed through `metrics`) before the
/// timed window starts, and dropped before returning.
fn measure_idle_point(
    client: &mut Client,
    addr: std::net::SocketAddr,
    audit: &Request,
    idle: usize,
    requests: usize,
) -> IdleScalingPoint {
    let accepted_before = connections_accepted(client);
    let mut idles = Vec::with_capacity(idle);
    for _ in 0..idle {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => idles.push(stream),
            Err(e) => {
                // E.g. a small fd rlimit: measure with what we got
                // (the point records the actual herd size).
                eprintln!("[server] idle herd capped at {}: {e}", idles.len());
                break;
            }
        }
    }
    let herd = idles.len();
    // Every idle connection must be registered before the clock runs.
    let target = accepted_before + herd as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while connections_accepted(client) < target {
        assert!(
            Instant::now() < deadline,
            "server did not accept the idle herd within 60s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let trials = (requests * 2).clamp(100, 400);
    let mut latencies = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        match client.call(audit) {
            Ok(Response::Audit { .. }) => {}
            other => panic!("idle-scaling audit failed: {other:?}"),
        }
        latencies.push(t.elapsed());
    }
    drop(idles);
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1].as_secs_f64() * 1e6
    };
    IdleScalingPoint {
        idle: herd,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
    }
}

/// Measures the same idle-scaling point against a *spawned* server
/// process (`bin` is a `qid` binary) instead of the in-process one.
///
/// The in-process server doubles the fd bill: every loopback
/// connection costs this process two descriptors (client end + server
/// end), so a 10k herd needs ~20k fds in one process — over the hard
/// `RLIMIT_NOFILE` in locked-down containers that refuse `setrlimit`.
/// Splitting the ends across two processes halves the per-process
/// cost, which is also the honest C10K methodology: a load generator
/// should not share a descriptor table with the system under test.
fn measure_idle_point_external(
    bin: &str,
    workers: usize,
    csv_path: &str,
    audit: &Request,
    idle: usize,
    requests: usize,
) -> IdleScalingPoint {
    use std::io::BufRead as _;
    use std::process::{Command, Stdio};

    let mut child = Command::new(bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--pollers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn external qid serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server announces its address")
            .expect("read server stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let token = rest.split_whitespace().next().expect("address token");
            break token.parse().expect("announced address parses");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    let _drain = std::thread::spawn(move || for _ in lines {});

    let mut client = Client::connect(addr).expect("connect to external server");
    let ds = match audit {
        Request::Audit { ds, .. } => ds.clone(),
        other => panic!("idle-scaling probe must be an audit, got {other:?}"),
    };
    assert_eq!(ds.path, csv_path, "audit must target the bench workload");
    match client
        .call(&Request::Load {
            ds,
            mode: LoadMode::Memory,
        })
        .expect("load on external server")
    {
        Response::Loaded { .. } => {}
        other => panic!("external load failed: {other:?}"),
    }
    let point = measure_idle_point(&mut client, addr, audit, idle, requests);
    match client.call(&Request::Shutdown).expect("shutdown external") {
        Response::ShuttingDown => {}
        other => panic!("external shutdown failed: {other:?}"),
    }
    drop(client);
    let status = child.wait().expect("external server exits");
    assert!(status.success(), "external server exit status: {status:?}");
    point
}

/// Reads the server's accepted-connection counter off `metrics`.
fn connections_accepted(client: &mut Client) -> u64 {
    match client.call(&Request::Metrics) {
        Ok(Response::Metrics(report)) => report.connections,
        other => panic!("metrics failed: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_compares_modes() {
        let result = run_server_bench(ServerBenchConfig {
            scale: Scale::Smoke,
            requests: 4,
            eps: 0.05,
            workers: 2,
            // A deliberately small large-herd so the unit test stays
            // inside default fd rlimits (1024 on stock CI runners —
            // herd + server-side peers ≈ 2× the count); the bench
            // binary measures the real 10-vs-1000 acceptance row
            // under the CI step that raises `ulimit -n` first.
            idle_low: 10,
            idle_high: 200,
            idle_10k: None,
            saturation_conns: [2, 4],
            saturation_ms: 400,
        });
        assert_eq!(result.requests, 4);
        assert!(result.served.rps > 0.0);
        assert!(result.oneshot.rps > 0.0);
        assert!(
            result.warm_restart_us > 0.0,
            "the restarted server answered an audit"
        );
        assert!(result.sequential_per_cmd_us > 0.0);
        assert!(result.batched_per_cmd_us > 0.0);
        assert_eq!(result.table.n_rows(), 10);
        // The append row measured real work in both columns (the ≥5×
        // speedup bound is asserted inside the run at full scale; at
        // smoke scale both sides are microseconds of noise).
        assert!(result.append.base_rows > 0);
        assert!(result.append.appended_rows > 0);
        assert!(result.append.absorb_us > 0.0);
        assert!(result.append.rebuild_us > 0.0);
        // The saturation rows: one per configured concurrency, clean
        // transport, real throughput, ordered percentiles.
        assert_eq!(result.saturation.len(), 2);
        for (point, conns) in result.saturation.iter().zip([2usize, 4]) {
            assert_eq!(point.connections, conns);
            assert_eq!(point.mode, "closed");
            assert_eq!(point.transport_errors, 0, "{point:?}");
            assert!(point.requests > 0 && point.rps > 0.0, "{point:?}");
            assert!(point.p50_us > 0.0 && point.p50_us <= point.p99_us);
            assert!(point.p99_us <= point.p999_us);
        }
        let json = result.to_json();
        let parsed = qid_server::json::parse(&json).expect("valid json");
        assert_eq!(parsed.get("bench").and_then(|b| b.as_str()), Some("server"));
        assert!(parsed.get("served").and_then(|s| s.get("rps")).is_some());
        assert!(parsed.get("batch").and_then(|b| b.get("speedup")).is_some());
        assert!(parsed
            .get("append_vs_rebuild")
            .and_then(|a| a.get("speedup"))
            .is_some());
        let saturation = parsed.get("saturation").expect("saturation rows");
        assert!(matches!(saturation, qid_server::json::Json::Arr(rows) if rows.len() == 2));
        assert!(parsed
            .get("idle_scaling")
            .and_then(|i| i.get("p99_ratio"))
            .is_some());
        // The 10k row is opt-in (it costs ~20k fds); unarmed runs
        // emit an explicit null so downstream tooling sees the key.
        assert!(result.idle_10k.is_none());
        assert!(matches!(
            parsed.get("idle_scaling_10k"),
            Some(qid_server::json::Json::Null)
        ));
        // The acceptance bound: a large registered idle herd keeps
        // served-audit p99 within 2× of the 10-connection case. A
        // small absolute slack absorbs scheduler noise when both
        // points are already microsecond-fast (the regression this
        // guards — idle connections re-entering the worker pool —
        // costs seconds, not milliseconds).
        assert_eq!(result.idle_low.idle, 10);
        assert_eq!(result.idle_high.idle, 200);
        assert!(result.idle_low.p99_us > 0.0);
        assert!(
            result.idle_high.p99_us
                <= (result.idle_low.p99_us * 2.0).max(result.idle_low.p99_us + 5_000.0),
            "idle scaling regressed: {:?} vs {:?}",
            result.idle_high,
            result.idle_low
        );
        // At smoke scale the scan is tiny, so both modes do almost the
        // same work and this only guards against the served path being
        // pathologically slower (e.g. a reintroduced Nagle stall). The
        // actual served-faster claim is measured at default/full scale
        // by the bench target, not asserted here: a 500-row fixture
        // cannot witness it flake-free.
        assert!(
            result.served.p50_us < result.oneshot.p50_us * 5.0,
            "served {:?} vs oneshot {:?}",
            result.served,
            result.oneshot
        );
    }
}
