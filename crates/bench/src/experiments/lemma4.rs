//! **E2 — Lemma 4's lower bound, empirically** (Section 2.3).
//!
//! On the planted-clique data set, coordinate `{0}` is bad but its
//! auxiliary graph has a *single* clique of size `√(2ε)·n`: rejecting
//! `{0}` requires sampling two of its members, which takes `Θ(m/√ε)`
//! draws to succeed with probability `1 − e^{−m}`. We sweep `r` and
//! report the empirical failure probability next to the hypergeometric
//! truth `P(fail) ≥ P(at most one clique member among r draws)`.

use qid_dataset::generator::{planted_clique, planted_clique_size};
use qid_dataset::AttrId;

use crate::report::Table;
use crate::timing::parallel_trials;
use crate::Scale;

/// Parameters for the Lemma 4 experiment.
#[derive(Clone, Copy, Debug)]
pub struct Lemma4Config {
    /// Data-set size (the proof wants `n ≫ m²/ε`).
    pub n: usize,
    /// Number of attributes.
    pub m: usize,
    /// Separation slack.
    pub eps: f64,
    /// Monte-Carlo trials per sample size.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Lemma4Config {
    /// Defaults at the given scale.
    pub fn paper(scale: Scale) -> Self {
        Lemma4Config {
            n: scale.rows(100_000),
            m: 12,
            eps: 0.01,
            trials: scale.trials(400),
            seed: 44,
        }
    }
}

/// Exact probability that sampling `r` rows without replacement from
/// `n` rows containing a clique of size `c` picks **at most one**
/// clique member (the filter then *cannot* reject `{0}`).
fn fail_prob_exact(n: usize, c: usize, r: usize) -> f64 {
    // P(0 members) + P(1 member), hypergeometric, computed in log space.
    let ln_choose = |n: usize, k: usize| -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        let mut v = 0.0f64;
        for i in 0..k {
            v += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        v
    };
    let denom = ln_choose(n, r);
    let p0 = (ln_choose(n - c, r) - denom).exp();
    let p1 = if r >= 1 {
        ((c as f64).ln() + ln_choose(n - c, r - 1) - denom).exp()
    } else {
        0.0
    };
    p0 + p1
}

/// Runs E2: sweep `r` as multiples of `m/√ε`.
pub fn run_lemma4(cfg: Lemma4Config) -> Table {
    let clique = planted_clique_size(cfg.n, cfg.eps);
    let scale_r = cfg.m as f64 / cfg.eps.sqrt();
    let mut table = Table::new(
        format!(
            "Lemma 4 — reject the planted bad coordinate; n = {}, m = {}, eps = {}, clique = {clique}; unit r = m/√ε ≈ {scale_r:.0}",
            cfg.n, cfg.m, cfg.eps
        ),
        &["r (samples)", "r/(m/√ε)", "P(fail to reject)", "exact P(≤1 clique hit)", "e^-m"],
    );

    let ds = planted_clique(cfg.n, cfg.m, cfg.eps, cfg.seed);
    let fracs = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0];
    for &frac in &fracs {
        let r = ((scale_r * frac).round() as usize).clamp(2, cfg.n);
        let seeds: Vec<u64> = (0..cfg.trials as u64)
            .map(|t| cfg.seed ^ t.wrapping_mul(0x5851_f42d) ^ ((r as u64) << 24))
            .collect();
        let fails: usize = parallel_trials(&seeds, |seed| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rows = qid_sampling::swor::sample_indices(&mut rng, cfg.n, r);
            let sample = ds.gather(&rows);
            let rejected = qid_core::separation::unseparated_pairs(&sample, &[AttrId::new(0)]) > 0;
            usize::from(!rejected)
        })
        .into_iter()
        .sum();
        let p_fail = fails as f64 / cfg.trials as f64;
        let p_exact = fail_prob_exact(cfg.n, clique, r);

        table.row(vec![
            r.to_string(),
            format!("{frac:.2}"),
            format!("{p_fail:.3}"),
            format!("{p_exact:.3}"),
            format!("{:.2e}", (-(cfg.m as f64)).exp()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_probability_decreases_with_r() {
        let cfg = Lemma4Config {
            n: 5_000,
            m: 6,
            eps: 0.01,
            trials: 80,
            seed: 2,
        };
        let t = run_lemma4(cfg);
        let first: f64 = t.cell(0, 2).parse().unwrap();
        let last: f64 = t.cell(t.n_rows() - 1, 2).parse().unwrap();
        assert!(first >= last, "fail prob should shrink: {first} → {last}");
    }

    #[test]
    fn empirical_matches_hypergeometric() {
        let cfg = Lemma4Config {
            n: 4_000,
            m: 5,
            eps: 0.02,
            trials: 200,
            seed: 6,
        };
        let t = run_lemma4(cfg);
        for row in 0..t.n_rows() {
            let emp: f64 = t.cell(row, 2).parse().unwrap();
            let exact: f64 = t.cell(row, 3).parse().unwrap();
            assert!(
                (emp - exact).abs() < 0.15,
                "row {row}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn exact_formula_sane() {
        // r = 2 out of n with clique c: P(fail) = 1 − C(c,2)/C(n,2).
        let p = fail_prob_exact(100, 10, 2);
        let expected = 1.0 - (45.0 / 4950.0);
        assert!((p - expected).abs() < 1e-9, "{p} vs {expected}");
        // Sampling everything always catches the clique (c ≥ 2).
        let p = fail_prob_exact(50, 5, 50);
        assert!(p.abs() < 1e-9);
    }
}
