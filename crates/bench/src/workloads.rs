//! Workload construction for the experiments.

use qid_dataset::generator::{adult_like, covtype_like_scaled, cps_like};
use qid_dataset::{AttrId, Dataset};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::Scale;

/// One named Table 1 workload.
pub struct Workload {
    /// Display name matching the paper's Table 1.
    pub name: &'static str,
    /// The generated data set.
    pub dataset: Dataset,
}

/// The three Table 1 data sets at the given scale.
///
/// Full scale matches the paper: Adult 32,561×14, Covtype 581,012×54,
/// CPS (150k default)×388; reduced scales shrink rows only — the
/// attribute structure, which drives every sample size, is untouched.
pub fn table1_workloads(scale: Scale, seed: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: "Adult",
            dataset: match scale {
                Scale::Full | Scale::Default => adult_like(seed),
                Scale::Smoke => {
                    // Same schema, fewer rows, via the scaled covtype
                    // trick is unavailable for adult; subsample instead.
                    let full = adult_like(seed);
                    subsample(&full, 2_000, seed)
                }
            },
        },
        Workload {
            name: "Covtype",
            dataset: covtype_like_scaled(seed, scale.rows(581_012)),
        },
        Workload {
            name: "CPS",
            dataset: cps_like(seed, scale.rows(150_000)),
        },
    ]
}

fn subsample(ds: &Dataset, rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let picked = qid_sampling::swor::sample_indices(&mut rng, ds.n_rows(), rows.min(ds.n_rows()));
    ds.gather(&picked)
}

/// Draws `count` random attribute subsets: size uniform in `1..=m`,
/// attributes uniform without replacement — the paper's "about 100
/// random subsets of attributes to query".
pub fn random_attr_subsets(m: usize, count: usize, seed: u64) -> Vec<Vec<AttrId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let size = rng.random_range(1..=m);
            let mut ids = qid_sampling::swor::sample_indices(&mut rng, m, size);
            ids.sort_unstable();
            ids.into_iter().map(AttrId::new).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_workloads_have_right_schemas() {
        let ws = table1_workloads(Scale::Smoke, 1);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].name, "Adult");
        assert_eq!(ws[0].dataset.n_attrs(), 14);
        assert_eq!(ws[1].dataset.n_attrs(), 54);
        assert_eq!(ws[2].dataset.n_attrs(), 388);
        for w in &ws {
            assert!(w.dataset.n_rows() >= 200, "{} too small", w.name);
        }
    }

    #[test]
    fn subsets_are_valid() {
        let subsets = random_attr_subsets(14, 100, 3);
        assert_eq!(subsets.len(), 100);
        for s in &subsets {
            assert!(!s.is_empty() && s.len() <= 14);
            // sorted and distinct
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn subsets_deterministic() {
        assert_eq!(random_attr_subsets(10, 5, 7), random_attr_subsets(10, 5, 7));
    }
}
