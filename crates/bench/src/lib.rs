//! # qid-bench — the paper's evaluation, regenerated
//!
//! Each experiment in DESIGN.md's index (T1, E1–E6) lives in
//! [`experiments`] as a plain function returning a [`report::Table`];
//! the `benches/*.rs` targets are thin wrappers that run them at full
//! scale, and the integration tests smoke-run them at reduced scale.
//!
//! Scale control: experiments take a [`Scale`]; `Scale::from_env()`
//! reads `QID_SCALE` (`full`, `default`, or `smoke`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod timing;
pub mod workloads;

/// How big the experiment workloads should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full data-set sizes (Covtype at 581k rows, CPS at
    /// 150k × 388). Minutes of runtime.
    Full,
    /// Reduced rows, same schemas — the default for `cargo bench`;
    /// shapes are preserved, absolute times shrink.
    Default,
    /// Tiny — for CI smoke tests.
    Smoke,
}

impl Scale {
    /// Reads `QID_SCALE` (`full` / `smoke`, anything else → default).
    pub fn from_env() -> Self {
        match std::env::var("QID_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Default,
        }
    }

    /// Scales a row count.
    pub fn rows(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Default => (full / 8).max(2_000).min(full),
            Scale::Smoke => (full / 200).max(200).min(full),
        }
    }

    /// Scales a trial count.
    pub fn trials(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Default => (full / 2).max(3),
            Scale::Smoke => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_rows_monotone() {
        assert_eq!(Scale::Full.rows(100_000), 100_000);
        assert!(Scale::Default.rows(100_000) < 100_000);
        assert!(Scale::Smoke.rows(100_000) <= Scale::Default.rows(100_000));
        // Tiny inputs are never inflated.
        assert_eq!(Scale::Smoke.rows(100), 100);
    }

    #[test]
    fn scale_trials() {
        assert_eq!(Scale::Full.trials(10), 10);
        assert_eq!(Scale::Default.trials(10), 5);
        assert_eq!(Scale::Smoke.trials(10), 2);
    }
}
