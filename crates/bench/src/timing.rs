//! Wall-clock timing helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Times one call.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Mean duration of `trials` calls (each call may return a value that is
/// dropped; use [`time`] when the value matters).
pub fn time_avg(trials: usize, mut f: impl FnMut()) -> Duration {
    assert!(trials > 0, "need at least one trial");
    let start = Instant::now();
    for _ in 0..trials {
        f();
    }
    start.elapsed() / trials as u32
}

/// Runs independent trials on worker threads (std scoped threads), one
/// seed per trial, and collects the results in seed order. Used by the
/// statistically heavy lower-bound experiments.
pub fn parallel_trials<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let mut results: Vec<Option<T>> = Vec::with_capacity(seeds.len());
    results.resize_with(seeds.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let out = f(seeds[i]);
                let mut guard = results_mutex.lock().expect("no poisoned trials");
                guard[i] = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every trial index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_value() {
        let (v, d) = time(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn time_avg_divides() {
        let d = time_avg(10, || {
            std::hint::black_box(1 + 1);
        });
        assert!(d < Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = time_avg(0, || {});
    }

    #[test]
    fn parallel_trials_preserve_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let out = parallel_trials(&seeds, |s| s * 2);
        assert_eq!(out, (0..32).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_trials_empty() {
        let out: Vec<u64> = parallel_trials(&[], |s| s);
        assert!(out.is_empty());
    }
}
