//! Aligned plain-text/markdown tables for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table, printed in markdown-compatible form
/// so bench output can be pasted into EXPERIMENTS.md verbatim.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row-major), for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout (what `cargo bench` captures).
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a duration in adaptive units, as the paper's Table 1 does.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} sec")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a count with thousands separators (e.g. `13,000`).
pub fn fmt_count(n: usize) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let r = t.render();
        assert!(r.contains("### Demo"));
        assert!(r.contains("| alpha | 1     |"));
        assert!(r.contains("| b     | 22222 |"));
        assert!(r.contains("|-------|"));
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 1), "22222");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.5)), "2.50 sec");
        assert_eq!(fmt_duration(Duration::from_secs_f64(0.0042)), "4.20 ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(0.0000037)), "3.7 µs");
    }

    #[test]
    fn count_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(13_000), "13,000");
        assert_eq!(fmt_count(581_012), "581,012");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }
}
