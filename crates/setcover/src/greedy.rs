//! Greedy set cover with lazy gain re-evaluation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::instance::SetCoverInstance;

/// The outcome of a (possibly partial) greedy cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverResult {
    /// Indices of the chosen sets, in pick order.
    pub chosen: Vec<usize>,
    /// Number of ground-set elements covered.
    pub covered: usize,
    /// True iff every element was covered.
    pub complete: bool,
}

/// The classical greedy set-cover algorithm (the paper's Algorithm 2):
/// repeatedly pick the set covering the most currently uncovered
/// elements, achieving approximation `ln N + 1` [Young 2008].
///
/// Implementation: a max-heap of *stale* gains. Because coverage gain is
/// submodular (a set's marginal gain only shrinks as others are picked),
/// a popped entry whose recomputed gain still beats the next stale gain
/// is safely optimal for this round; otherwise it is re-pushed. This is
/// the standard "lazy greedy" and matches the `O(N·M)` worst case of the
/// textbook loop while running far faster in practice.
///
/// If some elements belong to no set, the cover is partial and
/// `complete == false` (the caller decides whether that is an error).
pub fn greedy_cover(inst: &SetCoverInstance) -> CoverResult {
    let universe = inst.universe();
    let mut uncovered = BitSet::full(universe);
    let mut uncovered_count = universe;
    let mut chosen = Vec::new();

    // Heap entries: (stale_gain, Reverse(set_index)) — ties break toward
    // the smallest index for determinism.
    let mut heap: BinaryHeap<(usize, Reverse<usize>)> = (0..inst.n_sets())
        .map(|i| (inst.set(i).len(), Reverse(i)))
        .collect();

    while uncovered_count > 0 {
        let best = loop {
            match heap.pop() {
                None => break None,
                Some((stale_gain, Reverse(i))) => {
                    if stale_gain == 0 {
                        break None; // all remaining sets are useless
                    }
                    let gain = inst.set(i).intersection_len(&uncovered);
                    if gain == stale_gain {
                        break Some((i, gain));
                    }
                    // Submodularity: `gain <= stale_gain`. If it still
                    // beats the next candidate's stale gain, it wins.
                    match heap.peek() {
                        Some(&(next_stale, _)) if gain < next_stale => {
                            if gain > 0 {
                                heap.push((gain, Reverse(i)));
                            }
                        }
                        _ => {
                            if gain == 0 {
                                break None;
                            }
                            break Some((i, gain));
                        }
                    }
                }
            }
        };
        let Some((i, gain)) = best else { break };
        chosen.push(i);
        uncovered.difference_with(inst.set(i));
        uncovered_count -= gain;
    }

    CoverResult {
        chosen,
        covered: universe - uncovered_count,
        complete: uncovered_count == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_toy_instance() {
        let inst = SetCoverInstance::from_memberships(
            5,
            vec![vec![0, 1], vec![1, 2, 3], vec![3, 4], vec![4]],
        );
        let r = greedy_cover(&inst);
        assert!(r.complete);
        assert_eq!(r.covered, 5);
        assert!(inst.is_cover(&r.chosen));
        // Greedy picks {1,2,3} first, then needs {0,1} and one of the
        // 4-containing sets: 3 sets total.
        assert_eq!(r.chosen.len(), 3);
        assert_eq!(r.chosen[0], 1);
    }

    #[test]
    fn handles_infeasible_instance() {
        let inst = SetCoverInstance::from_memberships(4, vec![vec![0, 1], vec![1]]);
        let r = greedy_cover(&inst);
        assert!(!r.complete);
        assert_eq!(r.covered, 2);
        assert_eq!(r.chosen, vec![0]);
    }

    #[test]
    fn empty_universe_needs_nothing() {
        let inst = SetCoverInstance::from_memberships(0, vec![vec![], vec![]]);
        let r = greedy_cover(&inst);
        assert!(r.complete);
        assert!(r.chosen.is_empty());
    }

    #[test]
    fn no_sets_at_all() {
        let inst = SetCoverInstance::from_memberships(3, vec![]);
        let r = greedy_cover(&inst);
        assert!(!r.complete);
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn duplicate_sets_picked_once_each_only_if_useful() {
        let inst = SetCoverInstance::from_memberships(2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]);
        let r = greedy_cover(&inst);
        assert!(r.complete);
        assert_eq!(r.chosen.len(), 1);
    }

    #[test]
    fn greedy_chain_worst_case_still_covers() {
        // The classic instance where greedy is suboptimal: optimal is 2
        // ({evens}, {odds}) but greedy may pick the big half-sets chain.
        let n = 32;
        let evens: Vec<usize> = (0..n).step_by(2).collect();
        let odds: Vec<usize> = (1..n).step_by(2).collect();
        // Chain sets of sizes 16, 8, 4, 2, 1 …
        let mut sets = vec![evens, odds];
        let mut start = 0;
        let mut size = n / 2;
        while size >= 1 {
            sets.push((start..start + size).collect());
            start += size;
            size /= 2;
        }
        let inst = SetCoverInstance::from_memberships(n, sets);
        let r = greedy_cover(&inst);
        assert!(r.complete);
        assert!(inst.is_cover(&r.chosen));
        // ln(32)+1 ≈ 4.46 → greedy uses at most ~9 of 2-optimal.
        assert!(r.chosen.len() <= 9);
    }

    #[test]
    fn deterministic_given_equal_instances() {
        let inst = SetCoverInstance::from_memberships(
            6,
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 3],
                vec![1, 4],
                vec![2, 5],
            ],
        );
        let a = greedy_cover(&inst);
        let b = greedy_cover(&inst);
        assert_eq!(a, b);
    }
}
