//! Set-cover instances.

use crate::bitset::BitSet;

/// A set-cover instance: a ground set `{0, …, N−1}` and `M` candidate
/// sets.
///
/// In the quasi-identifier reduction the ground set is a collection of
/// tuple pairs and set `i` contains the pairs separated by attribute `i`
/// (Motwani–Xu, Section 1 of the paper).
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    universe: usize,
    sets: Vec<BitSet>,
}

impl SetCoverInstance {
    /// Creates an instance from prebuilt bitsets.
    ///
    /// # Panics
    /// Panics if any set's capacity differs from `universe`.
    pub fn new(universe: usize, sets: Vec<BitSet>) -> Self {
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(
                s.capacity(),
                universe,
                "set {i} has capacity {} but universe is {universe}",
                s.capacity()
            );
        }
        SetCoverInstance { universe, sets }
    }

    /// Creates an instance from element-membership lists.
    ///
    /// # Panics
    /// Panics if any listed element is `>= universe`.
    pub fn from_memberships(universe: usize, memberships: Vec<Vec<usize>>) -> Self {
        let sets = memberships
            .into_iter()
            .map(|els| BitSet::from_iter_with_capacity(universe, els))
            .collect();
        SetCoverInstance { universe, sets }
    }

    /// Ground-set size `N`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of candidate sets `M`.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// The candidate sets.
    pub fn sets(&self) -> &[BitSet] {
        &self.sets
    }

    /// The `i`-th candidate set.
    pub fn set(&self, i: usize) -> &BitSet {
        &self.sets[i]
    }

    /// The union of the chosen sets.
    pub fn coverage(&self, chosen: &[usize]) -> BitSet {
        let mut cov = BitSet::new(self.universe);
        for &i in chosen {
            cov.union_with(&self.sets[i]);
        }
        cov
    }

    /// True iff the chosen sets cover the whole ground set.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        self.coverage(chosen).len() == self.universe
    }

    /// True iff even choosing *all* sets covers the ground set.
    pub fn is_feasible(&self) -> bool {
        let all: Vec<usize> = (0..self.sets.len()).collect();
        self.is_cover(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SetCoverInstance {
        // Universe {0..4}; sets: {0,1}, {1,2,3}, {3,4}, {4}
        SetCoverInstance::from_memberships(5, vec![vec![0, 1], vec![1, 2, 3], vec![3, 4], vec![4]])
    }

    #[test]
    fn dims() {
        let inst = toy();
        assert_eq!(inst.universe(), 5);
        assert_eq!(inst.n_sets(), 4);
        assert_eq!(inst.set(1).len(), 3);
    }

    #[test]
    fn coverage_and_is_cover() {
        let inst = toy();
        assert!(inst.is_cover(&[0, 1, 2]));
        assert!(!inst.is_cover(&[0, 1]));
        assert_eq!(
            inst.coverage(&[0, 3]).iter().collect::<Vec<_>>(),
            vec![0, 1, 4]
        );
        assert!(inst.is_cover(&[0, 1, 2, 3]));
    }

    #[test]
    fn feasibility() {
        let inst = toy();
        assert!(inst.is_feasible());
        let infeasible = SetCoverInstance::from_memberships(3, vec![vec![0], vec![1]]);
        assert!(!infeasible.is_feasible());
    }

    #[test]
    fn empty_universe_trivially_covered() {
        let inst = SetCoverInstance::from_memberships(0, vec![vec![], vec![]]);
        assert!(inst.is_cover(&[]));
        assert!(inst.is_feasible());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn mismatched_capacity_rejected() {
        let _ = SetCoverInstance::new(5, vec![BitSet::new(4)]);
    }
}
