//! Dense fixed-capacity bitsets over `u64` blocks.

use std::fmt;

const BLOCK_BITS: usize = 64;

/// A fixed-capacity set of small integers, one bit per element.
///
/// The set-cover ground sets in this workspace are dense ranges
/// (`0..C(|R|,2)` pair ids), so a packed representation beats hashing by
/// a wide margin: unions, intersections and popcounts are word-parallel.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(BLOCK_BITS)],
            capacity,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.trim_tail();
        s
    }

    /// Creates a set from an iterator of elements.
    ///
    /// # Panics
    /// Panics if any element is `>= capacity`.
    pub fn from_iter_with_capacity(
        capacity: usize,
        elements: impl IntoIterator<Item = usize>,
    ) -> Self {
        let mut s = BitSet::new(capacity);
        for e in elements {
            s.insert(e);
        }
        s
    }

    fn trim_tail(&mut self) {
        let extra = self.blocks.len() * BLOCK_BITS - self.capacity;
        if extra > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// The capacity (exclusive upper bound on elements).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `e`; returns `true` if it was newly added.
    ///
    /// # Panics
    /// Panics if `e >= capacity`.
    #[inline]
    pub fn insert(&mut self, e: usize) -> bool {
        assert!(
            e < self.capacity,
            "element {e} out of capacity {}",
            self.capacity
        );
        let (blk, bit) = (e / BLOCK_BITS, e % BLOCK_BITS);
        let mask = 1u64 << bit;
        let was = self.blocks[blk] & mask != 0;
        self.blocks[blk] |= mask;
        !was
    }

    /// Removes `e`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: usize) -> bool {
        if e >= self.capacity {
            return false;
        }
        let (blk, bit) = (e / BLOCK_BITS, e % BLOCK_BITS);
        let mask = 1u64 << bit;
        let was = self.blocks[blk] & mask != 0;
        self.blocks[blk] &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: usize) -> bool {
        if e >= self.capacity {
            return false;
        }
        self.blocks[e / BLOCK_BITS] & (1u64 << (e % BLOCK_BITS)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// `self ∪= other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_same_capacity(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_same_capacity(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self \= other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.check_same_capacity(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.check_same_capacity(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True iff `self ⊆ other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.check_same_capacity(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// True iff the sets share no element.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn is_disjoint_from(&self, other: &BitSet) -> bool {
        self.intersection_len(other) == 0
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BlockOnes {
                block,
                base: bi * BLOCK_BITS,
            })
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (bi, &block) in self.blocks.iter().enumerate() {
            if block != 0 {
                return Some(bi * BLOCK_BITS + block.trailing_zeros() as usize);
            }
        }
        None
    }

    fn check_same_capacity(&self, other: &BitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }
}

/// Iterator over the set bits of one block.
struct BlockOnes {
    block: u64,
    base: usize,
}

impl Iterator for BlockOnes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let tz = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1; // clear lowest set bit
        Some(self.base + tz)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000), "out of range contains is false");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn full_and_trim() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        let e = BitSet::full(0);
        assert!(e.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter_with_capacity(100, [1, 5, 70]);
        let b = BitSet::from_iter_with_capacity(100, [5, 70, 99]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 70, 99]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 70]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert_eq!(a.intersection_len(&b), 2);
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(d.is_disjoint_from(&b));
    }

    #[test]
    fn iteration_order_and_first() {
        let s = BitSet::from_iter_with_capacity(200, [150, 3, 64, 63]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63, 64, 150]);
        assert_eq!(s.first(), Some(3));
        assert_eq!(BitSet::new(10).first(), None);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_iter_with_capacity(10, [1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn algebra_requires_same_capacity() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        a.intersection_len(&b);
    }

    #[test]
    fn debug_format() {
        let s = BitSet::from_iter_with_capacity(10, [2, 7]);
        assert_eq!(format!("{s:?}"), "{2, 7}");
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = BitSet::from_iter_with_capacity(64, [1, 2]);
        let b = BitSet::from_iter_with_capacity(64, [2, 1]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
