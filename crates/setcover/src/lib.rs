//! # qid-setcover — set-cover substrate
//!
//! Motwani–Xu reduce minimum-key discovery to **minimum set cover**: the
//! ground set is a set of tuple pairs, each attribute covers the pairs
//! it separates, and a `γ`-approximate cover is a `γ`-approximate key.
//! This crate provides that reduction target, built from scratch:
//!
//! * [`bitset`] — dense fixed-capacity bitsets (the ground sets here are
//!   `C(|R|, 2)` pairs — thousands of elements — so dense words win).
//! * [`instance`] — the set-cover instance representation.
//! * [`greedy`] — the classical greedy algorithm (used by the paper with
//!   approximation `ln N + 1`), implemented lazily: stale heap gains are
//!   re-evaluated only when popped, exploiting submodularity.
//! * [`exact`] — branch-and-bound exact minimum cover for the paper's
//!   `γ = 1` brute-force variant (`2^{O(m)}` worst case, fast for the
//!   attribute counts where anyone would run it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod exact;
pub mod greedy;
pub mod instance;

pub use bitset::BitSet;
pub use exact::exact_cover;
pub use greedy::{greedy_cover, CoverResult};
pub use instance::SetCoverInstance;
