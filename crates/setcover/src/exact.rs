//! Exact minimum set cover by branch-and-bound.

use crate::bitset::BitSet;
use crate::greedy::greedy_cover;
use crate::instance::SetCoverInstance;

/// Computes a **minimum** set cover, or `None` if the instance is
/// infeasible.
///
/// This is the `γ = 1` route of the paper's Proposition 1: on a sampled
/// ground set of `O(m/√ε)` tuples the brute-force search is `2^{O(m)}`
/// in the worst case but — with the pruning below — fast for the
/// attribute counts where exact minimum keys are actually wanted.
///
/// Search strategy:
/// * seed the incumbent with the greedy solution (never worse, often
///   optimal already);
/// * branch on the uncovered element contained in the *fewest* sets
///   (fail-first), trying sets in decreasing marginal-gain order;
/// * prune with the bound `depth + ⌈uncovered / max_set_size⌉ ≥ best`.
pub fn exact_cover(inst: &SetCoverInstance) -> Option<Vec<usize>> {
    let universe = inst.universe();
    if universe == 0 {
        return Some(Vec::new());
    }
    if !inst.is_feasible() {
        return None;
    }

    // Element → sets containing it (needed for fail-first branching).
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); universe];
    for (i, s) in inst.sets().iter().enumerate() {
        for e in s.iter() {
            containing[e].push(i);
        }
    }

    let greedy = greedy_cover(inst);
    debug_assert!(greedy.complete, "feasible instance must greedy-cover");
    let mut best: Vec<usize> = greedy.chosen;
    let max_set_size = inst.sets().iter().map(BitSet::len).max().unwrap_or(0);

    let mut uncovered = BitSet::full(universe);
    let mut chosen: Vec<usize> = Vec::new();
    branch(
        inst,
        &containing,
        max_set_size,
        &mut uncovered,
        &mut chosen,
        &mut best,
    );
    Some(best)
}

fn branch(
    inst: &SetCoverInstance,
    containing: &[Vec<usize>],
    max_set_size: usize,
    uncovered: &mut BitSet,
    chosen: &mut Vec<usize>,
    best: &mut Vec<usize>,
) {
    let remaining = uncovered.len();
    if remaining == 0 {
        if chosen.len() < best.len() {
            *best = chosen.clone();
        }
        return;
    }
    // Lower bound: every future set covers at most max_set_size elements.
    let lb = chosen.len() + remaining.div_ceil(max_set_size);
    if lb >= best.len() {
        return;
    }

    // Fail-first: branch on the uncovered element with fewest candidate sets.
    let pivot = uncovered
        .iter()
        .min_by_key(|&e| containing[e].len())
        .expect("remaining > 0");

    // Try candidate sets in decreasing marginal gain.
    let mut candidates: Vec<(usize, usize)> = containing[pivot]
        .iter()
        .map(|&i| (inst.set(i).intersection_len(uncovered), i))
        .collect();
    candidates.sort_unstable_by(|a, b| b.cmp(a));

    for (_gain, i) in candidates {
        let saved = uncovered.clone();
        uncovered.difference_with(inst.set(i));
        chosen.push(i);
        branch(inst, containing, max_set_size, uncovered, chosen, best);
        chosen.pop();
        *uncovered = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_beats_greedy_on_adversarial_instance() {
        // Universe 0..6. Optimal: {0,1,2},{3,4,5} (2 sets). Greedy takes
        // the size-4 set first and needs 3.
        let inst = SetCoverInstance::from_memberships(
            6,
            vec![vec![1, 2, 3, 4], vec![0, 1, 2], vec![3, 4, 5]],
        );
        let g = greedy_cover(&inst);
        assert_eq!(g.chosen.len(), 3);
        let opt = exact_cover(&inst).unwrap();
        assert_eq!(opt.len(), 2);
        assert!(inst.is_cover(&opt));
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = SetCoverInstance::from_memberships(3, vec![vec![0], vec![1]]);
        assert_eq!(exact_cover(&inst), None);
    }

    #[test]
    fn empty_universe() {
        let inst = SetCoverInstance::from_memberships(0, vec![vec![]]);
        assert_eq!(exact_cover(&inst), Some(vec![]));
    }

    #[test]
    fn single_covering_set() {
        let inst = SetCoverInstance::from_memberships(4, vec![vec![0, 1, 2, 3]]);
        let opt = exact_cover(&inst).unwrap();
        assert_eq!(opt, vec![0]);
    }

    #[test]
    fn exact_never_exceeds_greedy() {
        // Randomised cross-check on small instances.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let universe = rng.random_range(4..12);
            let n_sets = rng.random_range(3..9);
            let mut memberships = Vec::new();
            for _ in 0..n_sets {
                let mut els = Vec::new();
                for e in 0..universe {
                    if rng.random_bool(0.4) {
                        els.push(e);
                    }
                }
                memberships.push(els);
            }
            let inst = SetCoverInstance::from_memberships(universe, memberships);
            let g = greedy_cover(&inst);
            match exact_cover(&inst) {
                None => assert!(!g.complete, "trial {trial}: exact none but greedy covered"),
                Some(opt) => {
                    assert!(g.complete);
                    assert!(inst.is_cover(&opt), "trial {trial}: not a cover");
                    assert!(
                        opt.len() <= g.chosen.len(),
                        "trial {trial}: exact {} > greedy {}",
                        opt.len(),
                        g.chosen.len()
                    );
                }
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_on_tiny_instances() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..20 {
            let universe = rng.random_range(3..7);
            let n_sets: usize = rng.random_range(2..6);
            let mut memberships = Vec::new();
            for _ in 0..n_sets {
                let mut els = Vec::new();
                for e in 0..universe {
                    if rng.random_bool(0.5) {
                        els.push(e);
                    }
                }
                memberships.push(els);
            }
            let inst = SetCoverInstance::from_memberships(universe, memberships.clone());

            // Brute force over all 2^n_sets subsets.
            let mut brute: Option<usize> = None;
            for mask in 0u32..(1 << n_sets) {
                let chosen: Vec<usize> = (0..n_sets).filter(|&i| mask & (1 << i) != 0).collect();
                if inst.is_cover(&chosen) {
                    brute = Some(brute.map_or(chosen.len(), |b| b.min(chosen.len())));
                }
            }
            let exact = exact_cover(&inst).map(|v| v.len());
            assert_eq!(exact, brute, "trial {trial}: {memberships:?}");
        }
    }
}
