//! Property tests for the set-cover substrate.

use proptest::prelude::*;

use qid_setcover::{exact_cover, greedy_cover, BitSet, SetCoverInstance};

fn instance_strategy() -> impl Strategy<Value = SetCoverInstance> {
    (1usize..24, 1usize..8).prop_flat_map(|(universe, n_sets)| {
        proptest::collection::vec(
            proptest::collection::vec(0usize..universe, 0..universe.max(1)),
            n_sets,
        )
        .prop_map(move |memberships| SetCoverInstance::from_memberships(universe, memberships))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bitset algebra laws on random element sets.
    #[test]
    fn bitset_algebra_laws(
        cap in 1usize..200,
        a in proptest::collection::vec(0usize..200, 0..40),
        b in proptest::collection::vec(0usize..200, 0..40),
    ) {
        let a: Vec<usize> = a.into_iter().filter(|&x| x < cap).collect();
        let b: Vec<usize> = b.into_iter().filter(|&x| x < cap).collect();
        let sa = BitSet::from_iter_with_capacity(cap, a.iter().copied());
        let sb = BitSet::from_iter_with_capacity(cap, b.iter().copied());

        // |A∩B| + |A∪B| = |A| + |B|
        let mut union = sa.clone();
        union.union_with(&sb);
        prop_assert_eq!(sa.intersection_len(&sb) + union.len(), sa.len() + sb.len());

        // A \ B disjoint from B, and (A\B) ∪ (A∩B) = A
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        prop_assert!(diff.is_disjoint_from(&sb));
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let mut rebuilt = diff.clone();
        rebuilt.union_with(&inter);
        prop_assert_eq!(rebuilt, sa.clone());

        // Iteration is sorted and matches membership.
        let elems: Vec<usize> = sa.iter().collect();
        prop_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(elems.iter().all(|&e| sa.contains(e)));
        prop_assert_eq!(elems.len(), sa.len());
    }

    /// Greedy output is always a valid (possibly partial) cover with
    /// no useless picks; exact never beats it upward.
    #[test]
    fn greedy_and_exact_consistent(inst in instance_strategy()) {
        let g = greedy_cover(&inst);
        // Covered count matches the union of chosen sets.
        prop_assert_eq!(g.covered, inst.coverage(&g.chosen).len());
        prop_assert_eq!(g.complete, g.covered == inst.universe());
        // No chosen set is useless: dropping the last always shrinks
        // coverage.
        if let Some((_, rest)) = g.chosen.split_last() {
            prop_assert!(inst.coverage(rest).len() < g.covered);
        }

        match exact_cover(&inst) {
            Some(opt) => {
                prop_assert!(g.complete);
                prop_assert!(inst.is_cover(&opt));
                prop_assert!(opt.len() <= g.chosen.len());
                // ln(N)+1 approximation guarantee.
                let bound = ((inst.universe().max(1) as f64).ln() + 1.0) * opt.len() as f64;
                prop_assert!(g.chosen.len() as f64 <= bound + 1e-9);
            }
            None => prop_assert!(!g.complete),
        }
    }

    /// Exact cover matches exhaustive enumeration on tiny instances.
    #[test]
    fn exact_matches_bruteforce(
        universe in 1usize..8,
        memberships in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..8), 1..6
        ),
    ) {
        let memberships: Vec<Vec<usize>> = memberships
            .into_iter()
            .map(|els| els.into_iter().filter(|&e| e < universe).collect())
            .collect();
        let n_sets = memberships.len();
        let inst = SetCoverInstance::from_memberships(universe, memberships);

        let mut brute: Option<usize> = None;
        for mask in 0u32..(1 << n_sets) {
            let chosen: Vec<usize> = (0..n_sets).filter(|&i| mask & (1 << i) != 0).collect();
            if inst.is_cover(&chosen) {
                brute = Some(brute.map_or(chosen.len(), |b| b.min(chosen.len())));
            }
        }
        prop_assert_eq!(exact_cover(&inst).map(|v| v.len()), brute);
    }
}
