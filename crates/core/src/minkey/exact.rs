//! Brute-force (`γ = 1`) minimum keys via exact set cover.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{AttrId, Dataset};
use qid_sampling::pairs::rank_pair;
use qid_sampling::swor::sample_indices;
use qid_setcover::{exact_cover, BitSet, SetCoverInstance};

use crate::filter::FilterParams;

/// The exact minimum key of a (small) data set: the smallest attribute
/// set separating **all** pairs, or `None` if identical tuples make a
/// key impossible.
///
/// Builds the explicit set-cover instance over all `C(n,2)` pairs and
/// solves it exactly — `2^{O(m)}` worst case (the paper's `γ = 1`
/// brute-force route, whose point is that on a *sample* of
/// `O(m/√ε)` tuples the ground set is small enough to afford this).
pub fn exact_min_key(ds: &Dataset) -> Option<Vec<AttrId>> {
    let n = ds.n_rows();
    let m = ds.n_attrs();
    if n < 2 {
        return Some(Vec::new());
    }
    let universe = usize::try_from(ds.n_pairs()).expect("pair universe too large");
    let mut sets = Vec::with_capacity(m);
    for k in 0..m {
        let col = ds.column(AttrId::new(k));
        let mut covered = BitSet::new(universe);
        for j in 1..n {
            for i in 0..j {
                if col.code(i) != col.code(j) {
                    covered.insert(rank_pair(i, j) as usize);
                }
            }
        }
        sets.push(covered);
    }
    let inst = SetCoverInstance::new(universe, sets);
    exact_cover(&inst).map(|chosen| chosen.into_iter().map(AttrId::new).collect())
}

/// Proposition 1's `γ = 1` variant: sample `Θ(m/√ε)` tuples and find
/// the **exact** minimum key of the sample. With probability
/// `≥ 1 − e^{−m}` the result is an ε-separation key of the full data
/// set no larger than the true minimum key.
pub fn exact_min_key_sampled(ds: &Dataset, params: FilterParams, seed: u64) -> Option<Vec<AttrId>> {
    let r = params.tuple_sample_size(ds.n_attrs()).min(ds.n_rows());
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = sample_indices(&mut rng, ds.n_rows(), r);
    exact_min_key(&ds.gather(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    use crate::minkey::greedy_refine::GreedyRefineMinKey;
    use crate::separation::is_key;

    #[test]
    fn exact_beats_or_matches_greedy() {
        // Adversarial instance: greedy picks the "big" attribute first
        // and needs 3; the optimum is 2.
        // Attribute layout over 8 rows:
        //   big  separates most pairs but leaves (0,1) and (6,7);
        //   p    separates (0,1) and the left half from right;
        //   q    separates (6,7) and complements p.
        let mut b = DatasetBuilder::new(["big", "p", "q"]);
        let rows = [
            // (big, p, q)
            (0, 0, 0),
            (0, 1, 0),
            (1, 2, 1),
            (2, 2, 2),
            (3, 3, 3),
            (4, 3, 4),
            (5, 4, 5),
            (5, 5, 5),
        ];
        for (x, y, z) in rows {
            b.push_row([Value::Int(x), Value::Int(y), Value::Int(z)])
                .unwrap();
        }
        let ds = b.finish();
        let exact = exact_min_key(&ds).unwrap();
        assert!(is_key(&ds, &exact));
        let greedy = GreedyRefineMinKey::run_on_sample(&ds);
        assert!(greedy.complete);
        assert!(exact.len() <= greedy.key_size());
    }

    #[test]
    fn no_key_when_duplicates() {
        let mut b = DatasetBuilder::new(["a", "b"]);
        b.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        b.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        let ds = b.finish();
        assert_eq!(exact_min_key(&ds), None);
    }

    #[test]
    fn trivial_cases() {
        let empty = DatasetBuilder::new(["a"]).finish();
        assert_eq!(exact_min_key(&empty), Some(vec![]));
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(1)]).unwrap();
        assert_eq!(exact_min_key(&b.finish()), Some(vec![]));
    }

    #[test]
    fn single_attribute_key_found() {
        let mut b = DatasetBuilder::new(["c", "id"]);
        for i in 0..10i64 {
            b.push_row([Value::Int(0), Value::Int(i)]).unwrap();
        }
        let ds = b.finish();
        assert_eq!(exact_min_key(&ds), Some(vec![AttrId::new(1)]));
    }

    #[test]
    fn sampled_variant_returns_valid_eps_key() {
        // id is the unique minimum key; the sampled exact search must
        // find a key of size 1 on its sample.
        let mut b = DatasetBuilder::new(["noise", "id"]);
        for i in 0..500i64 {
            b.push_row([Value::Int(i % 3), Value::Int(i)]).unwrap();
        }
        let ds = b.finish();
        let key = exact_min_key_sampled(&ds, FilterParams::new(0.01), 5).unwrap();
        assert_eq!(key, vec![AttrId::new(1)]);
    }

    #[test]
    fn exact_is_minimum_by_exhaustion() {
        // Cross-check against explicit subset enumeration on a small m.
        let mut b = DatasetBuilder::new(["a", "b", "c"]);
        let rows = [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0), (0, 0, 1)];
        for (x, y, z) in rows {
            b.push_row([Value::Int(x), Value::Int(y), Value::Int(z)])
                .unwrap();
        }
        let ds = b.finish();
        let exact = exact_min_key(&ds);

        let mut best: Option<usize> = None;
        for mask in 0u32..8 {
            let attrs: Vec<AttrId> = (0..3)
                .filter(|&i| mask & (1 << i) != 0)
                .map(AttrId::new)
                .collect();
            if is_key(&ds, &attrs) {
                best = Some(best.map_or(attrs.len(), |b| b.min(attrs.len())));
            }
        }
        assert_eq!(exact.map(|k| k.len()), best);
    }
}
