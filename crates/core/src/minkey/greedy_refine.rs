//! Appendix B: greedy set cover by partition refinement — `O(m³/√ε)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{AttrId, Dataset};
use qid_sampling::swor::sample_indices;

use crate::filter::FilterParams;
use crate::separation::{PartitionIndex, Refiner};

use super::MinKeyResult;

/// The paper's improved approximate-minimum-key algorithm.
///
/// Sample `R = Θ(m/√ε)` tuples; run greedy set cover where the ground
/// set is `C(R,2)` — *implicitly*: the state is the set of cliques of
/// the auxiliary graph `G_A` restricted to `R`, and an attribute's
/// marginal gain is the number of sampled pairs it newly separates,
///
/// ```text
/// g_k = ½ Σ_i ( |C_i|² − Σ_a |D_a^{(i)}|² )
/// ```
///
/// where attribute `k` splits clique `C_i` into the `D_a^{(i)}`. Splits
/// are computed in `O(|R|)` per attribute via the precomputed lookup
/// table `P` (Algorithm 3), so each greedy round costs `O(m·|R|)` and
/// the whole run `O(m²·|R|) = O(m³/√ε)` — the Proposition 1 bound.
#[derive(Clone, Copy, Debug)]
pub struct GreedyRefineMinKey {
    params: FilterParams,
}

impl GreedyRefineMinKey {
    /// Creates the solver with the given sampling parameters.
    pub fn new(params: FilterParams) -> Self {
        GreedyRefineMinKey { params }
    }

    /// Samples from `ds` and runs the greedy cover.
    pub fn run(&self, ds: &Dataset, seed: u64) -> MinKeyResult {
        let r = self.params.tuple_sample_size(ds.n_attrs()).min(ds.n_rows());
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = sample_indices(&mut rng, ds.n_rows(), r);
        let sample = ds.gather(&rows);
        Self::run_on_sample(&sample)
    }

    /// Runs the greedy cover directly on a sample (or any small data
    /// set) — the core of Proposition 1.
    pub fn run_on_sample(sample: &Dataset) -> MinKeyResult {
        Self::run_on_sample_with_slack(sample, 0.0)
    }

    /// Greedy cover that stops once at most a `slack` fraction of the
    /// sample's pairs remain unseparated (`slack = 0` demands a full
    /// key). Privacy tooling uses `slack = ε` to chase *quasi*-keys:
    /// an attribute set can re-identify almost everyone while still
    /// colliding somewhere in the sample.
    ///
    /// # Panics
    /// Panics if `slack` is negative or ≥ 1.
    pub fn run_on_sample_with_slack(sample: &Dataset, slack: f64) -> MinKeyResult {
        assert!((0.0..1.0).contains(&slack), "slack must be in [0, 1)");
        let n = sample.n_rows();
        let m = sample.n_attrs();
        let total_pairs = sample.n_pairs();
        let target: u128 = (slack * total_pairs as f64).floor() as u128;
        let idx = PartitionIndex::build(sample);
        let mut refiner = Refiner::new(&idx);

        // State: cliques of size ≥ 2 (singletons are fully separated).
        let mut groups: Vec<Vec<u32>> = if n >= 2 {
            vec![(0..n as u32).collect()]
        } else {
            Vec::new()
        };
        let mut unseparated = total_pairs;
        let mut chosen: Vec<AttrId> = Vec::new();
        let mut in_chosen = vec![false; m];

        while unseparated > target && !groups.is_empty() && chosen.len() < m {
            // Pick the attribute separating the most currently
            // unseparated pairs.
            let mut best: Option<(u128, usize)> = None;
            #[allow(clippy::needless_range_loop)] // k is also the AttrId payload
            for k in 0..m {
                if in_chosen[k] {
                    continue;
                }
                let attr = AttrId::new(k);
                let mut gain: u128 = 0;
                for g in &groups {
                    let c = g.len() as u128;
                    let mut sq_after: u128 = 0;
                    for &sz in refiner.split_sizes(&idx, attr, g) {
                        sq_after += (sz as u128) * (sz as u128);
                    }
                    gain += (c * c - sq_after) / 2;
                }
                match best {
                    Some((bg, _)) if bg >= gain => {}
                    _ => best = Some((gain, k)),
                }
            }
            let Some((gain, k)) = best else { break };
            if gain == 0 {
                // No attribute separates anything further: the sample
                // contains identical tuples.
                break;
            }
            in_chosen[k] = true;
            let attr = AttrId::new(k);
            chosen.push(attr);
            unseparated -= gain;
            let mut next = Vec::with_capacity(groups.len());
            for g in &groups {
                next.extend(refiner.split(&idx, attr, g, false));
            }
            groups = next;
        }

        MinKeyResult {
            attrs: chosen,
            complete: unseparated <= target,
            sample_size: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    use crate::separation::is_key;

    fn attr_ids(r: &MinKeyResult) -> Vec<usize> {
        r.attrs.iter().map(|a| a.index()).collect()
    }

    /// id column is a key by itself; others are weaker.
    fn fixture() -> Dataset {
        let mut b = DatasetBuilder::new(["half", "quarter", "id"]);
        for i in 0..16i64 {
            b.push_row([Value::Int(i % 2), Value::Int(i % 4), Value::Int(i)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn finds_single_attribute_key() {
        let ds = fixture();
        let r = GreedyRefineMinKey::run_on_sample(&ds);
        assert!(r.complete);
        assert_eq!(attr_ids(&r), vec![2], "greedy must take the id column");
        assert!(is_key(&ds, &r.attrs));
    }

    #[test]
    fn composite_key() {
        // No single attribute is a key; {a, b} is.
        let mut b = DatasetBuilder::new(["a", "b"]);
        for i in 0..4i64 {
            for j in 0..4i64 {
                b.push_row([Value::Int(i), Value::Int(j)]).unwrap();
            }
        }
        let ds = b.finish();
        let r = GreedyRefineMinKey::run_on_sample(&ds);
        assert!(r.complete);
        assert_eq!(r.key_size(), 2);
        assert!(is_key(&ds, &r.attrs));
    }

    #[test]
    fn duplicate_rows_yield_incomplete() {
        let mut b = DatasetBuilder::new(["a", "b"]);
        b.push_row([Value::Int(1), Value::Int(1)]).unwrap();
        b.push_row([Value::Int(1), Value::Int(1)]).unwrap();
        b.push_row([Value::Int(2), Value::Int(1)]).unwrap();
        let ds = b.finish();
        let r = GreedyRefineMinKey::run_on_sample(&ds);
        assert!(!r.complete);
        // It still separates what it can.
        assert_eq!(attr_ids(&r), vec![0]);
    }

    #[test]
    fn greedy_gain_priority() {
        // quarter separates more pairs than half; both needed with id
        // absent. Greedy must pick quarter first.
        let mut b = DatasetBuilder::new(["half", "quarter", "eighth"]);
        for i in 0..16i64 {
            b.push_row([Value::Int(i % 2), Value::Int(i % 4), Value::Int(i % 8)])
                .unwrap();
        }
        let ds = b.finish();
        let r = GreedyRefineMinKey::run_on_sample(&ds);
        // eighth has the largest gain, then the others refine further;
        // no key exists (rows 0 and 8 collide on all three? 0%2=0,0%4=0,
        // 0%8=0 vs 8%2=0, 8%4=0, 8%8=0 — identical). Not complete.
        assert!(!r.complete);
        assert_eq!(r.attrs[0], AttrId::new(2), "largest-gain attribute first");
    }

    #[test]
    fn sampling_run_respects_params() {
        let mut b = DatasetBuilder::new(["id", "c"]);
        for i in 0..1000i64 {
            b.push_row([Value::Int(i), Value::Int(0)]).unwrap();
        }
        let ds = b.finish();
        let solver = GreedyRefineMinKey::new(FilterParams::new(0.04));
        let r = solver.run(&ds, 7);
        // m=2, ε=0.04 → r = 2/0.2 = 10 samples.
        assert_eq!(r.sample_size, 10);
        assert!(r.complete);
        assert_eq!(attr_ids(&r), vec![0]);
    }

    #[test]
    fn slack_stops_early() {
        // 100 rows: "coarse" separates 99% of pairs; "fine" finishes
        // the job. With 5% slack the greedy should stop after coarse.
        let mut b = DatasetBuilder::new(["coarse", "fine"]);
        for i in 0..100i64 {
            b.push_row([Value::Int(i / 2), Value::Int(i % 2)]).unwrap();
        }
        let ds = b.finish();
        let strict = GreedyRefineMinKey::run_on_sample(&ds);
        assert!(strict.complete);
        assert_eq!(strict.key_size(), 2);

        let slack = GreedyRefineMinKey::run_on_sample_with_slack(&ds, 0.05);
        assert!(slack.complete);
        assert_eq!(slack.key_size(), 1, "5% slack should accept coarse alone");
        assert_eq!(slack.attrs, vec![AttrId::new(0)]);
    }

    #[test]
    fn slack_complete_even_with_duplicates() {
        // Two identical rows poison exact keys but not quasi-keys.
        let mut b = DatasetBuilder::new(["id"]);
        for i in 0..50i64 {
            b.push_row([Value::Int(i.min(48))]).unwrap(); // rows 48,49 equal
        }
        let ds = b.finish();
        let strict = GreedyRefineMinKey::run_on_sample(&ds);
        assert!(!strict.complete);
        let slack = GreedyRefineMinKey::run_on_sample_with_slack(&ds, 0.01);
        assert!(slack.complete, "1 bad pair of C(50,2) is within 1% slack");
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn slack_out_of_range_rejected() {
        let ds = DatasetBuilder::new(["a"]).finish();
        let _ = GreedyRefineMinKey::run_on_sample_with_slack(&ds, 1.0);
    }

    #[test]
    fn empty_and_single_row() {
        let empty = DatasetBuilder::new(["a"]).finish();
        let r = GreedyRefineMinKey::run_on_sample(&empty);
        assert!(r.complete);
        assert!(r.attrs.is_empty());

        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(1)]).unwrap();
        let one = b.finish();
        let r = GreedyRefineMinKey::run_on_sample(&one);
        assert!(r.complete);
        assert!(r.attrs.is_empty(), "single row needs no attributes");
    }
}
