//! The Motwani–Xu baseline: greedy set cover over sampled pairs.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{AttrId, Dataset};
use qid_sampling::pairs::PairSampler;
use qid_setcover::{greedy_cover, BitSet, SetCoverInstance};

use crate::filter::FilterParams;

use super::MinKeyResult;

/// Motwani–Xu (2008): sample `R' = Θ(m/ε)` uniform pairs of tuples, use
/// `R'` itself as the set-cover ground set (attribute `k` covers the
/// pairs it separates), and solve greedily — `O(m³/ε)` overall.
///
/// This is the baseline Proposition 1 improves on; it is implemented
/// faithfully (explicit ground set, explicit per-attribute bitsets) so
/// the benchmark comparison measures the paper's claimed gap.
#[derive(Clone, Copy, Debug)]
pub struct MxGreedyMinKey {
    params: FilterParams,
}

impl MxGreedyMinKey {
    /// Creates the solver with the given sampling parameters.
    pub fn new(params: FilterParams) -> Self {
        MxGreedyMinKey { params }
    }

    /// Samples pairs from `ds` and runs the greedy cover.
    ///
    /// # Panics
    /// Panics if the data set has fewer than 2 rows.
    pub fn run(&self, ds: &Dataset, seed: u64) -> MinKeyResult {
        assert!(ds.n_rows() >= 2, "need at least 2 tuples to sample pairs");
        let s = self.params.pair_sample_size(ds.n_attrs());
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = PairSampler::new(ds.n_rows()).with_replacement(&mut rng, s);
        Self::run_on_pairs(ds, &pairs)
    }

    /// Runs the greedy cover over an explicit list of row pairs.
    pub fn run_on_pairs(ds: &Dataset, pairs: &[(usize, usize)]) -> MinKeyResult {
        let m = ds.n_attrs();
        let s = pairs.len();
        let mut sets = Vec::with_capacity(m);
        for k in 0..m {
            let attr = AttrId::new(k);
            let col = ds.column(attr);
            let mut covered = BitSet::new(s);
            for (p, &(i, j)) in pairs.iter().enumerate() {
                if col.code(i) != col.code(j) {
                    covered.insert(p);
                }
            }
            sets.push(covered);
        }
        let inst = SetCoverInstance::new(s, sets);
        let cover = greedy_cover(&inst);
        MinKeyResult {
            attrs: cover.chosen.into_iter().map(AttrId::new).collect(),
            complete: cover.complete,
            sample_size: s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    use crate::separation::is_key;

    fn fixture() -> Dataset {
        let mut b = DatasetBuilder::new(["half", "quarter", "id"]);
        for i in 0..32i64 {
            b.push_row([Value::Int(i % 2), Value::Int(i % 4), Value::Int(i)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn finds_id_key() {
        let ds = fixture();
        let solver = MxGreedyMinKey::new(FilterParams::new(0.05));
        let r = solver.run(&ds, 3);
        assert!(r.complete);
        assert_eq!(r.attrs, vec![AttrId::new(2)]);
        assert!(is_key(&ds, &r.attrs));
        // m=3, ε=0.05 → 60 pairs.
        assert_eq!(r.sample_size, 60);
    }

    #[test]
    fn explicit_pairs_cover() {
        let ds = fixture();
        // Pairs separated only by quarter and id.
        let pairs = vec![(0, 2), (1, 3), (0, 4)];
        let r = MxGreedyMinKey::run_on_pairs(&ds, &pairs);
        assert!(r.complete);
        assert!(!r.attrs.is_empty());
        // Verify the chosen attrs separate every listed pair.
        for &(i, j) in &pairs {
            assert!(ds.separates(&r.attrs, i, j));
        }
    }

    #[test]
    fn identical_pair_makes_incomplete() {
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(1)]).unwrap();
        b.push_row([Value::Int(1)]).unwrap();
        let ds = b.finish();
        let r = MxGreedyMinKey::run_on_pairs(&ds, &[(0, 1)]);
        assert!(!r.complete);
        assert!(r.attrs.is_empty());
    }

    #[test]
    fn empty_pair_list_is_trivially_complete() {
        let ds = fixture();
        let r = MxGreedyMinKey::run_on_pairs(&ds, &[]);
        assert!(r.complete);
        assert!(r.attrs.is_empty());
    }

    #[test]
    fn agrees_with_refine_on_key_size() {
        use crate::minkey::greedy_refine::GreedyRefineMinKey;
        // Both algorithms should find small keys of the same size on a
        // clean composite-key data set.
        let mut b = DatasetBuilder::new(["a", "b", "noise"]);
        for i in 0..6i64 {
            for j in 0..6i64 {
                b.push_row([Value::Int(i), Value::Int(j), Value::Int((i + j) % 2)])
                    .unwrap();
            }
        }
        let ds = b.finish();
        let refine = GreedyRefineMinKey::run_on_sample(&ds);
        let solver = MxGreedyMinKey::new(FilterParams::new(0.02));
        let mx = solver.run(&ds, 11);
        assert!(refine.complete);
        assert!(mx.complete);
        assert_eq!(refine.key_size(), 2);
        assert_eq!(mx.key_size(), 2);
    }
}
