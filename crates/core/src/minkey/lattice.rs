//! Minimal-key enumeration (unique column combination discovery).
//!
//! An extension beyond the paper: privacy auditing (the paper's §1
//! motivation) wants *all* minimal quasi-identifiers, not just one small
//! key. This module enumerates every inclusion-minimal key of a data
//! set level-wise (Apriori-style, as in UCC discovery systems like
//! Metanome's HyUCC/DUCC), with candidate pruning:
//!
//! * a candidate at level `ℓ` is generated only from two level-`ℓ−1`
//!   non-keys sharing a prefix, and kept only if **all** its
//!   `ℓ−1`-subsets are non-keys (guaranteeing minimality by
//!   construction);
//! * key checks are partition refinements on the (usually sampled)
//!   data set.

use std::collections::HashSet;

use qid_dataset::{AttrId, Dataset};

use crate::separation::unseparated_pairs;

/// Limits for the lattice search.
#[derive(Clone, Copy, Debug)]
pub struct LatticeConfig {
    /// Do not explore attribute sets larger than this.
    pub max_size: usize,
    /// Abort (returning what was found) if a level would exceed this
    /// many candidates.
    pub max_candidates: usize,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            max_size: 6,
            max_candidates: 200_000,
        }
    }
}

/// Enumerates all inclusion-minimal keys of `ds` with at most
/// `cfg.max_size` attributes, in ascending size then lexicographic
/// order.
///
/// Run this on a `Θ(m/√ε)` tuple sample to enumerate minimal
/// ε-separation keys of a large data set with the paper's for-all
/// guarantee.
pub fn enumerate_minimal_keys(ds: &Dataset, cfg: LatticeConfig) -> Vec<Vec<AttrId>> {
    let m = ds.n_attrs();
    let mut keys: Vec<Vec<AttrId>> = Vec::new();
    if ds.n_rows() < 2 {
        // Every set (even the empty one) separates all zero pairs.
        return vec![Vec::new()];
    }

    // Level 1.
    let mut non_keys: Vec<Vec<usize>> = Vec::new();
    for a in 0..m {
        let attrs = [AttrId::new(a)];
        if unseparated_pairs(ds, &attrs) == 0 {
            keys.push(vec![AttrId::new(a)]);
        } else {
            non_keys.push(vec![a]);
        }
    }

    let mut level = 2usize;
    while level <= cfg.max_size && !non_keys.is_empty() {
        let prev_set: HashSet<&[usize]> = non_keys.iter().map(|v| v.as_slice()).collect();
        let mut candidates: Vec<Vec<usize>> = Vec::new();

        // Apriori join: combine non-keys sharing their first ℓ−2 attrs.
        for (i, a) in non_keys.iter().enumerate() {
            for b in &non_keys[i + 1..] {
                if a[..level - 2] != b[..level - 2] {
                    continue;
                }
                let mut cand = a.clone();
                cand.push(b[level - 2]);
                debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
                // Apriori prune: all (ℓ−1)-subsets must be non-keys.
                let all_subsets_non_key = (0..cand.len()).all(|drop| {
                    let mut sub = cand.clone();
                    sub.remove(drop);
                    prev_set.contains(sub.as_slice())
                });
                if all_subsets_non_key {
                    candidates.push(cand);
                }
                if candidates.len() > cfg.max_candidates {
                    // Too wide — return what is proven so far.
                    keys.sort();
                    return keys;
                }
            }
        }

        let mut next_non_keys = Vec::new();
        for cand in candidates {
            let attrs: Vec<AttrId> = cand.iter().map(|&a| AttrId::new(a)).collect();
            if unseparated_pairs(ds, &attrs) == 0 {
                keys.push(attrs);
            } else {
                next_non_keys.push(cand);
            }
        }
        non_keys = next_non_keys;
        level += 1;
    }

    keys.sort_by(|a, b| (a.len(), a.as_slice()).cmp(&(b.len(), b.as_slice())));
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    fn ids(keys: &[Vec<AttrId>]) -> Vec<Vec<usize>> {
        keys.iter()
            .map(|k| k.iter().map(|a| a.index()).collect())
            .collect()
    }

    #[test]
    fn single_minimal_key() {
        let mut b = DatasetBuilder::new(["c", "id"]);
        for i in 0..8i64 {
            b.push_row([Value::Int(0), Value::Int(i)]).unwrap();
        }
        let keys = enumerate_minimal_keys(&b.finish(), LatticeConfig::default());
        assert_eq!(ids(&keys), vec![vec![1]]);
    }

    #[test]
    fn composite_minimal_keys() {
        // a×b grid: neither a nor b alone is a key; {a,b} is; c is noise
        // that never helps minimally.
        let mut b = DatasetBuilder::new(["a", "b", "c"]);
        for i in 0..3i64 {
            for j in 0..3i64 {
                b.push_row([Value::Int(i), Value::Int(j), Value::Int(0)])
                    .unwrap();
            }
        }
        let keys = enumerate_minimal_keys(&b.finish(), LatticeConfig::default());
        assert_eq!(ids(&keys), vec![vec![0, 1]]);
    }

    #[test]
    fn multiple_minimal_keys_found() {
        // id1 and id2 are independent keys; {a} is not.
        let mut b = DatasetBuilder::new(["id1", "a", "id2"]);
        for i in 0..6i64 {
            b.push_row([Value::Int(i), Value::Int(i % 2), Value::Int(5 - i)])
                .unwrap();
        }
        let keys = enumerate_minimal_keys(&b.finish(), LatticeConfig::default());
        assert_eq!(ids(&keys), vec![vec![0], vec![2]]);
    }

    #[test]
    fn minimality_no_supersets_reported() {
        // {a,b} and {a,c} are minimal keys; {a,b,c} must not appear.
        let mut b = DatasetBuilder::new(["a", "b", "c"]);
        let rows = [(0, 0, 0), (0, 1, 1), (1, 0, 0), (1, 1, 1)];
        for (x, y, z) in rows {
            b.push_row([Value::Int(x), Value::Int(y), Value::Int(z)])
                .unwrap();
        }
        let keys = enumerate_minimal_keys(&b.finish(), LatticeConfig::default());
        // b == c here, so minimal keys are {a,b} and {a,c}.
        assert_eq!(ids(&keys), vec![vec![0, 1], vec![0, 2]]);
        for k in &keys {
            assert!(k.len() < 3);
        }
    }

    #[test]
    fn no_key_at_all() {
        let mut b = DatasetBuilder::new(["a", "b"]);
        b.push_row([Value::Int(1), Value::Int(1)]).unwrap();
        b.push_row([Value::Int(1), Value::Int(1)]).unwrap();
        let keys = enumerate_minimal_keys(&b.finish(), LatticeConfig::default());
        assert!(keys.is_empty());
    }

    #[test]
    fn max_size_truncates_search() {
        // The only key is all three attributes; with max_size 2 nothing
        // is found.
        let mut b = DatasetBuilder::new(["a", "b", "c"]);
        for i in 0..2i64 {
            for j in 0..2i64 {
                for k in 0..2i64 {
                    b.push_row([Value::Int(i), Value::Int(j), Value::Int(k)])
                        .unwrap();
                }
            }
        }
        let ds = b.finish();
        let limited = enumerate_minimal_keys(
            &ds,
            LatticeConfig {
                max_size: 2,
                ..LatticeConfig::default()
            },
        );
        assert!(limited.is_empty());
        let full = enumerate_minimal_keys(&ds, LatticeConfig::default());
        assert_eq!(ids(&full), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn degenerate_small_datasets() {
        let empty = DatasetBuilder::new(["a"]).finish();
        let keys = enumerate_minimal_keys(&empty, LatticeConfig::default());
        assert_eq!(keys, vec![Vec::<AttrId>::new()]);
    }
}
