//! Approximate minimum ε-separation keys (the paper's Proposition 1).
//!
//! Pipeline: sample a set `R` of tuples (or pairs), pose the set-cover
//! instance whose ground set is the sampled pairs and whose sets are the
//! attributes, and solve it:
//!
//! * [`GreedyRefineMinKey`] — **this paper's** `O(m³/√ε)` algorithm:
//!   greedy set cover over the implicit ground set `C(R,2)`, driven by
//!   partition refinement with the precomputed lookup table
//!   (Appendix B, Algorithms 2+3). Approximation `γ = O(ln m / ε)`.
//! * [`MxGreedyMinKey`] — the Motwani–Xu baseline: greedy over `Θ(m/ε)`
//!   explicitly sampled pairs (`O(m³/ε)` time).
//! * [`exact`] — brute-force `γ = 1` minimum key on the sample.
//! * [`lattice`] — extension: enumerate **all minimal keys** of a data
//!   set (unique column combination discovery), Apriori-style.

pub mod exact;
pub mod greedy_refine;
pub mod lattice;
pub mod mx_greedy;

pub use exact::{exact_min_key, exact_min_key_sampled};
pub use greedy_refine::GreedyRefineMinKey;
pub use lattice::{enumerate_minimal_keys, LatticeConfig};
pub use mx_greedy::MxGreedyMinKey;

use qid_dataset::AttrId;

/// The outcome of a minimum-key search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinKeyResult {
    /// Chosen attributes, in pick order.
    pub attrs: Vec<AttrId>,
    /// True iff the chosen set separates **all** sampled pairs. `false`
    /// means the sample contains fully identical tuples (the data set
    /// has no key at all on that sample).
    pub complete: bool,
    /// Number of sampled tuples (for [`GreedyRefineMinKey`]) or pairs
    /// (for [`MxGreedyMinKey`]) the search ran on.
    pub sample_size: usize,
}

impl MinKeyResult {
    /// The size of the found key.
    pub fn key_size(&self) -> usize {
        self.attrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_accessors() {
        let r = MinKeyResult {
            attrs: vec![AttrId::new(1), AttrId::new(3)],
            complete: true,
            sample_size: 10,
        };
        assert_eq!(r.key_size(), 2);
        assert!(r.complete);
    }
}
