//! One-pass (streaming) construction of every sketch.
//!
//! The paper: "sampling pairs of tuples can easily be implemented in
//! the streaming model and the space would be proportional to the
//! number of samples." These builders realise that:
//!
//! * the tuple filter keeps a single size-`r` reservoir (Algorithm L) —
//!   a uniform without-replacement sample, exactly what Algorithm 1
//!   requires;
//! * the pair filter and the non-separation sketch keep `s` independent
//!   size-2 reservoirs sharing one skip heap
//!   ([`qid_sampling::MultiReservoir`]) — each slot ends as an
//!   independent uniform pair, matching the i.i.d.-pairs analysis.
//!
//! Space: `O(r·m)` / `O(s·m)` values; update cost is dominated by the
//! reservoirs' `O(capacity · log(n/capacity))` accepted items.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{Dataset, DatasetBuilder, DatasetError, TupleSource, Value};
use qid_sampling::reservoir::{MultiReservoir, SkipReservoir};

use crate::filter::{FilterParams, PairSampleFilter, TupleSampleFilter};
use crate::sketch::{NonSeparationSketch, SketchParams};

/// Builds the tuple filter (Algorithm 1) in one pass.
///
/// Returns an error if the stream itself errors; short streams simply
/// yield a smaller (complete) sample.
pub fn tuple_filter_from_stream(
    source: &mut dyn TupleSource,
    params: FilterParams,
    seed: u64,
) -> Result<TupleSampleFilter, DatasetError> {
    let m = source.n_attrs();
    let r = params.tuple_sample_size(m).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: SkipReservoir<Vec<Value>> = SkipReservoir::new(r);
    while let Some(tuple) = source.next_tuple()? {
        reservoir.push(tuple, &mut rng);
    }
    let mut b = DatasetBuilder::new(source.attr_names());
    for tuple in reservoir.into_items() {
        b.push_row(tuple)?;
    }
    Ok(TupleSampleFilter::from_sample(b.finish(), params))
}

/// Builds the Motwani–Xu pair filter in one pass.
///
/// Each of the `s` slots is an independent 2-reservoir, so the stored
/// pairs are i.i.d. uniform unordered pairs of stream tuples. Streams
/// with fewer than 2 tuples produce an error (no pairs exist).
pub fn pair_filter_from_stream(
    source: &mut dyn TupleSource,
    params: FilterParams,
    seed: u64,
) -> Result<PairSampleFilter, DatasetError> {
    let m = source.n_attrs();
    let s = params.pair_sample_size(m).max(1);
    let (slots, _n) = collect_pair_slots(source, s, seed)?;
    let pairs = pair_slots_to_dataset(source.attr_names(), slots)?;
    Ok(PairSampleFilter::from_pair_rows(pairs, params))
}

/// Builds the non-separation sketch in one pass.
pub fn sketch_from_stream(
    source: &mut dyn TupleSource,
    params: SketchParams,
    seed: u64,
) -> Result<NonSeparationSketch, DatasetError> {
    let m = source.n_attrs();
    let s = params.pair_sample_size(m).max(1);
    let (slots, n) = collect_pair_slots(source, s, seed)?;
    let pairs = pair_slots_to_dataset(source.attr_names(), slots)?;
    Ok(NonSeparationSketch::from_pair_rows(pairs, n, params))
}

/// One reservoir slot: (up to) two owned tuples.
type PairSlot = Vec<Vec<Value>>;

/// Runs the multi-slot pair reservoir over the stream; returns the
/// filled slots and the stream length.
fn collect_pair_slots(
    source: &mut dyn TupleSource,
    s: usize,
    seed: u64,
) -> Result<(Vec<PairSlot>, usize), DatasetError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mr: MultiReservoir<Vec<Value>> = MultiReservoir::new(s, 2);
    while let Some(tuple) = source.next_tuple()? {
        mr.push(&tuple, &mut rng);
    }
    let n = mr.seen();
    if n < 2 {
        return Err(DatasetError::InvalidSpec(format!(
            "pair sampling needs a stream of at least 2 tuples, got {n}"
        )));
    }
    Ok((mr.into_slots(), n))
}

/// Lays out pair slots as the `2s`-row data set the filters expect
/// (pair `i` at rows `(i, s+i)`).
fn pair_slots_to_dataset(
    names: Vec<String>,
    slots: Vec<PairSlot>,
) -> Result<Dataset, DatasetError> {
    let mut b = DatasetBuilder::new(names);
    for slot in &slots {
        debug_assert_eq!(slot.len(), 2, "slots hold exactly 2 after n >= 2");
        b.push_row(slot[0].clone())?;
    }
    for slot in &slots {
        b.push_row(slot[1].clone())?;
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{AttrId, DatasetTupleSource, VecTupleSource};

    use crate::filter::{FilterDecision, SeparationFilter};
    use crate::sketch::SketchAnswer;

    fn fixture(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(["id", "const", "half"]);
        for i in 0..n {
            b.push_row([
                Value::Int(i as i64),
                Value::Int(0),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    #[test]
    fn streaming_tuple_filter_classifies() {
        let ds = fixture(500);
        let mut src = DatasetTupleSource::new(&ds);
        let f = tuple_filter_from_stream(&mut src, FilterParams::new(0.01), 5).unwrap();
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
        assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
        // m=3, ε=0.01 → 30 samples.
        assert_eq!(f.sample_size(), 30);
    }

    #[test]
    fn streaming_pair_filter_classifies() {
        let ds = fixture(500);
        let mut src = DatasetTupleSource::new(&ds);
        let f = pair_filter_from_stream(&mut src, FilterParams::new(0.01), 5).unwrap();
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
        assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
        assert_eq!(f.sample_size(), 300);
    }

    #[test]
    fn streaming_pairs_are_distinct_rows() {
        // Every pair slot must hold two different stream tuples, so the
        // id attribute separates all of them.
        let ds = fixture(100);
        let mut src = DatasetTupleSource::new(&ds);
        let f = pair_filter_from_stream(&mut src, FilterParams::new(0.05), 1).unwrap();
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
    }

    #[test]
    fn streaming_sketch_estimates() {
        let ds = fixture(400);
        let mut src = DatasetTupleSource::new(&ds);
        let sk = sketch_from_stream(&mut src, SketchParams::new(0.25, 0.1, 2), 7).unwrap();
        // const is fully unseparated: Γ = C(400,2).
        let est = sk.query(&attrs(&[1])).estimate().expect("dense subset");
        let exact = ds.n_pairs() as f64;
        assert!((est - exact).abs() / exact < 0.05, "est {est} vs {exact}");
        // id is a key.
        assert_eq!(sk.query(&attrs(&[0])), SketchAnswer::Small);
    }

    #[test]
    fn short_stream_tuple_filter_degenerates_gracefully() {
        let mut src = VecTupleSource::new(["a"], vec![vec![Value::Int(1)]]);
        let f = tuple_filter_from_stream(&mut src, FilterParams::new(0.5), 0).unwrap();
        assert_eq!(f.sample_size(), 1);
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
    }

    #[test]
    fn short_stream_pair_filter_errors() {
        let mut src = VecTupleSource::new(["a"], vec![vec![Value::Int(1)]]);
        let err = pair_filter_from_stream(&mut src, FilterParams::new(0.5), 0);
        assert!(err.is_err());
    }

    #[test]
    fn streaming_matches_materialised_distribution() {
        // Not a distribution test per se: check both paths agree on
        // clear-cut classifications across seeds.
        let ds = fixture(300);
        for seed in 0..5 {
            let mut src = DatasetTupleSource::new(&ds);
            let streamed =
                tuple_filter_from_stream(&mut src, FilterParams::new(0.02), seed).unwrap();
            let direct = TupleSampleFilter::build(&ds, FilterParams::new(0.02), seed);
            for a in [vec![0usize], vec![1], vec![2]] {
                let a = attrs(&a);
                assert_eq!(streamed.query(&a), direct.query(&a));
            }
        }
    }
}
