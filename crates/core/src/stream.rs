//! One-pass (streaming) construction of every sketch.
//!
//! The paper: "sampling pairs of tuples can easily be implemented in
//! the streaming model and the space would be proportional to the
//! number of samples." These builders realise that:
//!
//! * the tuple filter keeps a single size-`r` reservoir (Algorithm L) —
//!   a uniform without-replacement sample, exactly what Algorithm 1
//!   requires;
//! * the pair filter and the non-separation sketch keep `s` independent
//!   size-2 reservoirs sharing one skip heap
//!   ([`qid_sampling::MultiReservoir`]) — each slot ends as an
//!   independent uniform pair, matching the i.i.d.-pairs analysis.
//!
//! Space: `O(r·m)` / `O(s·m)` values; update cost is dominated by the
//! reservoirs' `O(capacity · log(n/capacity))` accepted items.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{Dataset, DatasetBuilder, DatasetError, TupleSource, Value};
use qid_sampling::reservoir::{MultiReservoir, SkipReservoir};
pub use qid_sampling::SkipState;

use crate::filter::{FilterParams, PairSampleFilter, TupleSampleFilter};
use crate::sketch::{NonSeparationSketch, SketchParams};

/// The live state of a one-pass tuple-sample build (Algorithm 1's
/// size-`r` reservoir plus its RNG), factored out of
/// [`tuple_filter_from_stream`] so a build can *pause and resume*.
///
/// A cold build is `new` → `push` every tuple → [`to_filter`]. An
/// append-aware consumer clones the ingest (it is cheap: `r·m` values,
/// mostly `Arc` handles), pushes only the new suffix, and finishes —
/// by construction the exact computation a cold rebuild over the whole
/// stream would run, so the resulting filter is bit-identical.
///
/// [`to_filter`]: TupleIngest::to_filter
#[derive(Clone, Debug)]
pub struct TupleIngest {
    names: Vec<String>,
    rng: StdRng,
    reservoir: SkipReservoir<Vec<Value>>,
}

impl TupleIngest {
    /// Starts a tuple-sample build over a stream with the given
    /// attribute names; `params` sizes the reservoir (Θ(m/√ε)).
    pub fn new(names: Vec<String>, params: FilterParams, seed: u64) -> Self {
        let r = params.tuple_sample_size(names.len()).max(1);
        TupleIngest {
            names,
            rng: StdRng::seed_from_u64(seed),
            reservoir: SkipReservoir::new(r),
        }
    }

    /// Offers one tuple; returns `true` if the reservoir retained it.
    pub fn push(&mut self, tuple: Vec<Value>) -> bool {
        self.reservoir.push(tuple, &mut self.rng)
    }

    /// Tuples offered so far (the stream length `n`).
    pub fn rows(&self) -> usize {
        self.reservoir.seen()
    }

    /// Attribute names the build was started with.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Approximate heap bytes the paused build retains: the
    /// reservoir's tuple copies (a second copy of the sample rows)
    /// plus text payloads. Scalars and names are noise. Cache byte
    /// budgets charge this so a parked ingest is not free memory.
    pub fn retained_bytes(&self) -> usize {
        self.reservoir.items().iter().map(|t| tuple_bytes(t)).sum()
    }

    /// Builds the Algorithm 1 filter over the sample retained so far.
    /// Non-consuming: the ingest remains valid for further pushes.
    pub fn to_filter(&self, params: FilterParams) -> Result<TupleSampleFilter, DatasetError> {
        let mut b = DatasetBuilder::new(self.names.clone());
        for tuple in self.reservoir.items() {
            b.push_row(tuple.clone())?;
        }
        Ok(TupleSampleFilter::from_sample(b.finish(), params))
    }

    /// Checkpoints the ingest: reservoir scalars plus the RNG's raw
    /// state. The retained rows are *not* included — they are exactly
    /// the filter's sample in slot order, which callers already
    /// persist; [`TupleIngest::resume`] takes them back alongside this.
    pub fn checkpoint(&self) -> IngestCheckpoint {
        IngestCheckpoint {
            skip: self.reservoir.state(),
            rng: self.rng.state(),
        }
    }

    /// Rebuilds a paused ingest from a checkpoint and the retained
    /// rows (in reservoir slot order). Returns `None` when the pieces
    /// are inconsistent — see [`SkipReservoir::resume`].
    pub fn resume(
        names: Vec<String>,
        checkpoint: IngestCheckpoint,
        items: Vec<Vec<Value>>,
    ) -> Option<Self> {
        let reservoir = SkipReservoir::resume(checkpoint.skip, items)?;
        let rng = StdRng::from_state(checkpoint.rng)?;
        Some(TupleIngest {
            names,
            rng,
            reservoir,
        })
    }
}

/// The serialisable scalar state of a paused [`TupleIngest`]: the
/// Algorithm L skip state and the xoshiro256** RNG words. Everything
/// here round-trips through integers, so persistence cannot perturb
/// the resumed trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestCheckpoint {
    /// Reservoir scalars (capacity, seen, next accept, weight bits).
    pub skip: SkipState,
    /// Raw RNG state ([`StdRng::state`]).
    pub rng: [u64; 4],
}

/// The live state of a one-pass pair-sample build: `s` independent
/// size-2 reservoirs sharing one skip heap, plus the RNG. The pair
/// analogue of [`TupleIngest`], with the same pause/clone/resume
/// contract (minus persistence — the shared heap is rebuilt from
/// scratch on restore paths, which simply costs a full scan there).
#[derive(Clone, Debug)]
pub struct PairIngest {
    names: Vec<String>,
    rng: StdRng,
    mr: MultiReservoir<Vec<Value>>,
}

impl PairIngest {
    /// Starts a pair-sample build with `s` slots over a stream with
    /// the given attribute names.
    pub fn new(names: Vec<String>, s: usize, seed: u64) -> Self {
        PairIngest {
            names,
            rng: StdRng::seed_from_u64(seed),
            mr: MultiReservoir::new(s.max(1), 2),
        }
    }

    /// Offers one tuple to all slots. The tuple is copied only when a
    /// slot retains it.
    pub fn push(&mut self, tuple: &[Value]) {
        self.mr.push_with(|| tuple.to_vec(), &mut self.rng);
    }

    /// Tuples offered so far (the stream length `n`).
    pub fn rows(&self) -> usize {
        self.mr.seen()
    }

    /// Approximate heap bytes the paused build retains: the `2s` pair
    /// tuple copies plus text payloads. The pair analogue of
    /// [`TupleIngest::retained_bytes`].
    pub fn retained_bytes(&self) -> usize {
        self.mr
            .slots()
            .iter()
            .flat_map(|slot| slot.iter())
            .map(|t| tuple_bytes(t))
            .sum()
    }

    /// Lays the slots out as the `2s`-row pair data set the filters
    /// expect (pair `i` at rows `(i, s+i)`). Errors on streams shorter
    /// than 2 tuples — no pairs exist.
    fn to_pair_rows(&self) -> Result<Dataset, DatasetError> {
        let n = self.mr.seen();
        if n < 2 {
            return Err(DatasetError::InvalidSpec(format!(
                "pair sampling needs a stream of at least 2 tuples, got {n}"
            )));
        }
        let mut b = DatasetBuilder::new(self.names.clone());
        for slot in self.mr.slots() {
            debug_assert_eq!(slot.len(), 2, "slots hold exactly 2 after n >= 2");
            b.push_row(slot[0].clone())?;
        }
        for slot in self.mr.slots() {
            b.push_row(slot[1].clone())?;
        }
        Ok(b.finish())
    }

    /// Builds the Motwani–Xu pair filter over the pairs retained so
    /// far. Non-consuming.
    pub fn to_pair_filter(&self, params: FilterParams) -> Result<PairSampleFilter, DatasetError> {
        Ok(PairSampleFilter::from_pair_rows(
            self.to_pair_rows()?,
            params,
        ))
    }

    /// Builds the non-separation sketch (Theorem 2) over the pairs
    /// retained so far. Non-consuming.
    pub fn to_sketch(&self, params: SketchParams) -> Result<NonSeparationSketch, DatasetError> {
        Ok(NonSeparationSketch::from_pair_rows(
            self.to_pair_rows()?,
            self.mr.seen(),
            params,
        ))
    }
}

/// Approximate heap bytes of one retained tuple: the `Vec` spine plus
/// each value's text payload (ints, floats, and nulls are inline;
/// interned strings are counted at full length even when shared —
/// cache accounting prefers a small overestimate to an undercount).
fn tuple_bytes(tuple: &[Value]) -> usize {
    std::mem::size_of::<Vec<Value>>()
        + std::mem::size_of_val(tuple)
        + tuple
            .iter()
            .map(|v| match v {
                Value::Text(s) => s.len(),
                _ => 0,
            })
            .sum::<usize>()
}

/// Builds the tuple filter (Algorithm 1) in one pass.
///
/// Returns an error if the stream itself errors; short streams simply
/// yield a smaller (complete) sample.
pub fn tuple_filter_from_stream(
    source: &mut dyn TupleSource,
    params: FilterParams,
    seed: u64,
) -> Result<TupleSampleFilter, DatasetError> {
    let mut ingest = TupleIngest::new(source.attr_names(), params, seed);
    while let Some(tuple) = source.next_tuple()? {
        ingest.push(tuple);
    }
    ingest.to_filter(params)
}

/// Builds the Motwani–Xu pair filter in one pass.
///
/// Each of the `s` slots is an independent 2-reservoir, so the stored
/// pairs are i.i.d. uniform unordered pairs of stream tuples. Streams
/// with fewer than 2 tuples produce an error (no pairs exist).
pub fn pair_filter_from_stream(
    source: &mut dyn TupleSource,
    params: FilterParams,
    seed: u64,
) -> Result<PairSampleFilter, DatasetError> {
    let s = params.pair_sample_size(source.n_attrs()).max(1);
    let mut ingest = PairIngest::new(source.attr_names(), s, seed);
    while let Some(tuple) = source.next_tuple()? {
        ingest.push(&tuple);
    }
    ingest.to_pair_filter(params)
}

/// Builds the non-separation sketch in one pass.
pub fn sketch_from_stream(
    source: &mut dyn TupleSource,
    params: SketchParams,
    seed: u64,
) -> Result<NonSeparationSketch, DatasetError> {
    let s = params.pair_sample_size(source.n_attrs()).max(1);
    let mut ingest = PairIngest::new(source.attr_names(), s, seed);
    while let Some(tuple) = source.next_tuple()? {
        ingest.push(&tuple);
    }
    ingest.to_sketch(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{AttrId, DatasetTupleSource, VecTupleSource};

    use crate::filter::{FilterDecision, SeparationFilter};
    use crate::sketch::SketchAnswer;

    fn fixture(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(["id", "const", "half"]);
        for i in 0..n {
            b.push_row([
                Value::Int(i as i64),
                Value::Int(0),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    #[test]
    fn streaming_tuple_filter_classifies() {
        let ds = fixture(500);
        let mut src = DatasetTupleSource::new(&ds);
        let f = tuple_filter_from_stream(&mut src, FilterParams::new(0.01), 5).unwrap();
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
        assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
        // m=3, ε=0.01 → 30 samples.
        assert_eq!(f.sample_size(), 30);
    }

    #[test]
    fn streaming_pair_filter_classifies() {
        let ds = fixture(500);
        let mut src = DatasetTupleSource::new(&ds);
        let f = pair_filter_from_stream(&mut src, FilterParams::new(0.01), 5).unwrap();
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
        assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
        assert_eq!(f.sample_size(), 300);
    }

    #[test]
    fn streaming_pairs_are_distinct_rows() {
        // Every pair slot must hold two different stream tuples, so the
        // id attribute separates all of them.
        let ds = fixture(100);
        let mut src = DatasetTupleSource::new(&ds);
        let f = pair_filter_from_stream(&mut src, FilterParams::new(0.05), 1).unwrap();
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
    }

    #[test]
    fn streaming_sketch_estimates() {
        let ds = fixture(400);
        let mut src = DatasetTupleSource::new(&ds);
        let sk = sketch_from_stream(&mut src, SketchParams::new(0.25, 0.1, 2), 7).unwrap();
        // const is fully unseparated: Γ = C(400,2).
        let est = sk.query(&attrs(&[1])).estimate().expect("dense subset");
        let exact = ds.n_pairs() as f64;
        assert!((est - exact).abs() / exact < 0.05, "est {est} vs {exact}");
        // id is a key.
        assert_eq!(sk.query(&attrs(&[0])), SketchAnswer::Small);
    }

    #[test]
    fn short_stream_tuple_filter_degenerates_gracefully() {
        let mut src = VecTupleSource::new(["a"], vec![vec![Value::Int(1)]]);
        let f = tuple_filter_from_stream(&mut src, FilterParams::new(0.5), 0).unwrap();
        assert_eq!(f.sample_size(), 1);
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
    }

    #[test]
    fn short_stream_pair_filter_errors() {
        let mut src = VecTupleSource::new(["a"], vec![vec![Value::Int(1)]]);
        let err = pair_filter_from_stream(&mut src, FilterParams::new(0.5), 0);
        assert!(err.is_err());
    }

    #[test]
    fn streaming_matches_materialised_distribution() {
        // Not a distribution test per se: check both paths agree on
        // clear-cut classifications across seeds.
        let ds = fixture(300);
        for seed in 0..5 {
            let mut src = DatasetTupleSource::new(&ds);
            let streamed =
                tuple_filter_from_stream(&mut src, FilterParams::new(0.02), seed).unwrap();
            let direct = TupleSampleFilter::build(&ds, FilterParams::new(0.02), seed);
            for a in [vec![0usize], vec![1], vec![2]] {
                let a = attrs(&a);
                assert_eq!(streamed.query(&a), direct.query(&a));
            }
        }
    }
}
