//! Exact ground truth for separation queries.

use qid_dataset::{AttrId, Dataset};

use crate::filter::FilterDecision;
use crate::separation::{separated_pairs, unseparated_pairs};

/// The exact classification of an attribute subset at a given `ε`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleClass {
    /// Separates all pairs — the filter **must** accept.
    Key,
    /// Separates fewer than `(1−ε)·C(n,2)` pairs — the filter **must**
    /// reject.
    Bad,
    /// In between — both answers are correct.
    Intermediate,
}

/// Computes exact separation statistics by full partitioning —
/// `O(|A|·n log n)` per query. Used for testing, agreement measurement,
/// and as the degenerate "filter" when a sample would exceed the data.
#[derive(Clone, Copy, Debug)]
pub struct ExactOracle<'a> {
    ds: &'a Dataset,
}

impl<'a> ExactOracle<'a> {
    /// Wraps a data set.
    pub fn new(ds: &'a Dataset) -> Self {
        ExactOracle { ds }
    }

    /// The exact number of pairs `attrs` fails to separate (`Γ_A`).
    pub fn unseparated(&self, attrs: &[AttrId]) -> u128 {
        unseparated_pairs(self.ds, attrs)
    }

    /// The exact number of pairs `attrs` separates.
    pub fn separated(&self, attrs: &[AttrId]) -> u128 {
        separated_pairs(self.ds, attrs)
    }

    /// The separation ratio in `[0, 1]` (1 when there are < 2 rows).
    pub fn separation_ratio(&self, attrs: &[AttrId]) -> f64 {
        let total = self.ds.n_pairs();
        if total == 0 {
            return 1.0;
        }
        self.separated(attrs) as f64 / total as f64
    }

    /// True iff `attrs` is a key.
    pub fn is_key(&self, attrs: &[AttrId]) -> bool {
        self.unseparated(attrs) == 0
    }

    /// True iff `attrs` is bad at slack `ε`.
    pub fn is_bad(&self, attrs: &[AttrId], eps: f64) -> bool {
        self.unseparated(attrs) as f64 > eps * self.ds.n_pairs() as f64
    }

    /// Classifies `attrs` into the three-way taxonomy of the filter
    /// problem.
    pub fn classify(&self, attrs: &[AttrId], eps: f64) -> OracleClass {
        let unsep = self.unseparated(attrs);
        if unsep == 0 {
            OracleClass::Key
        } else if unsep as f64 > eps * self.ds.n_pairs() as f64 {
            OracleClass::Bad
        } else {
            OracleClass::Intermediate
        }
    }

    /// Is `decision` a *correct* answer for `attrs` under the filter
    /// problem's semantics? (Keys must be accepted, bad sets rejected,
    /// intermediate sets are free.)
    pub fn decision_correct(&self, attrs: &[AttrId], eps: f64, decision: FilterDecision) -> bool {
        match self.classify(attrs, eps) {
            OracleClass::Key => decision == FilterDecision::Accept,
            OracleClass::Bad => decision == FilterDecision::Reject,
            OracleClass::Intermediate => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    fn fixture() -> Dataset {
        // 10 rows: id key, const, 9+1 split.
        let mut b = DatasetBuilder::new(["id", "const", "skew"]);
        for i in 0..10 {
            b.push_row([Value::Int(i), Value::Int(0), Value::Int(i64::from(i == 9))])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn exact_counts() {
        let ds = fixture();
        let o = ExactOracle::new(&ds);
        assert_eq!(o.unseparated(&attrs(&[0])), 0);
        assert_eq!(o.unseparated(&attrs(&[1])), 45);
        // skew: clique of 9 → C(9,2)=36.
        assert_eq!(o.unseparated(&attrs(&[2])), 36);
        assert_eq!(o.separated(&attrs(&[2])), 9);
    }

    #[test]
    fn classification() {
        let ds = fixture();
        let o = ExactOracle::new(&ds);
        assert_eq!(o.classify(&attrs(&[0]), 0.1), OracleClass::Key);
        assert_eq!(o.classify(&attrs(&[1]), 0.1), OracleClass::Bad);
        // skew has ratio 9/45 = 0.2 separated → unsep ratio 0.8: bad at
        // eps=0.5, intermediate at eps=0.9.
        assert_eq!(o.classify(&attrs(&[2]), 0.5), OracleClass::Bad);
        assert_eq!(o.classify(&attrs(&[2]), 0.9), OracleClass::Intermediate);
    }

    #[test]
    fn decision_correctness_semantics() {
        let ds = fixture();
        let o = ExactOracle::new(&ds);
        let eps = 0.1;
        assert!(o.decision_correct(&attrs(&[0]), eps, FilterDecision::Accept));
        assert!(!o.decision_correct(&attrs(&[0]), eps, FilterDecision::Reject));
        assert!(o.decision_correct(&attrs(&[1]), eps, FilterDecision::Reject));
        assert!(!o.decision_correct(&attrs(&[1]), eps, FilterDecision::Accept));
        // Intermediate: anything goes.
        assert!(o.decision_correct(&attrs(&[2]), 0.9, FilterDecision::Accept));
        assert!(o.decision_correct(&attrs(&[2]), 0.9, FilterDecision::Reject));
    }

    #[test]
    fn ratio_bounds() {
        let ds = fixture();
        let o = ExactOracle::new(&ds);
        assert_eq!(o.separation_ratio(&attrs(&[0])), 1.0);
        assert_eq!(o.separation_ratio(&attrs(&[1])), 0.0);
        let r = o.separation_ratio(&attrs(&[2]));
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_row_is_trivially_keyed() {
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(1)]).unwrap();
        let ds = b.finish();
        let o = ExactOracle::new(&ds);
        assert!(o.is_key(&attrs(&[0])));
        assert_eq!(o.separation_ratio(&attrs(&[0])), 1.0);
        assert_eq!(o.classify(&attrs(&[0]), 0.5), OracleClass::Key);
    }
}
