//! Non-separation estimation (the paper's Theorem 2 and Section 3).
//!
//! Given parameters `(α, ε, k)`, a sketch must answer, for **every**
//! attribute subset `A` with `|A| ≤ k`: if `Γ_A ≥ α·C(n,2)` return an
//! estimate `Γ̂_A ∈ (1±ε)·Γ_A`, otherwise it may answer "small".
//!
//! * [`NonSeparationSketch`] — the upper bound: `Θ(k log m / (α ε²))`
//!   uniformly sampled pairs (Section 3.1).
//! * [`hard_instance`] — the Section 3.2 lower-bound construction (the
//!   Index-matrix data set and the exact `Γ_A` formula of Lemma 6),
//!   used to stress-test the sketch at its information-theoretic limit.
//! * [`DistinctSketch`] — a KMV distinct-count sketch, the streaming
//!   companion that lets a resident service answer per-column
//!   cardinality queries without materialising the data.

pub mod distinct;
pub mod hard_instance;
mod nonsep;

pub use distinct::DistinctSketch;
pub use hard_instance::{gamma_for_guess, index_matrix_dataset, random_index_matrix};
pub use nonsep::NonSeparationSketch;

/// A sketch's answer to one subset query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SketchAnswer {
    /// `Γ_A` is large enough to matter; here is a `(1±ε)` estimate.
    Estimate(f64),
    /// The subset's non-separation count is below the `α`-threshold.
    Small,
}

impl SketchAnswer {
    /// The estimate, if one was produced.
    pub fn estimate(self) -> Option<f64> {
        match self {
            SketchAnswer::Estimate(v) => Some(v),
            SketchAnswer::Small => None,
        }
    }
}

/// Parameters of the non-separation sketch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchParams {
    /// Density threshold: estimates are only promised when
    /// `Γ_A ≥ α·C(n,2)`.
    pub alpha: f64,
    /// Relative accuracy of the estimate.
    pub eps: f64,
    /// Maximum query subset size.
    pub k: usize,
    /// Scales the sample size (the paper's constant `K`).
    pub multiplier: f64,
}

impl SketchParams {
    /// Creates parameters with multiplier 1.
    ///
    /// # Panics
    /// Panics unless `α ∈ (0,1)`, `ε ∈ (0,1)`, `k ≥ 1`.
    pub fn new(alpha: f64, eps: f64, k: usize) -> Self {
        Self::with_multiplier(alpha, eps, k, 1.0)
    }

    /// Creates parameters with an explicit multiplier.
    ///
    /// # Panics
    /// Panics unless `α ∈ (0,1)`, `ε ∈ (0,1)`, `k ≥ 1`,
    /// `multiplier > 0`.
    pub fn with_multiplier(alpha: f64, eps: f64, k: usize, multiplier: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        assert!(k >= 1, "k must be at least 1");
        assert!(
            multiplier > 0.0 && multiplier.is_finite(),
            "multiplier must be positive and finite"
        );
        SketchParams {
            alpha,
            eps,
            k,
            multiplier,
        }
    }

    /// Section 3.1's sample size: `⌈K · k·log m / (α ε²)⌉` pairs (log
    /// clamped below at 1 so tiny schemas still sample).
    pub fn pair_sample_size(&self, m: usize) -> usize {
        let log_m = (m as f64).ln().max(1.0);
        (self.multiplier * self.k as f64 * log_m / (self.alpha * self.eps * self.eps)).ceil()
            as usize
    }

    /// The "small" cut-off on the raw count `D_A` (the paper's
    /// `K·k·log m / (10 ε²)`, i.e. `α·s/10` at sample size `s`).
    pub fn small_threshold(&self, sample_size: usize) -> f64 {
        self.alpha * sample_size as f64 / 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_scales_as_theorem() {
        let p = SketchParams::new(0.25, 0.1, 4);
        let s1 = p.pair_sample_size(100);
        // Doubling k doubles the sample (up to ceil rounding).
        let p2 = SketchParams::new(0.25, 0.1, 8);
        let diff = p2.pair_sample_size(100) as i64 - 2 * s1 as i64;
        assert!(diff.abs() <= 1, "k-scaling off by {diff}");
        // Halving eps quadruples it.
        let p3 = SketchParams::new(0.25, 0.05, 4);
        let ratio = p3.pair_sample_size(100) as f64 / s1 as f64;
        assert!((3.9..4.1).contains(&ratio));
    }

    #[test]
    fn small_threshold_is_alpha_tenth() {
        let p = SketchParams::new(0.2, 0.1, 2);
        assert!((p.small_threshold(1000) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn answer_accessor() {
        assert_eq!(SketchAnswer::Estimate(3.0).estimate(), Some(3.0));
        assert_eq!(SketchAnswer::Small.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_one() {
        let _ = SketchParams::new(1.0, 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        let _ = SketchParams::new(0.5, 0.1, 0);
    }
}
