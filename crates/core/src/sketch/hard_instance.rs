//! The Section 3.2 lower-bound construction.
//!
//! To prove the `Ω(mk·log(1/ε))` sketch-size lower bound the paper
//! embeds an Index-style communication problem into non-separation
//! estimation: Alice holds a `kt × m` bit matrix `C` whose every column
//! has exactly `k` ones; the data set is the `2n × (m+n)` matrix
//! (`n = kt`)
//!
//! ```text
//!       ⎡ C │ I_n ⎤
//!   M = ⎢───┼─────⎥
//!       ⎣ D │  0  ⎦      D = all-ones
//! ```
//!
//! Bob reconstructs a column `c` of `C` by querying
//! `A = {c} ∪ {m+r_1, …, m+r_k}` for guesses `R = {r_1 … r_k}` and
//! reading `Γ_A` off the estimate: with `u` correct guesses, **Lemma 6**
//! gives the exact closed form
//!
//! ```text
//!   Γ_A = (t² − t + 5/2)·k² − (t − 1/2)·k + u² − 3ku .
//! ```
//!
//! This module materialises `M` as a [`Dataset`] and exposes the Lemma 6
//! formula, so tests can verify the paper's combinatorics *exactly* and
//! benches can stress the sketch on its own hard instance.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{Dataset, DatasetBuilder, Value};
use qid_sampling::swor::sample_indices;

/// Draws a random `kt × m` bit matrix in which every column has exactly
/// `k` ones — the distribution `D` of the lower-bound proof. Returned
/// column-major: `matrix[col][row]`.
///
/// # Panics
/// Panics if `k == 0` or `t == 0`.
pub fn random_index_matrix(m: usize, k: usize, t: usize, seed: u64) -> Vec<Vec<bool>> {
    assert!(k > 0 && t > 0, "need k, t >= 1");
    let n = k * t;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let mut col = vec![false; n];
            for one in sample_indices(&mut rng, n, k) {
                col[one] = true;
            }
            col
        })
        .collect()
}

/// Builds the `2n × (m+n)` data set `M` from a column-major bit matrix
/// whose columns each hold exactly `k` ones (`n = rows of C`).
///
/// # Panics
/// Panics if the columns have inconsistent lengths or there are no
/// columns/rows.
pub fn index_matrix_dataset(c_columns: &[Vec<bool>]) -> Dataset {
    assert!(!c_columns.is_empty(), "need at least one column");
    let n = c_columns[0].len();
    assert!(n > 0, "need at least one row");
    assert!(c_columns.iter().all(|c| c.len() == n), "ragged bit matrix");
    let m = c_columns.len();

    let names: Vec<String> = (0..m)
        .map(|j| format!("c{j}"))
        .chain((0..n).map(|r| format!("e{r}")))
        .collect();
    let mut b = DatasetBuilder::new(names);
    // Upper half: [C | I_n].
    #[allow(clippy::needless_range_loop)] // r is simultaneously a row id
    for r in 0..n {
        let mut row: Vec<Value> = Vec::with_capacity(m + n);
        row.extend((0..m).map(|j| Value::Int(i64::from(c_columns[j][r]))));
        row.extend((0..n).map(|e| Value::Int(i64::from(e == r))));
        b.push_row(row).expect("fixed arity");
    }
    // Lower half: [1 | 0].
    for _ in 0..n {
        let mut row: Vec<Value> = Vec::with_capacity(m + n);
        row.extend((0..m).map(|_| Value::Int(1)));
        row.extend((0..n).map(|_| Value::Int(0)));
        b.push_row(row).expect("fixed arity");
    }
    b.finish()
}

/// Lemma 6's exact non-separation count for a guess with `u` correct
/// rows: `Γ_A = (t²−t+5/2)k² − (t−1/2)k + u² − 3ku`.
///
/// # Panics
/// Panics if `u > k`.
pub fn gamma_for_guess(k: usize, t: usize, u: usize) -> u128 {
    assert!(u <= k, "cannot guess more than k rows correctly");
    let (k, t, u) = (k as i128, t as i128, u as i128);
    // Multiply the paper's half-integer coefficients by 2 to stay in
    // integers: 2Γ = (2t²−2t+5)k² − (2t−1)k + 2u² − 6ku.
    let twice = (2 * t * t - 2 * t + 5) * k * k - (2 * t - 1) * k + 2 * u * u - 6 * k * u;
    debug_assert!(
        twice >= 0 && twice % 2 == 0,
        "Lemma 6 must yield an integer"
    );
    (twice / 2) as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::AttrId;

    use crate::separation::unseparated_pairs;

    /// Exhaustively verify Lemma 6: for every column and every guess
    /// size, the dataset's true Γ_A equals the closed form.
    #[test]
    fn lemma6_exact_formula_holds() {
        let (m, k, t) = (3usize, 2usize, 3usize);
        let n = k * t;
        let c = random_index_matrix(m, k, t, 42);
        let ds = index_matrix_dataset(&c);
        assert_eq!(ds.n_rows(), 2 * n);
        assert_eq!(ds.n_attrs(), m + n);

        #[allow(clippy::needless_range_loop)] // col doubles as the AttrId payload
        for col in 0..m {
            let ones: Vec<usize> = (0..n).filter(|&r| c[col][r]).collect();
            let zeros: Vec<usize> = (0..n).filter(|&r| !c[col][r]).collect();
            assert_eq!(ones.len(), k);

            // Guess sets with u = 0..=k correct rows.
            for u in 0..=k {
                let mut guess: Vec<usize> = ones[..u].to_vec();
                guess.extend(zeros[..k - u].iter().copied());
                let attrs: Vec<AttrId> = std::iter::once(AttrId::new(col))
                    .chain(guess.iter().map(|&r| AttrId::new(m + r)))
                    .collect();
                let exact = unseparated_pairs(&ds, &attrs);
                let formula = gamma_for_guess(k, t, u);
                assert_eq!(
                    exact, formula,
                    "col {col}, u={u}: dataset {exact} vs Lemma6 {formula}"
                );
            }
        }
    }

    /// The paper's tiny worked example (k=1, t=2) from our derivation.
    #[test]
    fn lemma6_k1_t2() {
        assert_eq!(gamma_for_guess(1, 2, 1), 1);
        assert_eq!(gamma_for_guess(1, 2, 0), 3);
    }

    #[test]
    fn gamma_decreasing_in_u() {
        // Expression is decreasing for u ≤ 3k/2, hence on all of 0..=k.
        for (k, t) in [(2usize, 3usize), (4, 5), (3, 10)] {
            let mut prev = gamma_for_guess(k, t, 0);
            for u in 1..=k {
                let g = gamma_for_guess(k, t, u);
                assert!(g < prev, "Γ must strictly decrease (k={k},t={t},u={u})");
                prev = g;
            }
        }
    }

    #[test]
    fn gamma_gap_separates_good_guesses() {
        // Section 3.2's decoding condition: the u=k value is strictly
        // below the u ≤ 0.9k values with a relative gap the sketch can
        // resolve with eps < 11/(200t²−200t+11).
        let (k, t) = (10usize, 4usize);
        let perfect = gamma_for_guess(k, t, k) as f64;
        let near = gamma_for_guess(k, t, (9 * k) / 10) as f64;
        assert!(near / perfect > 1.0, "gap must exist");
    }

    #[test]
    fn matrix_respects_column_weights() {
        let c = random_index_matrix(5, 3, 4, 7);
        assert_eq!(c.len(), 5);
        for col in &c {
            assert_eq!(col.len(), 12);
            assert_eq!(col.iter().filter(|&&b| b).count(), 3);
        }
    }

    #[test]
    fn identity_block_is_a_key_for_upper_half() {
        let c = random_index_matrix(2, 1, 2, 1);
        let ds = index_matrix_dataset(&c);
        let n = 2;
        // The identity columns together separate all upper-half rows
        // from each other, but not the lower-half rows among themselves.
        let id_attrs: Vec<AttrId> = (0..n).map(|r| AttrId::new(2 + r)).collect();
        let gamma = unseparated_pairs(&ds, &id_attrs);
        // Lower half: n identical-on-A rows → C(n,2) unseparated.
        assert_eq!(gamma, (n as u128) * (n as u128 - 1) / 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = index_matrix_dataset(&[vec![true], vec![true, false]]);
    }
}
