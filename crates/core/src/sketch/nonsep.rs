//! The Section 3.1 sketch: uniform pair sampling.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{AttrId, Dataset};
use qid_sampling::pairs::PairSampler;

use super::{SketchAnswer, SketchParams};

/// Every unordered pair of `0..n` (used when the requested sample
/// covers the whole universe).
fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::with_capacity(n * (n - 1) / 2);
    for j in 1..n {
        for i in 0..j {
            v.push((i, j));
        }
    }
    v
}

/// The non-separation estimation sketch of Theorem 2 (upper bound).
///
/// Stores `s = Θ(k·log m/(α ε²))` i.i.d. uniform tuple pairs. On query
/// `A`, it counts the stored pairs `D_A` that `A` fails to separate:
///
/// * `D_A < α·s/10` → [`SketchAnswer::Small`];
/// * otherwise → `Γ̂_A = D_A · C(n,2)/s`, which is within `(1±ε)·Γ_A`
///   for every `|A| ≤ k` with probability `≥ 1 − m^{−Ω(k)}` (Chernoff +
///   union bound over the `≤ m^{k}+1` subsets).
#[derive(Clone, Debug)]
pub struct NonSeparationSketch {
    /// 2s-row layout; pair `i` is rows `(i, s+i)`.
    pairs: Dataset,
    s: usize,
    /// `C(n,2)` of the source data set (the estimate's scale factor).
    source_pairs: u128,
    params: SketchParams,
}

impl NonSeparationSketch {
    /// Builds the sketch from a materialised data set.
    ///
    /// If the requested sample would exceed the `C(n,2)` pair universe
    /// (tiny data sets, aggressive parameters), every pair is stored
    /// exactly once instead — the sketch degenerates to exact counting
    /// and never exceeds the data in size.
    ///
    /// # Panics
    /// Panics if the data set has fewer than 2 rows.
    pub fn build(ds: &Dataset, params: SketchParams, seed: u64) -> Self {
        assert!(
            ds.n_rows() >= 2,
            "sketch needs at least 2 tuples, got {}",
            ds.n_rows()
        );
        let s = params.pair_sample_size(ds.n_attrs());
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = PairSampler::new(ds.n_rows());
        let drawn = if (s as u128) >= sampler.universe() {
            all_pairs(ds.n_rows())
        } else {
            sampler.with_replacement(&mut rng, s)
        };
        let s = drawn.len();
        let mut rows = Vec::with_capacity(2 * s);
        rows.extend(drawn.iter().map(|&(i, _)| i));
        rows.extend(drawn.iter().map(|&(_, j)| j));
        NonSeparationSketch {
            pairs: ds.gather(&rows),
            s,
            source_pairs: ds.n_pairs(),
            params,
        }
    }

    /// Wraps an already-drawn pair sample laid out as `2s` rows with
    /// pair `i` at rows `(i, s+i)`; `source_rows` is the `n` of the
    /// stream the pairs were drawn from (used by the streaming builder).
    ///
    /// # Panics
    /// Panics if the row count is odd.
    pub fn from_pair_rows(pairs: Dataset, source_rows: usize, params: SketchParams) -> Self {
        assert!(
            pairs.n_rows().is_multiple_of(2),
            "pair layout requires an even row count, got {}",
            pairs.n_rows()
        );
        let s = pairs.n_rows() / 2;
        let n = source_rows as u128;
        NonSeparationSketch {
            pairs,
            s,
            source_pairs: n * n.saturating_sub(1) / 2,
            params,
        }
    }

    /// Number of stored pairs `s`.
    pub fn sample_size(&self) -> usize {
        self.s
    }

    /// The stored pair sample in its `2s`-row layout (pair `i` at rows
    /// `(i, s+i)`) — the sketch's full state besides the parameters,
    /// used to persist and restore it.
    pub fn pairs(&self) -> &Dataset {
        &self.pairs
    }

    /// `C(n,2)` of the source data set — the estimate's scale factor.
    pub fn source_pairs(&self) -> u128 {
        self.source_pairs
    }

    /// The parameters the sketch was built with.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Approximate resident size in bytes.
    pub fn stored_bytes(&self) -> usize {
        self.pairs.code_bytes()
    }

    /// The raw count `D_A`: stored pairs not separated by `attrs`.
    pub fn raw_count(&self, attrs: &[AttrId]) -> usize {
        (0..self.s)
            .filter(|&i| self.pairs.rows_agree_on(i, self.s + i, attrs))
            .count()
    }

    /// Answers one query.
    ///
    /// The guarantee covers `|attrs| ≤ k`; larger subsets are answered
    /// on a best-effort basis (the estimate is still unbiased, only the
    /// for-all union bound weakens).
    pub fn query(&self, attrs: &[AttrId]) -> SketchAnswer {
        let d = self.raw_count(attrs) as f64;
        if d < self.params.small_threshold(self.s) {
            return SketchAnswer::Small;
        }
        SketchAnswer::Estimate(d / self.s as f64 * self.source_pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    use crate::separation::unseparated_pairs;

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    /// id key, constant, and a half/half split.
    fn fixture(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(["id", "const", "half"]);
        for i in 0..n {
            b.push_row([
                Value::Int(i as i64),
                Value::Int(0),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn estimates_dense_subsets_accurately() {
        let ds = fixture(400);
        let params = SketchParams::new(0.25, 0.1, 2);
        let sk = NonSeparationSketch::build(&ds, params, 3);

        // const: Γ = C(400,2), ratio 1 — well above α.
        let exact = unseparated_pairs(&ds, &attrs(&[1])) as f64;
        let est = sk.query(&attrs(&[1])).estimate().expect("dense subset");
        assert!(
            (est - exact).abs() / exact < 0.1,
            "estimate {est} vs exact {exact}"
        );

        // half: Γ ≈ C(n,2)/2 — still dense.
        let exact = unseparated_pairs(&ds, &attrs(&[2])) as f64;
        let est = sk.query(&attrs(&[2])).estimate().expect("dense subset");
        assert!(
            (est - exact).abs() / exact < 0.15,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn keys_answer_small() {
        let ds = fixture(400);
        let sk = NonSeparationSketch::build(&ds, SketchParams::new(0.25, 0.1, 2), 4);
        assert_eq!(sk.query(&attrs(&[0])), SketchAnswer::Small);
        assert_eq!(sk.query(&attrs(&[0, 2])), SketchAnswer::Small);
        assert_eq!(sk.raw_count(&attrs(&[0])), 0);
    }

    #[test]
    fn sample_size_matches_params() {
        let ds = fixture(100);
        let params = SketchParams::new(0.2, 0.2, 3);
        let sk = NonSeparationSketch::build(&ds, params, 0);
        assert_eq!(sk.sample_size(), params.pair_sample_size(3));
        assert_eq!(sk.stored_bytes(), 2 * sk.sample_size() * 3 * 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let ds = fixture(200);
        let p = SketchParams::new(0.25, 0.15, 2);
        let a = NonSeparationSketch::build(&ds, p, 9);
        let b = NonSeparationSketch::build(&ds, p, 9);
        assert_eq!(a.raw_count(&attrs(&[2])), b.raw_count(&attrs(&[2])));
    }

    #[test]
    fn empty_attr_set_counts_everything() {
        let ds = fixture(100);
        let sk = NonSeparationSketch::build(&ds, SketchParams::new(0.25, 0.1, 2), 1);
        // The empty set separates nothing: D = s, estimate = C(n,2).
        assert_eq!(sk.raw_count(&[]), sk.sample_size());
        let est = sk.query(&[]).estimate().unwrap();
        assert!((est - ds.n_pairs() as f64).abs() < 1e-6);
    }

    #[test]
    fn degenerates_to_exact_on_tiny_data() {
        // 10 rows but parameters asking for thousands of pairs: the
        // sketch stores each of the C(10,2) = 45 pairs once and answers
        // exactly.
        let ds = fixture(10);
        let params = SketchParams::new(0.1, 0.05, 3);
        assert!(params.pair_sample_size(3) > 45);
        let sk = NonSeparationSketch::build(&ds, params, 2);
        assert_eq!(sk.sample_size(), 45);
        let exact = unseparated_pairs(&ds, &attrs(&[2])) as f64;
        let est = sk.query(&attrs(&[2])).estimate().unwrap();
        assert!((est - exact).abs() < 1e-9, "exact mode must be exact");
    }

    #[test]
    #[should_panic(expected = "at least 2 tuples")]
    fn rejects_tiny_dataset() {
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(0)]).unwrap();
        let _ = NonSeparationSketch::build(&b.finish(), SketchParams::new(0.5, 0.5, 1), 0);
    }
}
