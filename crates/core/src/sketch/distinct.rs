//! KMV (k-minimum-values) distinct-count sketches for per-column
//! cardinality estimation over a stream.
//!
//! The resident audit service answers `stats` (per-attribute distinct
//! counts) from stream-mode entries without materialising the data:
//! during the one-pass sample build, every column feeds a tiny
//! [`DistinctSketch`]. The sketch keeps the `k` smallest 64-bit hashes
//! of the *distinct* values seen; if fewer than `k` hashes are
//! retained, the count is exact, otherwise the classic KMV estimator
//! `(k−1)·2⁶⁴ / h₍ₖ₎` applies (relative standard error `≈ 1/√(k−2)`,
//! so ~6% at the default `k = 256`). State is `O(k)` per column,
//! independent of `n`, matching the service's `Θ(m/√ε)` memory story.

use std::collections::BTreeSet;

use qid_dataset::Value;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable 64-bit hash of a [`Value`], used by [`DistinctSketch`].
///
/// FNV-1a over a tagged byte encoding (so `Int(1)`, `Float(1.0)` and
/// `Text("1")` hash apart, mirroring value inequality), finished with a
/// SplitMix64 mix for uniform high bits — KMV ranks hashes over the
/// whole `u64` range, which raw FNV's weak diffusion would bias. The
/// function is defined by this code, not by `std`'s unstable
/// `DefaultHasher`, so persisted sketch state stays valid across
/// toolchain upgrades.
pub fn hash_value(v: &Value) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    };
    match v {
        Value::Null => eat(0),
        Value::Int(i) => {
            eat(1);
            i.to_le_bytes().into_iter().for_each(&mut eat);
        }
        Value::Float(f) => {
            eat(2);
            f.0.to_bits().to_le_bytes().into_iter().for_each(&mut eat);
        }
        Value::Text(s) => {
            eat(3);
            s.as_bytes().iter().copied().for_each(&mut eat);
        }
    }
    // SplitMix64 finalizer.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A k-minimum-values distinct-count sketch over [`Value`]s.
///
/// Exact below `k` retained hashes, a `(1 ± O(1/√k))` estimate above.
/// Deterministic: the hash function is fixed, so the same value set
/// always produces the same state and estimate (duplicates never change
/// either).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistinctSketch {
    k: usize,
    /// The `≤ k` smallest distinct hashes seen (a `BTreeSet` gives
    /// dedup, max lookup and ordered extraction in one structure).
    minima: BTreeSet<u64>,
}

impl DistinctSketch {
    /// Creates an empty sketch retaining at most `k` hashes.
    ///
    /// # Panics
    /// Panics if `k < 2` (the estimator needs `k − 1 ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "DistinctSketch needs k >= 2, got {k}");
        DistinctSketch {
            k,
            minima: BTreeSet::new(),
        }
    }

    /// Rebuilds a sketch from previously extracted state (the inverse
    /// of [`DistinctSketch::minima`], used by the registry's disk
    /// tier). Hashes beyond the `k` smallest are dropped, so a
    /// truncated or over-full snapshot still yields a valid sketch.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn from_minima(k: usize, hashes: impl IntoIterator<Item = u64>) -> Self {
        let mut sk = DistinctSketch::new(k);
        for h in hashes {
            sk.observe_hash(h);
        }
        sk
    }

    /// The retention parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Records one value observation.
    pub fn observe(&mut self, v: &Value) {
        self.observe_hash(hash_value(v));
    }

    fn observe_hash(&mut self, h: u64) {
        if self.minima.len() < self.k {
            self.minima.insert(h);
        } else if Some(&h) < self.minima.iter().next_back() && self.minima.insert(h) {
            let &max = self.minima.iter().next_back().expect("non-empty");
            self.minima.remove(&max);
        }
    }

    /// True iff the estimate is an exact distinct count (fewer than `k`
    /// distinct hashes retained, so every distinct value is accounted
    /// for — modulo 64-bit hash collisions).
    pub fn is_exact(&self) -> bool {
        self.minima.len() < self.k
    }

    /// The distinct-count estimate.
    pub fn estimate(&self) -> usize {
        if self.is_exact() {
            return self.minima.len();
        }
        let kth = *self.minima.iter().next_back().expect("k >= 2 retained") as f64;
        if kth <= 0.0 {
            return self.minima.len();
        }
        let est = (self.k as f64 - 1.0) * (u64::MAX as f64 + 1.0) / kth;
        (est.round() as usize).max(self.minima.len())
    }

    /// The retained hashes, smallest first (the sketch's full state,
    /// for persistence).
    pub fn minima(&self) -> impl Iterator<Item = u64> + '_ {
        self.minima.iter().copied()
    }

    /// Approximate resident size in bytes.
    pub fn stored_bytes(&self) -> usize {
        self.minima.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sets_are_exact() {
        let mut sk = DistinctSketch::new(64);
        for i in 0..40i64 {
            sk.observe(&Value::Int(i % 10)); // duplicates don't inflate
        }
        assert!(sk.is_exact());
        assert_eq!(sk.estimate(), 10);
    }

    #[test]
    fn variants_hash_apart() {
        let mut sk = DistinctSketch::new(16);
        sk.observe(&Value::Int(1));
        sk.observe(&Value::float(1.0));
        sk.observe(&Value::text("1"));
        sk.observe(&Value::Null);
        assert_eq!(sk.estimate(), 4);
    }

    #[test]
    fn large_sets_estimate_within_kmv_error() {
        let mut sk = DistinctSketch::new(256);
        let n = 10_000i64;
        for i in 0..n {
            sk.observe(&Value::Int(i));
            sk.observe(&Value::Int(i)); // duplicate stream
        }
        assert!(!sk.is_exact());
        let est = sk.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        // Deterministic draw; 3/√(k−2) ≈ 19% is a generous cap.
        assert!(err < 0.19, "estimate {est} vs {n} (err {err:.3})");
        assert!(sk.estimate() >= 256);
    }

    #[test]
    fn deterministic_and_order_independent() {
        let mut a = DistinctSketch::new(32);
        let mut b = DistinctSketch::new(32);
        for i in 0..500i64 {
            a.observe(&Value::Int(i));
            b.observe(&Value::Int(499 - i));
        }
        assert_eq!(a, b);
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn minima_roundtrip_preserves_state() {
        let mut sk = DistinctSketch::new(32);
        for i in 0..1000i64 {
            sk.observe(&Value::Int(i * 7));
        }
        let back = DistinctSketch::from_minima(32, sk.minima());
        assert_eq!(back, sk);
        assert_eq!(back.estimate(), sk.estimate());
        assert_eq!(sk.stored_bytes(), 32 * 8);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        let _ = DistinctSketch::new(1);
    }
}
