//! Sample-size parameterisation shared by both filters.

/// The paper's Theorem 1 requires `n ≥ K·m/ε` for the guarantee to
/// hold; this is the `K` used by [`FilterParams::guarantee_holds`]
/// (the paper leaves the constant unspecified; 1 matches the regime the
/// evaluation runs in).
pub const GUARANTEE_N_FACTOR: f64 = 1.0;

/// Parameters of an ε-separation key filter.
///
/// `multiplier` scales the Θ(·) sample sizes. The paper's Table 1 uses
/// exactly `m/ε` pairs and `m/√ε` tuples (multiplier 1), which we adopt
/// as the default; raise it for more headroom against the `e^{−m}`
/// failure target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterParams {
    /// The separation slack `ε ∈ (0, 1)`.
    pub eps: f64,
    /// Scales both sample sizes.
    pub multiplier: f64,
}

impl FilterParams {
    /// Creates parameters with the paper's default multiplier 1.
    ///
    /// # Panics
    /// Panics if `eps ∉ (0, 1)`.
    pub fn new(eps: f64) -> Self {
        Self::with_multiplier(eps, 1.0)
    }

    /// Creates parameters with an explicit multiplier.
    ///
    /// # Panics
    /// Panics if `eps ∉ (0, 1)` or `multiplier ≤ 0`.
    pub fn with_multiplier(eps: f64, multiplier: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
        assert!(
            multiplier > 0.0 && multiplier.is_finite(),
            "multiplier must be positive and finite, got {multiplier}"
        );
        FilterParams { eps, multiplier }
    }

    /// Tuple sample size of Algorithm 1: `⌈multiplier · m/√ε⌉`.
    pub fn tuple_sample_size(&self, m: usize) -> usize {
        (self.multiplier * m as f64 / self.eps.sqrt()).ceil() as usize
    }

    /// Pair sample size of the Motwani–Xu filter: `⌈multiplier · m/ε⌉`.
    pub fn pair_sample_size(&self, m: usize) -> usize {
        (self.multiplier * m as f64 / self.eps).ceil() as usize
    }

    /// Theorem 1's regime condition `n ≥ K·m/ε` under which the tuple
    /// filter's analysis applies (Claim 1 needs
    /// `n > r(r−1)/m + r − 1`).
    pub fn guarantee_holds(&self, n: usize, m: usize) -> bool {
        n as f64 >= GUARANTEE_N_FACTOR * m as f64 / self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sample_sizes() {
        // Paper's Table 1 arithmetic: with ε = 0.001, a 13-attribute
        // schema gives 13,000 pairs and ⌈13/√0.001⌉ = 412 ≈ 411 tuples
        // (the paper rounds differently); exactness of the ratio is what
        // matters: pair/tuple = 1/√ε.
        let p = FilterParams::new(0.001);
        assert_eq!(p.pair_sample_size(13), 13_000);
        let t = p.tuple_sample_size(13);
        assert!((411..=412).contains(&t), "tuple size {t}");
        let ratio = p.pair_sample_size(100) as f64 / p.tuple_sample_size(100) as f64;
        assert!((ratio - (1.0 / 0.001f64.sqrt())).abs() < 0.2);
    }

    #[test]
    fn multiplier_scales() {
        let p = FilterParams::with_multiplier(0.01, 2.0);
        assert_eq!(p.tuple_sample_size(10), 200);
        assert_eq!(p.pair_sample_size(10), 2_000);
    }

    #[test]
    fn guarantee_regime() {
        let p = FilterParams::new(0.01);
        assert!(p.guarantee_holds(10_000, 54));
        assert!(!p.guarantee_holds(100, 54));
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn rejects_eps_zero() {
        let _ = FilterParams::new(0.0);
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn rejects_eps_one() {
        let _ = FilterParams::new(1.0);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn rejects_bad_multiplier() {
        let _ = FilterParams::with_multiplier(0.5, 0.0);
    }
}
