//! The Motwani–Xu pair-sampling filter (`Θ(m/ε)` samples) — the
//! baseline this paper improves on.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{AttrId, Dataset};
use qid_sampling::pairs::PairSampler;

use super::{FilterDecision, FilterParams, SeparationFilter};

/// Motwani–Xu (2008): sample `R' = Θ(m/ε)` i.i.d. uniform *pairs* of
/// tuples; reject `A` iff it fails to separate some sampled pair.
///
/// Correctness: a bad `A` separates each uniform pair with probability
/// `< 1−ε`, so it survives all `|R'|` pairs with probability
/// `≤ (1−ε)^{|R'|} ≤ e^{−ε|R'|} = e^{−Θ(m)}`; a union bound over `2^m`
/// subsets gives the for-all guarantee. Query cost `O(|A| · s)` with
/// early exit.
///
/// Storage layout: the `s` sampled pairs are kept as a single gathered
/// mini data set of `2s` rows where pair `i` is rows `(i, s+i)` — codes
/// stay comparable and the query is pure integer compares.
#[derive(Clone, Debug)]
pub struct PairSampleFilter {
    pairs: Dataset,
    s: usize,
    params: FilterParams,
}

impl PairSampleFilter {
    /// Builds the filter by sampling pairs from a materialised data set.
    ///
    /// # Panics
    /// Panics if the data set has fewer than 2 rows (no pairs exist).
    pub fn build(ds: &Dataset, params: FilterParams, seed: u64) -> Self {
        assert!(
            ds.n_rows() >= 2,
            "pair filter needs at least 2 tuples, got {}",
            ds.n_rows()
        );
        let s = params.pair_sample_size(ds.n_attrs());
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = PairSampler::new(ds.n_rows());
        let drawn = sampler.with_replacement(&mut rng, s);
        let mut rows = Vec::with_capacity(2 * s);
        rows.extend(drawn.iter().map(|&(i, _)| i));
        rows.extend(drawn.iter().map(|&(_, j)| j));
        PairSampleFilter {
            pairs: ds.gather(&rows),
            s,
            params,
        }
    }

    /// Wraps an already-drawn pair sample laid out as `2s` rows with
    /// pair `i` at rows `(i, s+i)` (used by the streaming builder).
    ///
    /// # Panics
    /// Panics if the row count is odd.
    pub fn from_pair_rows(pairs: Dataset, params: FilterParams) -> Self {
        assert!(
            pairs.n_rows().is_multiple_of(2),
            "pair layout requires an even row count, got {}",
            pairs.n_rows()
        );
        let s = pairs.n_rows() / 2;
        PairSampleFilter { pairs, s, params }
    }

    /// The parameters used to size the sample.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// The stored pairs as index pairs into [`Self::pair_rows`].
    pub fn n_pairs(&self) -> usize {
        self.s
    }

    /// The underlying `2s`-row mini data set.
    pub fn pair_rows(&self) -> &Dataset {
        &self.pairs
    }
}

impl SeparationFilter for PairSampleFilter {
    fn query(&self, attrs: &[AttrId]) -> FilterDecision {
        if attrs.is_empty() {
            // The empty set separates nothing.
            return if self.s == 0 {
                FilterDecision::Accept
            } else {
                FilterDecision::Reject
            };
        }
        for i in 0..self.s {
            if self.pairs.rows_agree_on(i, self.s + i, attrs) {
                return FilterDecision::Reject;
            }
        }
        FilterDecision::Accept
    }

    fn sample_size(&self) -> usize {
        self.s
    }

    fn stored_bytes(&self) -> usize {
        self.pairs.code_bytes()
    }

    fn name(&self) -> &'static str {
        "pair-sample (Motwani-Xu)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    fn fixture(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(["id", "const", "half"]);
        for i in 0..n {
            b.push_row([
                Value::Int(i as i64),
                Value::Int(0),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn accepts_keys_always() {
        let ds = fixture(300);
        for seed in 0..10 {
            let f = PairSampleFilter::build(&ds, FilterParams::new(0.01), seed);
            assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
            assert_eq!(f.query(&attrs(&[0, 2])), FilterDecision::Accept);
        }
    }

    #[test]
    fn rejects_very_bad_subsets() {
        let ds = fixture(300);
        for seed in 0..10 {
            let f = PairSampleFilter::build(&ds, FilterParams::new(0.01), seed);
            assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
            assert_eq!(f.query(&attrs(&[2])), FilterDecision::Reject);
        }
    }

    #[test]
    fn sample_size_formula() {
        let ds = fixture(100);
        let f = PairSampleFilter::build(&ds, FilterParams::new(0.01), 1);
        // m = 3, ε = 0.01 → 300 pairs, stored as 600 rows.
        assert_eq!(f.sample_size(), 300);
        assert_eq!(f.n_pairs(), 300);
        assert_eq!(f.pair_rows().n_rows(), 600);
        assert_eq!(f.stored_bytes(), 600 * 3 * 4);
    }

    #[test]
    fn pairs_are_distinct_tuples() {
        let ds = fixture(50);
        let f = PairSampleFilter::build(&ds, FilterParams::new(0.05), 9);
        // Every stored pair consists of two different source rows, so the
        // key attribute always separates them.
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
    }

    #[test]
    fn empty_attr_set() {
        let ds = fixture(20);
        let f = PairSampleFilter::build(&ds, FilterParams::new(0.1), 2);
        assert_eq!(f.query(&[]), FilterDecision::Reject);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = fixture(100);
        let a = PairSampleFilter::build(&ds, FilterParams::new(0.05), 5);
        let b = PairSampleFilter::build(&ds, FilterParams::new(0.05), 5);
        assert_eq!(
            a.pair_rows().column(AttrId::new(0)).codes(),
            b.pair_rows().column(AttrId::new(0)).codes()
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 tuples")]
    fn rejects_single_row_dataset() {
        let mut b = DatasetBuilder::new(["a"]);
        b.push_row([Value::Int(1)]).unwrap();
        let ds = b.finish();
        let _ = PairSampleFilter::build(&ds, FilterParams::new(0.1), 0);
    }

    #[test]
    fn name_mentions_mx() {
        let ds = fixture(10);
        let f = PairSampleFilter::build(&ds, FilterParams::new(0.3), 0);
        assert!(f.name().contains("Motwani"));
    }
}
