//! Algorithm 1: the improved tuple-sampling filter (`Θ(m/√ε)` samples).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qid_dataset::{AttrId, Dataset};
use qid_sampling::swor::sample_indices;

use super::{FilterDecision, FilterParams, SeparationFilter};

/// The paper's Algorithm 1: sample `R` = `Θ(m/√ε)` tuples **without
/// replacement**; accept `A` iff `A` separates all `C(|R|, 2)` pairs of
/// samples — i.e. iff no two sampled tuples collide on `A`.
///
/// Correctness (Theorem 1): for every bad `A` the auxiliary graph `G_A`
/// has ≥ `ε·C(n,2)` edges; by the KKT worst-case analysis (Lemma 1) and
/// the birthday problem (Lemma 2), `Θ(m/√ε)` samples hit two vertices
/// of one clique with probability `1 − e^{−Ω(m)}`, and a union bound
/// over all `2^m` subsets gives the *for-all* guarantee.
///
/// Query cost: duplicate detection on the projection of the sample onto
/// `A` — `O(|A| · r log r)` by sorting ([`Self::query`], the paper's
/// accounting) or `O(|A| · r)` expected by hashing
/// ([`Self::query_hashed`]).
#[derive(Clone, Debug)]
pub struct TupleSampleFilter {
    sample: Dataset,
    params: FilterParams,
    requested: usize,
}

impl TupleSampleFilter {
    /// Builds the filter by sampling from a materialised data set.
    ///
    /// If the requested sample exceeds `n`, the whole data set is kept
    /// (the filter degenerates to an exact key checker).
    pub fn build(ds: &Dataset, params: FilterParams, seed: u64) -> Self {
        let requested = params.tuple_sample_size(ds.n_attrs());
        let r = requested.min(ds.n_rows());
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = sample_indices(&mut rng, ds.n_rows(), r);
        TupleSampleFilter {
            sample: ds.gather(&rows),
            params,
            requested,
        }
    }

    /// Wraps an already-drawn sample (used by the streaming builder;
    /// `sample` must be a uniform without-replacement sample for the
    /// guarantee to hold).
    pub fn from_sample(sample: Dataset, params: FilterParams) -> Self {
        let requested = params.tuple_sample_size(sample.n_attrs());
        TupleSampleFilter {
            sample,
            params,
            requested,
        }
    }

    /// The retained sample `R`.
    pub fn sample(&self) -> &Dataset {
        &self.sample
    }

    /// The parameters used to size the sample.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// The sample size the parameters asked for (before clamping to `n`).
    pub fn requested_sample_size(&self) -> usize {
        self.requested
    }

    /// Sort-based query, as accounted in the paper:
    /// `O(|A| · r log r)` comparisons.
    pub fn query_sorted(&self, attrs: &[AttrId]) -> FilterDecision {
        let mut order = Vec::new();
        self.query_sorted_into(attrs, &mut order)
    }

    /// [`Self::query_sorted`] with a caller-provided scratch buffer for
    /// the row-order permutation, so repeated queries (the server's
    /// steady-state `check` path) allocate nothing once `order` has
    /// grown to the sample size. The buffer's contents on entry are
    /// irrelevant; on return it holds the sorted permutation.
    pub fn query_sorted_into(&self, attrs: &[AttrId], order: &mut Vec<u32>) -> FilterDecision {
        let n = self.sample.n_rows();
        if n < 2 {
            return FilterDecision::Accept;
        }
        if attrs.is_empty() {
            // The empty set separates nothing; with ≥ 2 samples it always
            // fails on some pair.
            return FilterDecision::Reject;
        }
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by(|&a, &b| self.sample.cmp_projected(a as usize, b as usize, attrs));
        for w in order.windows(2) {
            if self
                .sample
                .cmp_projected(w[0] as usize, w[1] as usize, attrs)
                .is_eq()
            {
                return FilterDecision::Reject;
            }
        }
        FilterDecision::Accept
    }

    /// Hash-based query: `O(|A| · r)` expected, early exit on the first
    /// collision.
    pub fn query_hashed(&self, attrs: &[AttrId]) -> FilterDecision {
        let n = self.sample.n_rows();
        if n < 2 {
            return FilterDecision::Accept;
        }
        if attrs.is_empty() {
            return FilterDecision::Reject;
        }
        let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(n);
        for row in 0..n {
            let key: Vec<u32> = attrs.iter().map(|&a| self.sample.code(row, a)).collect();
            if !seen.insert(key) {
                return FilterDecision::Reject;
            }
        }
        FilterDecision::Accept
    }
}

impl SeparationFilter for TupleSampleFilter {
    fn query(&self, attrs: &[AttrId]) -> FilterDecision {
        self.query_sorted(attrs)
    }

    fn sample_size(&self) -> usize {
        self.sample.n_rows()
    }

    fn stored_bytes(&self) -> usize {
        self.sample.code_bytes()
    }

    fn name(&self) -> &'static str {
        "tuple-sample (this paper)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    /// n rows; attr 0 = row id (key), attr 1 = constant, attr 2 = two
    /// huge groups (very bad).
    fn fixture(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(["id", "const", "half"]);
        for i in 0..n {
            b.push_row([
                Value::Int(i as i64),
                Value::Int(0),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn accepts_keys_always() {
        // Soundness is deterministic: a key separates every pair of any
        // sample.
        let ds = fixture(500);
        for seed in 0..10 {
            let f = TupleSampleFilter::build(&ds, FilterParams::new(0.01), seed);
            assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
            assert_eq!(f.query(&attrs(&[0, 1])), FilterDecision::Accept);
        }
    }

    #[test]
    fn rejects_very_bad_subsets() {
        let ds = fixture(500);
        for seed in 0..10 {
            let f = TupleSampleFilter::build(&ds, FilterParams::new(0.01), seed);
            assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
            assert_eq!(f.query(&attrs(&[2])), FilterDecision::Reject);
            assert_eq!(f.query(&attrs(&[1, 2])), FilterDecision::Reject);
        }
    }

    #[test]
    fn empty_attr_set_rejected() {
        let ds = fixture(100);
        let f = TupleSampleFilter::build(&ds, FilterParams::new(0.1), 1);
        assert_eq!(f.query(&[]), FilterDecision::Reject);
        assert_eq!(f.query_hashed(&[]), FilterDecision::Reject);
    }

    #[test]
    fn sorted_and_hashed_agree() {
        let ds = fixture(300);
        let f = TupleSampleFilter::build(&ds, FilterParams::new(0.05), 7);
        for subset in [vec![0], vec![1], vec![2], vec![0, 2], vec![1, 2]] {
            let a = attrs(&subset);
            assert_eq!(f.query_sorted(&a), f.query_hashed(&a), "subset {subset:?}");
        }
    }

    #[test]
    fn query_sorted_into_agrees_and_reuses_buffer() {
        let ds = fixture(300);
        let f = TupleSampleFilter::build(&ds, FilterParams::new(0.05), 7);
        let mut order = Vec::new();
        for subset in [vec![0], vec![1], vec![2], vec![0, 2], vec![1, 2]] {
            let a = attrs(&subset);
            assert_eq!(
                f.query_sorted_into(&a, &mut order),
                f.query_sorted(&a),
                "subset {subset:?}"
            );
        }
        // Once grown, the scratch buffer never reallocates.
        let cap = order.capacity();
        for subset in [vec![0], vec![1], vec![0, 2]] {
            f.query_sorted_into(&attrs(&subset), &mut order);
            assert_eq!(order.capacity(), cap);
        }
    }

    #[test]
    fn sample_size_clamped_to_n() {
        let ds = fixture(20);
        let params = FilterParams::new(0.0001); // asks for 3·100 = 300 tuples
        let f = TupleSampleFilter::build(&ds, params, 3);
        assert_eq!(f.sample_size(), 20);
        assert!(f.requested_sample_size() >= 300);
        // Degenerates to exact: accepts the key, rejects the constant.
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
        assert_eq!(f.query(&attrs(&[1])), FilterDecision::Reject);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = fixture(200);
        let a = TupleSampleFilter::build(&ds, FilterParams::new(0.02), 42);
        let b = TupleSampleFilter::build(&ds, FilterParams::new(0.02), 42);
        for r in 0..a.sample_size() {
            assert_eq!(
                a.sample().code(r, AttrId::new(0)),
                b.sample().code(r, AttrId::new(0))
            );
        }
    }

    #[test]
    fn tiny_datasets() {
        let ds = fixture(1);
        let f = TupleSampleFilter::build(&ds, FilterParams::new(0.5), 0);
        assert_eq!(f.query(&attrs(&[1])), FilterDecision::Accept); // < 2 samples
        let empty = DatasetBuilder::new(["a"]).finish();
        let f = TupleSampleFilter::build(&empty, FilterParams::new(0.5), 0);
        assert_eq!(f.query(&attrs(&[0])), FilterDecision::Accept);
    }

    #[test]
    fn trait_metadata() {
        let ds = fixture(100);
        let f = TupleSampleFilter::build(&ds, FilterParams::new(0.04), 0);
        // m=3, eps=0.04 → 3/0.2 = 15 tuples.
        assert_eq!(f.sample_size(), 15);
        assert_eq!(f.stored_bytes(), 15 * 3 * 4);
        assert!(f.name().contains("tuple"));
    }
}
