//! The ε-separation key filter problem (the paper's Theorem 1).
//!
//! A filter takes an attribute subset `A ⊆ [m]` and must **reject** if
//! `A` is bad (separates fewer than `(1−ε)·C(n,2)` pairs) and **accept**
//! if `A` is a key; in between, either answer is correct. Success must
//! hold *for all* `2^m` subsets simultaneously with probability `1−δ`.
//!
//! Two sampling-based filters compete:
//!
//! * [`PairSampleFilter`] — Motwani–Xu (2008): store `Θ(m/ε)` uniform
//!   tuple *pairs*; reject iff some stored pair is unseparated. Query
//!   time `O(|A| · m/ε)`.
//! * [`TupleSampleFilter`] — this paper's Algorithm 1: store `Θ(m/√ε)`
//!   uniform *tuples*; reject iff some two stored tuples collide on `A`.
//!   Query time `O(|A| · (m/√ε) log(m/ε))` by sorting.
//!
//! Both guarantee failure probability `≤ e^−m`; the tuple filter needs
//! quadratically fewer samples in `1/ε` (the paper's main result).

mod pair_filter;
mod params;
mod tuple_filter;

pub use pair_filter::PairSampleFilter;
pub use params::{FilterParams, GUARANTEE_N_FACTOR};
pub use tuple_filter::TupleSampleFilter;

use qid_dataset::AttrId;

/// A filter's verdict on one attribute subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterDecision {
    /// The subset may be a key (it separated every sampled pair).
    Accept,
    /// The subset is (evidence says) bad: an unseparated pair was found.
    Reject,
}

impl FilterDecision {
    /// `true` for [`FilterDecision::Accept`].
    pub fn is_accept(self) -> bool {
        matches!(self, FilterDecision::Accept)
    }
}

/// Common interface of the sampling-based ε-separation key filters.
pub trait SeparationFilter {
    /// Classifies one attribute subset.
    fn query(&self, attrs: &[AttrId]) -> FilterDecision;

    /// Number of *sampled units* held (tuples for the tuple filter,
    /// pairs for the pair filter) — the paper's "S" column in Table 1.
    fn sample_size(&self) -> usize;

    /// Approximate resident sketch size in bytes.
    fn stored_bytes(&self) -> usize;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_helpers() {
        assert!(FilterDecision::Accept.is_accept());
        assert!(!FilterDecision::Reject.is_accept());
        assert_ne!(FilterDecision::Accept, FilterDecision::Reject);
    }
}
