//! The auxiliary-graph view `G_A`.
//!
//! Section 2 of the paper: draw an edge between tuples `x_i, x_j`
//! whenever the attribute set `A` fails to separate them. Because
//! non-separation is transitive, `G_A` is a disjoint union of cliques,
//! so `G_A` is fully described by its **clique-size profile** — the
//! vector `s = (s_1, …)` of group sizes. Every probabilistic statement
//! in the paper is a statement about this profile.

use qid_dataset::{AttrId, Dataset};

use crate::separation::group_sizes;

/// The clique-size profile of an auxiliary graph `G_A`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueProfile {
    /// Clique sizes, descending; singletons included.
    sizes: Vec<usize>,
    /// Total number of vertices `n = Σ sizes`.
    n: usize,
}

impl CliqueProfile {
    /// Builds the profile of `G_attrs` for a data set (exact, sort-based).
    pub fn from_dataset(ds: &Dataset, attrs: &[AttrId]) -> Self {
        Self::from_sizes(group_sizes(ds, attrs))
    }

    /// Builds a profile from raw group sizes.
    ///
    /// # Panics
    /// Panics if any size is zero.
    pub fn from_sizes(mut sizes: Vec<usize>) -> Self {
        assert!(
            sizes.iter().all(|&s| s > 0),
            "clique sizes must be positive"
        );
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let n = sizes.iter().sum();
        CliqueProfile { sizes, n }
    }

    /// Total number of vertices (tuples).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Clique sizes in descending order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of cliques (including singletons).
    pub fn n_cliques(&self) -> usize {
        self.sizes.len()
    }

    /// Number of edges of `G_A` — the pairs `A` fails to separate:
    /// `Γ_A = Σ C(s_i, 2)`.
    pub fn unseparated_pairs(&self) -> u128 {
        self.sizes
            .iter()
            .map(|&s| {
                let s = s as u128;
                s * (s - 1) / 2
            })
            .sum()
    }

    /// Number of pairs `A` separates.
    pub fn separated_pairs(&self) -> u128 {
        self.total_pairs() - self.unseparated_pairs()
    }

    /// `C(n, 2)`.
    pub fn total_pairs(&self) -> u128 {
        let n = self.n as u128;
        n * n.saturating_sub(1) / 2
    }

    /// The separation ratio in `[0, 1]` (1 for keys; by convention 1 for
    /// data sets with fewer than two tuples).
    pub fn separation_ratio(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 1.0;
        }
        self.separated_pairs() as f64 / total as f64
    }

    /// Is the attribute set **bad** — separating fewer than
    /// `(1−ε)·C(n,2)` pairs?
    pub fn is_bad(&self, eps: f64) -> bool {
        (self.unseparated_pairs() as f64) > eps * self.total_pairs() as f64
    }

    /// Is this a key (every pair separated)?
    pub fn is_key(&self) -> bool {
        self.unseparated_pairs() == 0
    }

    /// `Σ s_i²` — the quantity constrained by the paper's worst-case
    /// optimisation (constraint (1): `Σ s_i² ≥ ε n²/4` for bad sets).
    pub fn sum_squares(&self) -> u128 {
        self.sizes.iter().map(|&s| (s as u128) * (s as u128)).sum()
    }

    /// Verifies the paper's derivation "`Γ_A ≥ ε C(n,2)` implies
    /// `Σ s_i² ≥ ε n²/4` for sufficiently large n" for this profile.
    pub fn satisfies_quadratic_constraint(&self, eps: f64) -> bool {
        self.sum_squares() as f64 >= eps * (self.n as f64).powi(2) / 4.0
    }

    /// The probability that a single uniformly sampled vertex lands in a
    /// clique of size ≥ 2 (used by the lower-bound analyses).
    pub fn mass_in_nontrivial_cliques(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let covered: usize = self.sizes.iter().filter(|&&s| s >= 2).sum();
        covered as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    fn profile(sizes: &[usize]) -> CliqueProfile {
        CliqueProfile::from_sizes(sizes.to_vec())
    }

    #[test]
    fn counts_and_ratios() {
        let p = profile(&[3, 2, 1]);
        assert_eq!(p.n(), 6);
        assert_eq!(p.n_cliques(), 3);
        assert_eq!(p.unseparated_pairs(), 3 + 1);
        assert_eq!(p.total_pairs(), 15);
        assert_eq!(p.separated_pairs(), 11);
        assert!((p.separation_ratio() - 11.0 / 15.0).abs() < 1e-12);
        assert_eq!(p.sum_squares(), 9 + 4 + 1);
    }

    #[test]
    fn sizes_sorted_descending() {
        let p = profile(&[1, 5, 3]);
        assert_eq!(p.sizes(), &[5, 3, 1]);
    }

    #[test]
    fn key_profile() {
        let p = profile(&[1, 1, 1, 1]);
        assert!(p.is_key());
        assert!(!p.is_bad(0.0001));
        assert_eq!(p.separation_ratio(), 1.0);
        assert_eq!(p.mass_in_nontrivial_cliques(), 0.0);
    }

    #[test]
    fn badness_threshold() {
        // One clique of 2 in 10 vertices: 1 unseparated of 45 pairs.
        let p = profile(&[2, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(p.is_bad(0.01)); // 1 > 0.45 pairs
        assert!(!p.is_bad(0.05)); // 1 < 2.25 pairs
    }

    #[test]
    fn from_dataset_matches_manual() {
        let mut b = DatasetBuilder::new(["a"]);
        for v in [1, 1, 2, 3, 3, 3] {
            b.push_row([Value::Int(v)]).unwrap();
        }
        let ds = b.finish();
        let p = CliqueProfile::from_dataset(&ds, &[AttrId::new(0)]);
        assert_eq!(p.sizes(), &[3, 2, 1]);
    }

    #[test]
    fn empty_and_single() {
        let p = CliqueProfile::from_sizes(vec![]);
        assert_eq!(p.n(), 0);
        assert!(p.is_key());
        assert_eq!(p.separation_ratio(), 1.0);
        let p = profile(&[1]);
        assert_eq!(p.total_pairs(), 0);
        assert_eq!(p.separation_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = profile(&[2, 0]);
    }

    #[test]
    fn quadratic_constraint_from_badness() {
        // Lemma derivation check: for a clearly bad profile the Σs²
        // constraint holds.
        let p = profile(&[50, 1, 1, 1, 1, 1, 1, 1, 1, 1]); // n=59
        let eps = 0.2;
        assert!(p.is_bad(eps));
        assert!(p.satisfies_quadratic_constraint(eps));
    }

    #[test]
    fn mass_in_nontrivial() {
        let p = profile(&[4, 2, 1, 1, 1, 1]);
        assert!((p.mass_in_nontrivial_cliques() - 0.6).abs() < 1e-12);
    }
}
