//! Masking: suppressing attributes until no small quasi-identifier
//! remains.
//!
//! The companion problem of Motwani–Xu's original paper ("masking and
//! finding quasi-identifiers") and the operational endpoint of the
//! paper's privacy motivation: once the audit finds small ε-separation
//! keys, the publisher must *destroy* them before release. This module
//! implements greedy suppression: repeatedly find the current small
//! quasi-identifier (on a `Θ(m/√ε)` sample, so the loop never touches
//! all `C(n,2)` pairs) and suppress its highest-gain attribute, until
//! every remaining ε-separation key is larger than the adversary's
//! budget.

use qid_dataset::{AttrId, Dataset};

use crate::filter::FilterParams;
use crate::minkey::greedy_refine::GreedyRefineMinKey;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The outcome of a masking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskingPlan {
    /// Attributes to suppress before release, in suppression order.
    pub suppressed: Vec<AttrId>,
    /// Attributes that survive.
    pub released: Vec<AttrId>,
    /// The smallest ε-separation key found among the released
    /// attributes at termination (`None` if none exists — the released
    /// view no longer identifies anyone).
    pub residual_key_size: Option<usize>,
}

/// Greedily suppresses attributes until every ε-separation key of the
/// (sampled) released view has more than `adversary_budget` attributes,
/// or nothing identifying remains.
///
/// Heuristic: at each round run the Proposition 1 greedy on the sample
/// restricted to the released attributes; if the found key fits the
/// adversary's budget, suppress the key's first pick (the single most
/// separating attribute) and repeat. Each round is `O(m²·|R|)`.
///
/// # Panics
/// Panics if `adversary_budget == 0`.
pub fn plan_masking(
    ds: &Dataset,
    params: FilterParams,
    adversary_budget: usize,
    seed: u64,
) -> MaskingPlan {
    assert!(adversary_budget >= 1, "adversary budget must be positive");
    let m = ds.n_attrs();
    let r = params.tuple_sample_size(m).min(ds.n_rows());
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = qid_sampling::swor::sample_indices(&mut rng, ds.n_rows(), r);
    let sample = ds.gather(&rows);

    let mut released: Vec<AttrId> = ds.all_attrs();
    let mut suppressed: Vec<AttrId> = Vec::new();

    loop {
        if released.is_empty() {
            return MaskingPlan {
                suppressed,
                released,
                residual_key_size: None,
            };
        }
        let view = sample.project(&released);
        // Chase *quasi*-keys: an attribute set that separates a
        // (1−ε)-fraction of sampled pairs re-identifies nearly everyone
        // even if it collides somewhere in the sample.
        let result = GreedyRefineMinKey::run_on_sample_with_slack(&view, params.eps);
        if !result.complete {
            // Even all released attributes cannot ε-separate the
            // sample: no quasi-identifier remains at all.
            return MaskingPlan {
                suppressed,
                released,
                residual_key_size: None,
            };
        }
        if result.key_size() > adversary_budget {
            return MaskingPlan {
                suppressed,
                released,
                residual_key_size: Some(result.key_size()),
            };
        }
        // The greedy's first pick is the most separating attribute of
        // the found key — suppress it (translate view index → original).
        let victim_in_view = result.attrs[0];
        let victim = released[victim_in_view.index()];
        released.retain(|&a| a != victim);
        suppressed.push(victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    use crate::minkey::greedy_refine::GreedyRefineMinKey;

    fn fixture() -> Dataset {
        // id is a 1-attribute key; (a, b) is a 2-attribute key; c is
        // weak noise.
        let mut b = DatasetBuilder::new(["id", "a", "b", "c"]);
        for i in 0..64i64 {
            b.push_row([
                Value::Int(i),
                Value::Int(i / 8),
                Value::Int(i % 8),
                Value::Int(i % 2),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn masks_singleton_key_with_budget_one() {
        let ds = fixture();
        let plan = plan_masking(&ds, FilterParams::new(0.01), 1, 3);
        // id must be suppressed (it is a 1-attribute QI); afterwards no
        // single attribute is a key, so budget 1 is satisfied.
        assert!(plan.suppressed.contains(&AttrId::new(0)));
        assert!(plan.residual_key_size.is_none_or(|s| s > 1));
    }

    #[test]
    fn budget_two_removes_pair_keys_too() {
        let ds = fixture();
        let plan = plan_masking(&ds, FilterParams::new(0.01), 2, 3);
        // After suppressing id and one of (a, b), no ≤2-attribute key
        // remains on the sample.
        assert!(plan.suppressed.len() >= 2);
        let view = ds.project(&plan.released);
        let residual = GreedyRefineMinKey::run_on_sample(&view);
        assert!(
            !residual.complete || residual.key_size() > 2,
            "released view still has a small key: {:?}",
            residual.attrs
        );
    }

    #[test]
    fn harmless_data_released_untouched() {
        // Two indistinct attributes: nothing identifies anyone.
        let mut b = DatasetBuilder::new(["x", "y"]);
        for i in 0..32i64 {
            b.push_row([Value::Int(i % 2), Value::Int(i % 2)]).unwrap();
        }
        let ds = b.finish();
        let plan = plan_masking(&ds, FilterParams::new(0.05), 2, 1);
        assert!(plan.suppressed.is_empty());
        assert_eq!(plan.released.len(), 2);
        assert_eq!(plan.residual_key_size, None);
    }

    #[test]
    fn suppress_everything_if_every_attr_identifies() {
        // Every attribute alone is a key.
        let mut b = DatasetBuilder::new(["p", "q"]);
        for i in 0..16i64 {
            b.push_row([Value::Int(i), Value::Int(-i)]).unwrap();
        }
        let ds = b.finish();
        let plan = plan_masking(&ds, FilterParams::new(0.05), 1, 1);
        assert_eq!(plan.suppressed.len(), 2);
        assert!(plan.released.is_empty());
        assert_eq!(plan.residual_key_size, None);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_rejected() {
        let ds = fixture();
        let _ = plan_masking(&ds, FilterParams::new(0.1), 0, 1);
    }
}
