//! Named clique-size profiles from the paper, and feasibility checks.

/// The feasibility region `P` of the paper's worst-case optimisation
/// (Section 2.1, constraints (1)–(3)): `Σ s_i = n`, `Σ s_i² ≥ ε n²/4`,
/// `s_i ≥ 0`.
pub fn is_feasible(profile: &[f64], n: f64, eps: f64) -> bool {
    let sum: f64 = profile.iter().sum();
    let sumsq: f64 = profile.iter().map(|&s| s * s).sum();
    profile.iter().all(|&s| s >= 0.0)
        && (sum - n).abs() <= 1e-9 * n.max(1.0)
        && sumsq + 1e-9 * n.max(1.0) >= eps * n * n / 4.0
}

/// The "equal blocks" profile the paper warns is *not* always optimal:
/// `1/ε′` non-zero entries of value `ε′·n`, with `ε′ = ε/4`.
///
/// Only exactly feasible when `1/ε′` is an integer — the paper rounds
/// `ε` down to a power of `1/4` precisely so that it is.
///
/// # Panics
/// Panics if `ε` is so large that no block fits.
pub fn equal_blocks_profile(n: usize, eps: f64) -> Vec<f64> {
    let eps_p = eps / 4.0;
    let blocks = (1.0 / eps_p).round() as usize;
    assert!(blocks >= 1, "eps too large");
    let value = eps_p * n as f64;
    let mut v = vec![value; blocks];
    v.resize(n, 0.0);
    v
}

/// The profile `s̃` of Eq. (5): one entry `√ε·n/2`, then
/// `(1 − √ε/2)·n` ones, zeros elsewhere — the feasible point used to
/// show the optimum has many non-zero entries.
///
/// The one-count is floored and the big entry absorbs the remainder,
/// so `Σ s_i = n` holds exactly and the big entry is ≥ `√ε·n/2`
/// (keeping constraint (1) satisfied) for any `n`, `ε`.
pub fn tilde_profile(n: usize, eps: f64) -> Vec<f64> {
    let ones = ((1.0 - eps.sqrt() / 2.0) * n as f64).floor() as usize;
    let ones = ones.min(n.saturating_sub(1));
    let big = (n - ones) as f64;
    let mut v = Vec::with_capacity(n);
    v.push(big);
    v.extend(std::iter::repeat_n(1.0, ones));
    v.resize(n, 0.0);
    v
}

/// The Lemma 4 planted profile: one clique of `√(2ε)·n`, singletons
/// elsewhere.
pub fn planted_profile(n: usize, eps: f64) -> Vec<f64> {
    let big = ((2.0 * eps).sqrt() * n as f64).ceil();
    let singles = n as f64 - big;
    assert!(singles >= 0.0, "clique exceeds n");
    let mut v = Vec::with_capacity(n);
    v.push(big);
    v.extend(std::iter::repeat_n(1.0, singles as usize));
    v.resize(n, 0.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_blocks_is_feasible() {
        let n = 400;
        let eps = 1.0 / 16.0; // ε′ = 1/64
        let p = equal_blocks_profile(n, eps);
        assert!(is_feasible(&p, n as f64, eps), "profile {p:?}");
        // Exactly 64 non-zero blocks of 6.25 each.
        assert_eq!(p.iter().filter(|&&x| x > 0.0).count(), 64);
        assert!((p[0] - 6.25).abs() < 1e-12);
    }

    #[test]
    fn tilde_profile_matches_eq5() {
        // The paper's Appendix C.3 example scale: n = 40, ε′ = 1/16
        // means ε = 1/4 in the constraint Σs² ≥ ε n²/4 = ε′n².
        let n = 40;
        let eps = 0.25;
        let p = tilde_profile(n, eps);
        assert!((p[0] - 10.0).abs() < 1e-12); // √ε·n/2 = 0.5·40/2 = 10
        let ones = p.iter().filter(|&&x| (x - 1.0).abs() < 1e-12).count();
        assert_eq!(ones, 30); // (1−√ε/2)·n = 0.75·40 = 30
        assert!(is_feasible(&p, n as f64, eps));
    }

    #[test]
    fn planted_profile_feasible_and_bad() {
        let n = 1000;
        let eps = 0.01;
        let p = planted_profile(n, eps);
        let big = p[0];
        assert!((big - (2.0f64 * eps).sqrt().mul_add(n as f64, 0.0).ceil()).abs() < 1e-9);
        // Total mass n.
        let total: f64 = p.iter().sum();
        assert!((total - n as f64).abs() < 1e-9);
        // Its unseparated pairs exceed ε·C(n,2) (Lemma 4's badness).
        let unsep = big * (big - 1.0) / 2.0;
        assert!(unsep > eps * (n as f64) * (n as f64 - 1.0) / 2.0);
    }

    #[test]
    fn feasibility_rejects_wrong_mass_or_small_sumsq() {
        assert!(!is_feasible(&[1.0, 1.0], 3.0, 0.1)); // wrong sum
                                                      // All-singleton profile: Σs² = n, constraint needs εn²/4 = 25·0.4.
        let p = vec![1.0; 10];
        assert!(!is_feasible(&p, 10.0, 0.9));
        assert!(is_feasible(&p, 10.0, 0.1)); // 10 ≥ 0.1·100/4 = 2.5
        assert!(!is_feasible(&[-1.0, 11.0], 10.0, 0.1)); // negative entry
    }
}
