//! Elementary symmetric polynomials and non-collision probabilities.

/// Computes `e_0(v), …, e_r(v)` — the elementary symmetric polynomials —
/// by the standard `O(|v|·r)` dynamic program
/// `e_j ← e_j + v_i·e_{j−1}`.
///
/// This is the paper's `f_r(s) = Σ_{j_1<…<j_r} s_{j_1}⋯s_{j_r}`.
pub fn elementary_symmetric(values: &[f64], r: usize) -> Vec<f64> {
    let mut e = vec![0.0f64; r + 1];
    e[0] = 1.0;
    for &v in values {
        // Descend so each value is used at most once.
        for j in (1..=r).rev() {
            e[j] += v * e[j - 1];
        }
    }
    e
}

/// Non-collision probabilities for ball colors drawn from the
/// multinomial `D_s` of a clique-size profile `s` (the paper's
/// Section 2.1 notation `P_{r,D_s}(ξ)` and `P_{r,D_s,⋄}(ξ)`).
#[derive(Clone, Debug)]
pub struct NonCollision {
    /// Normalised profile `p_i = s_i/n` (zeros removed).
    probs: Vec<f64>,
    /// `n = Σ s_i`.
    n: f64,
}

impl NonCollision {
    /// Creates the calculator for a profile `s` (entries are clique
    /// sizes; zeros allowed and ignored).
    ///
    /// # Panics
    /// Panics if the profile is empty, has a negative entry, or sums to
    /// zero.
    pub fn new(profile: &[f64]) -> Self {
        assert!(!profile.is_empty(), "profile must be non-empty");
        assert!(
            profile.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "profile entries must be non-negative and finite"
        );
        let n: f64 = profile.iter().sum();
        assert!(n > 0.0, "profile must have positive total mass");
        let probs = profile
            .iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| s / n)
            .collect();
        NonCollision { probs, n }
    }

    /// The total mass `n`.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// `P_{r,D_s}(ξ)` — probability that `r` balls drawn **with
    /// replacement** all have distinct colors:
    /// `r!/n^r · e_r(s) = r! · e_r(p)`.
    pub fn with_replacement(&self, r: usize) -> f64 {
        if r <= 1 {
            return 1.0;
        }
        if r > self.probs.len() {
            return 0.0; // pigeonhole on colors
        }
        let e = elementary_symmetric(&self.probs, r);
        // r!·e_r(p): the running product stays ≤ 1 (it is a probability
        // once all r factors are applied, and partial products of
        // j!·e_r only grow toward it), so accumulate factorial directly.
        let mut result = e[r];
        for j in 1..=r {
            result *= j as f64;
        }
        result.clamp(0.0, 1.0)
    }

    /// `P_{r,D_s,⋄}(ξ)` — non-collision when sampling **without
    /// replacement** from the underlying `n` balls:
    /// `P_⋄ = P_w · Π_{i=0}^{r−1} n/(n−i)`.
    ///
    /// # Panics
    /// Panics if `r > n` (cannot draw that many distinct balls).
    pub fn without_replacement(&self, r: usize) -> f64 {
        if r <= 1 {
            return 1.0;
        }
        assert!(
            (r as f64) <= self.n,
            "cannot draw {r} balls without replacement from n = {}",
            self.n
        );
        let mut factor = 1.0f64;
        for i in 0..r {
            factor *= self.n / (self.n - i as f64);
        }
        (self.with_replacement(r) * factor).clamp(0.0, 1.0)
    }

    /// Claim 1's correction factor `n^r / (n·(n−1)⋯(n−r+1))`, with its
    /// bound `≤ e^{r(r−1)/(n−r+1)}` — exposed so tests can check the
    /// claim numerically.
    pub fn replacement_correction(&self, r: usize) -> f64 {
        let mut factor = 1.0f64;
        for i in 0..r {
            factor *= self.n / (self.n - i as f64);
        }
        factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_e_r(values: &[f64], r: usize) -> f64 {
        // Exponential enumeration — test oracle only.
        fn rec(values: &[f64], r: usize, start: usize) -> f64 {
            if r == 0 {
                return 1.0;
            }
            let mut total = 0.0;
            for i in start..values.len() {
                total += values[i] * rec(values, r - 1, i + 1);
            }
            total
        }
        rec(values, r, 0)
    }

    #[test]
    fn dp_matches_naive_expansion() {
        let vals = [2.0, 0.5, 3.0, 1.0, 4.0];
        let e = elementary_symmetric(&vals, 5);
        #[allow(clippy::needless_range_loop)]
        for r in 0..=5 {
            let naive = naive_e_r(&vals, r);
            assert!(
                (e[r] - naive).abs() < 1e-9 * naive.abs().max(1.0),
                "e_{r}: dp {} vs naive {naive}",
                e[r]
            );
        }
    }

    #[test]
    fn e0_is_one_er_beyond_len_zero() {
        let e = elementary_symmetric(&[1.0, 2.0], 4);
        assert_eq!(e[0], 1.0);
        assert_eq!(e[3], 0.0);
        assert_eq!(e[4], 0.0);
    }

    #[test]
    fn uniform_profile_matches_birthday() {
        // n balls of n distinct colors, uniform: with-replacement
        // non-collision = ∏ (1 − i/n) — the classic birthday formula.
        let n = 365usize;
        let profile = vec![1.0f64; n];
        let nc = NonCollision::new(&profile);
        let p23 = nc.with_replacement(23);
        let exact = qid_sampling::birthday::non_collision_prob_uniform(365, 23);
        assert!(
            (p23 - exact).abs() < 1e-9,
            "symmetric-poly {p23} vs birthday {exact}"
        );
    }

    #[test]
    fn without_replacement_on_distinct_balls_is_one() {
        // All clique sizes 1: sampling distinct balls never collides.
        let nc = NonCollision::new(&vec![1.0; 50]);
        for r in [2usize, 10, 50] {
            let p = nc.without_replacement(r);
            assert!((p - 1.0).abs() < 1e-9, "r={r}: {p}");
        }
    }

    #[test]
    fn one_big_clique_always_collides() {
        let nc = NonCollision::new(&[10.0]);
        assert_eq!(nc.with_replacement(2), 0.0);
    }

    #[test]
    fn two_cliques_hand_computed() {
        // s = (2, 2): n = 4. Two draws with replacement: P(different
        // colors) = 2·(1/2)·(1/2) = 1/2.
        let nc = NonCollision::new(&[2.0, 2.0]);
        assert!((nc.with_replacement(2) - 0.5).abs() < 1e-12);
        // Without replacement: P = 1/2 · (4²/(4·3)) = 2/3. Check by
        // direct count: pick 2 of 4 balls, 4 cross pairs of C(4,2)=6.
        assert!((nc.without_replacement(2) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn claim1_correction_bound() {
        // Claim 1: the correction is ≤ e^{r(r−1)/(n−r+1)}.
        for &(n, r) in &[(100usize, 10usize), (1000, 50), (50, 7)] {
            let nc = NonCollision::new(&vec![1.0; n]);
            let corr = nc.replacement_correction(r);
            let bound = ((r * (r - 1)) as f64 / (n - r + 1) as f64).exp();
            assert!(
                corr <= bound + 1e-9,
                "n={n} r={r}: correction {corr} > bound {bound}"
            );
        }
    }

    #[test]
    fn monotone_decreasing_in_r() {
        let nc = NonCollision::new(&[5.0, 3.0, 2.0, 2.0, 1.0, 1.0]);
        let mut prev = 1.0;
        for r in 2..=6 {
            let p = nc.with_replacement(r);
            assert!(p <= prev + 1e-12, "r={r}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn zeros_in_profile_ignored() {
        let a = NonCollision::new(&[3.0, 0.0, 2.0, 0.0]);
        let b = NonCollision::new(&[3.0, 2.0]);
        assert!((a.with_replacement(2) - b.with_replacement(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn zero_profile_rejected() {
        let _ = NonCollision::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn without_replacement_r_gt_n() {
        let nc = NonCollision::new(&[2.0, 1.0]);
        let _ = nc.without_replacement(4);
    }
}
