//! The paper's analysis, executable.
//!
//! Section 2.1 reduces the tuple filter's correctness to a question
//! about **balls into bins**: sample `r` balls whose colors follow the
//! multinomial `D_s = (s_1/n, …, s_n/n)` of a clique-size profile
//! `s ∈ P` (constraints: `Σ s_i = n`, `Σ s_i² ≥ ε n²/4`, `s ≥ 0`); how
//! large must `r` be so two balls collide w.h.p. *for the worst
//! feasible `s`*?
//!
//! * [`symmetric`] — the non-collision probability is an elementary
//!   symmetric polynomial: `P_{r,D_s}(ξ) = r!/n^r · e_r(s)`; this module
//!   computes `e_r` (O(nr) DP) and the with/without-replacement
//!   probabilities plus Claim 1's ratio bound.
//! * [`profiles`] — the named feasible profiles of the paper (the
//!   equal-blocks profile, the `s̃` profile of Eq. (5), the planted
//!   profile of Lemma 4) and a feasibility checker.
//! * [`kkt`] — Lemma 1 made empirical: a pairwise-transfer local search
//!   ascends `f(s) = e_r(s)` over `P` and reports the number of
//!   distinct non-zero values in the optimum (the lemma proves ≤ 2);
//!   plus the Appendix C.3 counter-example, exactly.

pub mod kkt;
pub mod profiles;
pub mod symmetric;

pub use kkt::{
    best_two_value_profile, c3_example, distinct_nonzero_values, local_search_worst_profile,
    WorstCaseProfile,
};
pub use profiles::{equal_blocks_profile, planted_profile, tilde_profile};
pub use symmetric::NonCollision;
