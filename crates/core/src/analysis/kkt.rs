//! Lemma 1, empirically: searching the worst-case clique profile.
//!
//! Lemma 1 (proved with KKT + LICQ in the paper) says the maximiser of
//! `f(s) = e_r(s)` over the region `P` has **at most two distinct
//! non-zero values**. This module provides:
//!
//! * a pairwise-transfer local search ascending `f` over `P`
//!   ([`local_search_worst_profile`]) whose fixed points can be checked
//!   for the two-value property ([`distinct_nonzero_values`]);
//! * the Appendix C.3 counter-example ([`c3_example`]) showing the
//!   *equal-blocks* profile is **not** optimal — computed exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::profiles::is_feasible;
use super::symmetric::elementary_symmetric;

/// A locally optimal profile found by [`local_search_worst_profile`].
#[derive(Clone, Debug)]
pub struct WorstCaseProfile {
    /// The profile `s` (length `n`, descending).
    pub profile: Vec<f64>,
    /// `f(s) = e_r(s)` at the optimum.
    pub objective: f64,
    /// Number of ascent steps accepted.
    pub steps_accepted: usize,
}

/// Evaluates the paper's objective `f_r(s) = e_r(s)`.
pub fn objective(profile: &[f64], r: usize) -> f64 {
    elementary_symmetric(profile, r)[r]
}

/// Gradient coordinate `∂f/∂s_i = e_{r−1}(s \ {s_i})`, computed for all
/// `i` via polynomial division of the DP table — `O(n·r)` total.
pub fn gradient(profile: &[f64], r: usize) -> Vec<f64> {
    let e = elementary_symmetric(profile, r);
    profile
        .iter()
        .map(|&si| {
            // d_j = e_j(s \ i) satisfies d_j = e_j − s_i·d_{j−1}.
            let mut d_prev = 1.0f64; // d_0
            for ej in e.iter().take(r).skip(1) {
                d_prev = ej - si * d_prev;
            }
            if r == 0 {
                0.0
            } else {
                d_prev // d_{r−1}
            }
        })
        .collect()
}

/// Ascends `f(s) = e_r(s)` over `P` by pairwise mass transfers: pick
/// coordinates `(i, j)` with gradient favouring `i`, move `δ` of mass
/// from `j` to `i` (preserving `Σs = n`), accept if the move stays in
/// `P` and increases `f`. Lemma 1 predicts fixed points with ≤ 2
/// distinct non-zero values.
///
/// Deterministic given `seed`; `iters` bounds the number of proposals.
pub fn local_search_worst_profile(
    n: usize,
    eps: f64,
    r: usize,
    iters: usize,
    seed: u64,
) -> WorstCaseProfile {
    assert!(n >= 2 && r >= 2, "need n, r >= 2");
    let mut rng = StdRng::seed_from_u64(seed);

    // Start from the feasible s̃ of Eq. (5) perturbed a little (starting
    // *on* a suspected optimum would make the search trivial).
    let mut s = super::profiles::tilde_profile(n, eps);
    debug_assert!(is_feasible(&s, n as f64, eps));

    let mut best = objective(&s, r);
    let mut accepted = 0usize;
    for _ in 0..iters {
        let grad = gradient(&s, r);
        // Propose: move mass from a random donor with s_j > 0 toward a
        // random receiver with higher gradient.
        let j = rng.random_range(0..n);
        if s[j] <= 0.0 {
            continue;
        }
        let i = rng.random_range(0..n);
        if i == j || grad[i] <= grad[j] {
            continue;
        }
        // Try a few step sizes, largest first.
        let mut moved = false;
        for frac in [1.0, 0.5, 0.25, 0.1] {
            let delta = s[j] * frac;
            let mut cand = s.clone();
            cand[j] -= delta;
            cand[i] += delta;
            if !is_feasible(&cand, n as f64, eps) {
                continue;
            }
            let val = objective(&cand, r);
            if val > best * (1.0 + 1e-12) {
                s = cand;
                best = val;
                accepted += 1;
                moved = true;
                break;
            }
        }
        let _ = moved;
    }
    s.sort_unstable_by(|a, b| b.partial_cmp(a).expect("profiles are finite"));
    WorstCaseProfile {
        profile: s,
        objective: best,
        steps_accepted: accepted,
    }
}

/// Exhaustively optimises `f(s) = e_r(s)` over the **two-value family**
/// Lemma 1 proves sufficient: profiles with `k_a` entries of value `a`
/// and `k_b` entries of value `b` (either may be the whole support).
///
/// Candidates enumerated:
/// * *interior* optima — by complementary slackness the quadratic
///   constraint is slack there (`μ = 0`), and the unconstrained
///   maximiser on a fixed support is uniform: `k` entries of `n/k`
///   (feasible iff `n²/k ≥ εn²/4`), for every support size `k ≥ r`;
/// * *boundary* optima — both constraints tight: for each pair
///   `(k_a, k_b)` the two equations `k_a·a + k_b·b = n`,
///   `k_a·a² + k_b·b² = εn²/4` determine `a, b` up to a quadratic
///   (both roots are tried).
///
/// Returns the best profile found and its objective. `O(n²·nr)` overall
/// — exact up to floating point, no randomness.
pub fn best_two_value_profile(n: usize, eps: f64, r: usize) -> WorstCaseProfile {
    assert!(n >= 2 && r >= 2, "need n, r >= 2");
    let nf = n as f64;
    let q = eps * nf * nf / 4.0;
    let mut best: Option<(Vec<f64>, f64)> = None;

    let mut consider = |profile: Vec<f64>| {
        if !is_feasible(&profile, nf, eps) {
            return;
        }
        let val = objective(&profile, r);
        if best.as_ref().is_none_or(|(_, b)| val > *b) {
            best = Some((profile, val));
        }
    };

    // Interior candidates: uniform on k entries.
    for k in r..=n {
        let mut v = vec![nf / k as f64; k];
        v.resize(n, 0.0);
        consider(v);
    }

    // Boundary candidates: k_a entries of a, k_b of b, both constraints
    // tight.
    for ka in 1..n {
        for kb in 1..=(n - ka) {
            let (kaf, kbf) = (ka as f64, kb as f64);
            // a²·k_a(k_a+k_b) − 2n·k_a·a + (n² − q·k_b) = 0
            let aa = kaf * (kaf + kbf);
            let bb = -2.0 * nf * kaf;
            let cc = nf * nf - q * kbf;
            let disc = bb * bb - 4.0 * aa * cc;
            if disc < 0.0 {
                continue;
            }
            for sign in [-1.0, 1.0] {
                let a = (-bb + sign * disc.sqrt()) / (2.0 * aa);
                if !(a.is_finite() && a >= 0.0) {
                    continue;
                }
                let b = (nf - kaf * a) / kbf;
                if !(b.is_finite() && b >= 0.0) {
                    continue;
                }
                let mut v = Vec::with_capacity(n);
                v.extend(std::iter::repeat_n(a, ka));
                v.extend(std::iter::repeat_n(b, kb));
                v.resize(n, 0.0);
                consider(v);
            }
        }
    }

    let (mut profile, objective) =
        best.expect("the all-mass-on-r-entries profile is always feasible");
    profile.sort_unstable_by(|x, y| y.partial_cmp(x).expect("finite"));
    WorstCaseProfile {
        profile,
        objective,
        steps_accepted: 0,
    }
}

/// Counts distinct non-zero values in a profile up to relative
/// tolerance `tol` (values within `tol·max` of each other cluster).
pub fn distinct_nonzero_values(profile: &[f64], tol: f64) -> usize {
    let mut vals: Vec<f64> = profile.iter().copied().filter(|&v| v > 1e-12).collect();
    if vals.is_empty() {
        return 0;
    }
    vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    let scale = vals.last().copied().unwrap_or(1.0);
    let mut clusters = 1usize;
    for w in vals.windows(2) {
        if (w[1] - w[0]) > tol * scale {
            clusters += 1;
        }
    }
    clusters
}

/// The Appendix C.3 example, computed exactly: with `n = 40`,
/// `ε′ = 1/4² = 0.0625`, `r = 10`,
///
/// * `s₁` = 16 entries of 2.5 (the equal-blocks profile):
///   `f(s₁) ≈ 76,370,239.25…`
/// * `s₂` = (10, 1×30): `f(s₂) = 173,116,515` — strictly larger,
///
/// so the intuition "the optimum is the uniform profile" is **false**
/// (both are exact in f64: the values are ≪ 2⁵³).
pub fn c3_example() -> (f64, f64) {
    let s1: Vec<f64> = vec![2.5; 16];
    let mut s2: Vec<f64> = vec![10.0];
    s2.extend(std::iter::repeat_n(1.0, 30));
    (objective(&s1, 10), objective(&s2, 10))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c3_values_match_paper() {
        let (f1, f2) = c3_example();
        // Paper: f(s1) ≈ 76370239.25…, f(s2) = 173116515.
        assert!((f1 - 76_370_239.25).abs() < 1.0, "f(s1) = {f1}");
        assert_eq!(f2, 173_116_515.0, "f(s2) = {f2}");
        assert!(f2 > f1, "the equal-blocks profile must lose");
    }

    #[test]
    fn c3_s2_value_by_combinatorics() {
        // e_10(10, 1^30) = C(30,10) + 10·C(30,9).
        fn c(n: u64, k: u64) -> f64 {
            let mut v = 1.0f64;
            for i in 0..k {
                v = v * (n - i) as f64 / (i + 1) as f64;
            }
            v
        }
        let expected = c(30, 10) + 10.0 * c(30, 9);
        assert_eq!(expected, 173_116_515.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let s = [3.0, 1.0, 2.0, 0.5, 1.5];
        let r = 3;
        let g = gradient(&s, r);
        let h = 1e-6;
        for i in 0..s.len() {
            let mut plus = s.to_vec();
            plus[i] += h;
            let fd = (objective(&plus, r) - objective(&s, r)) / h;
            assert!(
                (g[i] - fd).abs() < 1e-3 * fd.abs().max(1.0),
                "∂f/∂s_{i}: analytic {} vs fd {fd}",
                g[i]
            );
        }
    }

    #[test]
    fn gradient_is_symmetric_for_equal_entries() {
        let s = [2.0, 2.0, 1.0];
        let g = gradient(&s, 2);
        assert!((g[0] - g[1]).abs() < 1e-12);
        // ∂e_2/∂s_2 = s_0 + s_1 = 4; ∂e_2/∂s_0 = s_1 + s_2 = 3.
        assert!((g[2] - 4.0).abs() < 1e-12);
        assert!((g[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn local_search_improves_over_equal_blocks() {
        // n = 40, ε = 4·ε′ = 0.25 (so the constraint is Σs² ≥ ε′n²),
        // r = 10 — the C.3 setting. The search must find something at
        // least as good as the equal-blocks profile.
        let n = 40;
        let eps = 0.25;
        let r = 10;
        let eq = super::super::profiles::equal_blocks_profile(n, eps);
        let f_eq = objective(&eq, r);
        let found = local_search_worst_profile(n, eps, r, 3000, 7);
        assert!(
            found.objective >= f_eq,
            "search {} must be ≥ equal-blocks {f_eq}",
            found.objective
        );
        assert!(is_feasible(&found.profile, n as f64, eps));
    }

    #[test]
    fn two_value_family_dominates_local_search() {
        // Lemma 1's operational content: the optimum lives in the
        // two-value family, so the exhaustive two-value search must be
        // at least as good as any fixed point the free-form local
        // search reaches.
        for (n, eps, r, seed) in [
            (30usize, 0.3f64, 6usize, 3u64),
            (40, 0.25, 10, 7),
            (24, 0.5, 4, 1),
        ] {
            let free = local_search_worst_profile(n, eps, r, 4000, seed);
            let two = best_two_value_profile(n, eps, r);
            assert!(
                two.objective >= free.objective * (1.0 - 1e-9),
                "n={n} eps={eps} r={r}: two-value {} < free search {}",
                two.objective,
                free.objective
            );
            assert!(
                distinct_nonzero_values(&two.profile, 1e-9) <= 2,
                "two-value profile must have ≤ 2 distinct values"
            );
        }
    }

    #[test]
    fn two_value_optimum_beats_c3_equal_blocks() {
        // In the C.3 setting the optimum must be ≥ f(s2) = 173,116,515,
        // strictly above the equal-blocks 76,370,239.25.
        let best = best_two_value_profile(40, 0.25, 10);
        let (f_eq, f_s2) = c3_example();
        assert!(best.objective >= f_s2, "{} < {f_s2}", best.objective);
        assert!(best.objective > f_eq);
    }

    #[test]
    fn distinct_value_counter() {
        assert_eq!(distinct_nonzero_values(&[0.0, 0.0], 0.01), 0);
        assert_eq!(distinct_nonzero_values(&[5.0, 5.0, 0.0], 0.01), 1);
        assert_eq!(distinct_nonzero_values(&[5.0, 1.0, 1.0], 0.01), 2);
        assert_eq!(distinct_nonzero_values(&[5.0, 3.0, 1.0], 0.01), 3);
        // Clustering: 5.0 and 5.01 merge at 1% tolerance of max.
        assert_eq!(distinct_nonzero_values(&[5.0, 5.01, 1.0], 0.01), 2);
    }

    #[test]
    fn deterministic_search() {
        let a = local_search_worst_profile(20, 0.2, 4, 500, 11);
        let b = local_search_worst_profile(20, 0.2, 4, 500, 11);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.objective, b.objective);
    }
}
