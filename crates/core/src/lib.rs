//! # qid-core — ε-separation keys, filters, and sketches
//!
//! The primary contribution of Hildebrant, Le, Ta and Vu, *"Towards
//! Better Bounds for Finding Quasi-Identifiers"* (PODS 2023), implemented
//! in full:
//!
//! * [`separation`] — the partition-refinement engine (Appendix B's
//!   lookup table `P` and Algorithm 3) plus exact separation counting.
//! * [`aux_graph`] — the auxiliary graph view `G_A`: every attribute set
//!   induces a partition of the tuples into disjoint cliques; all of the
//!   paper's probabilistic analysis happens on these clique-size
//!   profiles.
//! * [`filter`] — the ε-separation key filter problem (Theorem 1):
//!   the Motwani–Xu pair-sampling filter (`Θ(m/ε)` samples) and this
//!   paper's tuple-sampling filter (`Θ(m/√ε)` samples, Algorithm 1).
//! * [`minkey`] — approximate minimum ε-separation keys (Proposition 1):
//!   greedy set cover via partition refinement in `O(m³/√ε)`, the
//!   Motwani–Xu baseline, exact brute force, and a minimal-key lattice
//!   enumerator as an extension.
//! * [`sketch`] — non-separation estimation (Theorem 2): the
//!   `Θ(k log m/(α ε²))`-pair sketch and the Section 3.2 hard instance.
//! * [`analysis`] — the paper's mathematics, executable: elementary
//!   symmetric polynomials, non-collision probabilities (with/without
//!   replacement, Claim 1), the KKT worst-case profile search (Lemma 1)
//!   and the Appendix C.3 counter-example.
//! * [`oracle`] — exact ground truth for testing and agreement
//!   measurement.
//! * [`stream`] — one-pass (streaming) builders for every sketch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod aux_graph;
pub mod filter;
pub mod masking;
pub mod minkey;
pub mod oracle;
pub mod separation;
pub mod sketch;
pub mod stream;

pub use aux_graph::CliqueProfile;
pub use filter::{
    FilterDecision, FilterParams, PairSampleFilter, SeparationFilter, TupleSampleFilter,
};
pub use masking::{plan_masking, MaskingPlan};
pub use minkey::{GreedyRefineMinKey, MinKeyResult, MxGreedyMinKey};
pub use oracle::ExactOracle;
pub use separation::PartitionIndex;
pub use sketch::{NonSeparationSketch, SketchAnswer, SketchParams};
