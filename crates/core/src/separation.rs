//! The partition-refinement engine.
//!
//! This module implements the machinery of the paper's Appendix B:
//!
//! * the **lookup table** `P ∈ N^{|R|×m}` — `P[k][j]` is the index of
//!   the partition class row `j` falls into when the rows are grouped by
//!   attribute `k` alone (built by sorting each column: `O(m·n log n)`);
//! * **Algorithm 3** — splitting a group of rows by one attribute in
//!   linear time using `P` and an occupied-list `L` (no per-call
//!   allocation proportional to the attribute's cardinality);
//! * exact separation counting: the number of pairs an attribute set
//!   fails to separate, `Γ_A = Σ_i C(c_i, 2)` over the clique sizes
//!   `c_i` of the induced partition.

use qid_dataset::{AttrId, Dataset};

/// Appendix B's lookup table `P`: dense per-attribute partition ids.
///
/// `P[k][j] ∈ {0, …, d_k−1}` where `d_k` is the number of distinct
/// values attribute `k` takes. Ids are *dense* (0-based, contiguous), so
/// scratch arrays sized by `max_partitions` can be reused across calls.
#[derive(Clone, Debug)]
pub struct PartitionIndex {
    /// `table[k][j]` = partition id of row `j` under attribute `k`.
    table: Vec<Vec<u32>>,
    /// `n_parts[k]` = number of distinct partition ids of attribute `k`.
    n_parts: Vec<u32>,
    n_rows: usize,
}

impl PartitionIndex {
    /// Builds the table from a data set — `O(m · n log n)` (one sort per
    /// attribute, exactly as the paper accounts it).
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.n_rows();
        let m = ds.n_attrs();
        let mut table = Vec::with_capacity(m);
        let mut n_parts = Vec::with_capacity(m);
        let mut order: Vec<u32> = (0..n as u32).collect();
        for a in 0..m {
            let col = ds.column(AttrId::new(a));
            let codes = col.codes();
            // Sort row ids by code; assign dense ranks along equal runs.
            order.sort_unstable_by_key(|&r| codes[r as usize]);
            let mut ids = vec![0u32; n];
            let mut next_id = 0u32;
            let mut prev_code: Option<u32> = None;
            for &r in &order {
                let c = codes[r as usize];
                match prev_code {
                    Some(p) if p == c => {}
                    Some(_) => next_id += 1,
                    None => {}
                }
                prev_code = Some(c);
                ids[r as usize] = next_id;
            }
            let parts = if n == 0 { 0 } else { next_id + 1 };
            table.push(ids);
            n_parts.push(parts);
        }
        PartitionIndex {
            table,
            n_parts,
            n_rows: n,
        }
    }

    /// Number of rows indexed.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes indexed.
    pub fn n_attrs(&self) -> usize {
        self.table.len()
    }

    /// The dense partition id of `row` under single attribute `attr`.
    #[inline]
    pub fn partition_id(&self, attr: AttrId, row: usize) -> u32 {
        self.table[attr.index()][row]
    }

    /// Number of distinct partition ids of `attr` (its cardinality).
    pub fn n_partitions(&self, attr: AttrId) -> u32 {
        self.n_parts[attr.index()]
    }
}

/// A reusable scratch buffer for [`Refiner`] group splits, sized once to
/// the maximum partition count so refinement never allocates per call
/// (the occupied-list trick of the paper's Algorithm 3).
#[derive(Clone, Debug)]
pub struct Refiner {
    /// `head[p]` = index into `bucket_rows` where partition p's rows
    /// start accumulating; reset lazily via `occupied`.
    counts: Vec<u32>,
    /// Partition ids touched by the current split (the list `L`).
    occupied: Vec<u32>,
}

impl Refiner {
    /// Creates a refiner able to split by any attribute of `idx`.
    pub fn new(idx: &PartitionIndex) -> Self {
        let max_parts = idx.n_parts.iter().copied().max().unwrap_or(0) as usize;
        Refiner {
            counts: vec![0; max_parts],
            occupied: Vec::with_capacity(64),
        }
    }

    /// The sizes of the sub-groups `group` splits into under `attr`
    /// (Algorithm 3, sizes only — what the greedy gain computation
    /// needs). Runs in `O(|group|)`.
    ///
    /// The returned slice aliases internal scratch; copy it out if it
    /// must outlive the next call.
    pub fn split_sizes(&mut self, idx: &PartitionIndex, attr: AttrId, group: &[u32]) -> &[u32] {
        self.occupied.clear();
        let table = &idx.table[attr.index()];
        for &r in group {
            let p = table[r as usize] as usize;
            if self.counts[p] == 0 {
                self.occupied.push(p as u32);
            }
            self.counts[p] += 1;
        }
        // Move counts into a dense prefix of `occupied` order, resetting
        // scratch as we go.
        // Reuse `occupied` as the output: replace each partition id with
        // its count.
        for slot in &mut self.occupied {
            let p = *slot as usize;
            *slot = self.counts[p];
            self.counts[p] = 0;
        }
        &self.occupied
    }

    /// Splits `group` into sub-groups by `attr` (Algorithm 3, full
    /// materialisation). Sub-groups of size 1 are dropped when
    /// `keep_singletons` is false — singletons are fully separated and
    /// never participate in further refinement.
    pub fn split(
        &mut self,
        idx: &PartitionIndex,
        attr: AttrId,
        group: &[u32],
        keep_singletons: bool,
    ) -> Vec<Vec<u32>> {
        self.occupied.clear();
        let table = &idx.table[attr.index()];
        // Pass 1: counts.
        for &r in group {
            let p = table[r as usize] as usize;
            if self.counts[p] == 0 {
                self.occupied.push(p as u32);
            }
            self.counts[p] += 1;
        }
        // Pass 2: gather rows per occupied partition. The counts array
        // is reused to map partition id → output slot (stored as
        // slot + 1 so 0 still means "unseen"), then reset.
        let mut out: Vec<Vec<u32>> = Vec::with_capacity(self.occupied.len());
        for (slot, &p) in self.occupied.iter().enumerate() {
            out.push(Vec::with_capacity(self.counts[p as usize] as usize));
            self.counts[p as usize] = slot as u32 + 1;
        }
        for &r in group {
            let p = table[r as usize] as usize;
            let slot = (self.counts[p] - 1) as usize;
            out[slot].push(r);
        }
        for &p in &self.occupied {
            self.counts[p as usize] = 0;
        }
        if !keep_singletons {
            out.retain(|g| g.len() > 1);
        }
        out
    }
}

/// Partitions all rows of `ds` by the attribute set `attrs` and returns
/// the group sizes (clique sizes of the auxiliary graph `G_attrs`),
/// **including** singletons.
///
/// Sort-based: `O(|attrs| · n log n)` comparisons, no hashing — this is
/// the ground-truth routine the filters are tested against.
pub fn group_sizes(ds: &Dataset, attrs: &[AttrId]) -> Vec<usize> {
    let n = ds.n_rows();
    if n == 0 {
        return Vec::new();
    }
    if attrs.is_empty() {
        return vec![n];
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| ds.cmp_projected(a as usize, b as usize, attrs));
    let mut sizes = Vec::new();
    let mut run = 1usize;
    for w in order.windows(2) {
        if ds
            .cmp_projected(w[0] as usize, w[1] as usize, attrs)
            .is_eq()
        {
            run += 1;
        } else {
            sizes.push(run);
            run = 1;
        }
    }
    sizes.push(run);
    sizes
}

/// The number of pairs **not** separated by `attrs`:
/// `Γ_A = Σ_i C(c_i, 2)` over the group sizes.
pub fn unseparated_pairs(ds: &Dataset, attrs: &[AttrId]) -> u128 {
    group_sizes(ds, attrs)
        .into_iter()
        .map(|c| {
            let c = c as u128;
            c * (c - 1) / 2
        })
        .sum()
}

/// The number of pairs separated by `attrs`: `C(n,2) − Γ_A`.
pub fn separated_pairs(ds: &Dataset, attrs: &[AttrId]) -> u128 {
    ds.n_pairs() - unseparated_pairs(ds, attrs)
}

/// True iff `attrs` separates **all** pairs (is a key).
pub fn is_key(ds: &Dataset, attrs: &[AttrId]) -> bool {
    unseparated_pairs(ds, attrs) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    /// 6 rows over 3 attributes; attribute "a" splits {0,1,2} / {3,4,5},
    /// "b" splits pairs, "c" is constant.
    fn fixture() -> Dataset {
        let mut b = DatasetBuilder::new(["a", "b", "c"]);
        let rows = [
            (0, 0, 7),
            (0, 0, 7),
            (0, 1, 7),
            (1, 1, 7),
            (1, 2, 7),
            (1, 2, 7),
        ];
        for (x, y, z) in rows {
            b.push_row([Value::Int(x), Value::Int(y), Value::Int(z)])
                .unwrap();
        }
        b.finish()
    }

    fn attrs(ids: &[usize]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId::new(i)).collect()
    }

    #[test]
    fn partition_index_ids_are_dense_and_consistent() {
        let ds = fixture();
        let idx = PartitionIndex::build(&ds);
        assert_eq!(idx.n_rows(), 6);
        assert_eq!(idx.n_attrs(), 3);
        assert_eq!(idx.n_partitions(AttrId::new(0)), 2);
        assert_eq!(idx.n_partitions(AttrId::new(1)), 3);
        assert_eq!(idx.n_partitions(AttrId::new(2)), 1);
        // Rows with equal codes get equal ids; different codes different ids.
        for r1 in 0..6 {
            for r2 in 0..6 {
                for a in 0..3 {
                    let a = AttrId::new(a);
                    assert_eq!(
                        ds.code(r1, a) == ds.code(r2, a),
                        idx.partition_id(a, r1) == idx.partition_id(a, r2)
                    );
                }
            }
        }
        // Dense: ids < n_partitions.
        for a in 0..3 {
            let a = AttrId::new(a);
            for r in 0..6 {
                assert!(idx.partition_id(a, r) < idx.n_partitions(a));
            }
        }
    }

    #[test]
    fn split_sizes_counts_groups() {
        let ds = fixture();
        let idx = PartitionIndex::build(&ds);
        let mut refiner = Refiner::new(&idx);
        let all: Vec<u32> = (0..6).collect();
        let mut sizes = refiner.split_sizes(&idx, AttrId::new(0), &all).to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
        let mut sizes = refiner.split_sizes(&idx, AttrId::new(1), &all).to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 2]);
        let sizes = refiner.split_sizes(&idx, AttrId::new(2), &all).to_vec();
        assert_eq!(sizes, vec![6]);
    }

    #[test]
    fn split_materialises_groups() {
        let ds = fixture();
        let idx = PartitionIndex::build(&ds);
        let mut refiner = Refiner::new(&idx);
        let all: Vec<u32> = (0..6).collect();
        let groups = refiner.split(&idx, AttrId::new(0), &all, true);
        let mut as_sets: Vec<Vec<u32>> = groups;
        as_sets.iter_mut().for_each(|g| g.sort_unstable());
        as_sets.sort();
        assert_eq!(as_sets, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn split_drops_singletons_when_asked() {
        let ds = fixture();
        let idx = PartitionIndex::build(&ds);
        let mut refiner = Refiner::new(&idx);
        // Group {1,2,3}: attribute b has values [0,1,1] → groups {1},{2,3}.
        let groups = refiner.split(&idx, AttrId::new(1), &[1, 2, 3], false);
        assert_eq!(groups.len(), 1);
        let mut g = groups[0].clone();
        g.sort_unstable();
        assert_eq!(g, vec![2, 3]);
        // With singletons kept: two groups.
        let groups = refiner.split(&idx, AttrId::new(1), &[1, 2, 3], true);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn split_twice_reuses_scratch_cleanly() {
        let ds = fixture();
        let idx = PartitionIndex::build(&ds);
        let mut refiner = Refiner::new(&idx);
        let all: Vec<u32> = (0..6).collect();
        let first = refiner.split_sizes(&idx, AttrId::new(1), &all).to_vec();
        let second = refiner.split_sizes(&idx, AttrId::new(1), &all).to_vec();
        assert_eq!(first, second);
    }

    #[test]
    fn group_sizes_matches_manual_count() {
        let ds = fixture();
        let mut s = group_sizes(&ds, &attrs(&[0]));
        s.sort_unstable();
        assert_eq!(s, vec![3, 3]);
        let mut s = group_sizes(&ds, &attrs(&[0, 1]));
        s.sort_unstable();
        assert_eq!(s, vec![1, 1, 2, 2]);
        let s = group_sizes(&ds, &attrs(&[]));
        assert_eq!(s, vec![6]);
        let s = group_sizes(&ds, &attrs(&[2]));
        assert_eq!(s, vec![6]);
    }

    #[test]
    fn unseparated_counts() {
        let ds = fixture();
        // attrs {0}: two cliques of 3 → 2·C(3,2) = 6 unseparated.
        assert_eq!(unseparated_pairs(&ds, &attrs(&[0])), 6);
        // attrs {0,1}: groups [2,1,2,1] → C(2,2)*2 = 2.
        assert_eq!(unseparated_pairs(&ds, &attrs(&[0, 1])), 2);
        // Constant attr: everything unseparated.
        assert_eq!(unseparated_pairs(&ds, &attrs(&[2])), 15);
        assert_eq!(separated_pairs(&ds, &attrs(&[0])), 9);
    }

    #[test]
    fn key_detection() {
        let mut b = DatasetBuilder::new(["id", "c"]);
        for i in 0..5 {
            b.push_row([Value::Int(i), Value::Int(0)]).unwrap();
        }
        let ds = b.finish();
        assert!(is_key(&ds, &attrs(&[0])));
        assert!(!is_key(&ds, &attrs(&[1])));
        assert!(is_key(&ds, &attrs(&[0, 1])));
    }

    #[test]
    fn empty_dataset_edge_cases() {
        let ds = DatasetBuilder::new(["a"]).finish();
        assert!(group_sizes(&ds, &attrs(&[0])).is_empty());
        assert_eq!(unseparated_pairs(&ds, &attrs(&[0])), 0);
        assert!(is_key(&ds, &attrs(&[0])));
        let idx = PartitionIndex::build(&ds);
        assert_eq!(idx.n_partitions(AttrId::new(0)), 0);
    }

    #[test]
    fn duplicate_rows_have_no_key() {
        let mut b = DatasetBuilder::new(["a", "b"]);
        b.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        b.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        let ds = b.finish();
        assert!(!is_key(&ds, &attrs(&[0, 1])));
        assert_eq!(unseparated_pairs(&ds, &attrs(&[0, 1])), 1);
    }
}
