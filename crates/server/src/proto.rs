//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Every request carries a
//! `"cmd"` tag; dataset-touching commands also carry the registry cache
//! key `(path, eps, seed)` so repeated queries hit the same cached
//! sketch. Unknown fields are ignored; missing optional fields take the
//! CLI's defaults, so hand-written `echo '{"cmd":"stats",...}' | nc`
//! sessions work.
//!
//! Two commands are composite: `sketch` queries the registry-cached
//! [`NonSeparationSketch`](qid_core::sketch::NonSeparationSketch)
//! (Theorem 2's Γ-estimates, built with the fixed [`sketch_params`]),
//! and `batch` carries an array of sub-commands answered as an array of
//! responses on one line — one registry resolution per distinct dataset
//! key, so `k` queries cost one lookup plus `k` sample-sized
//! computations.

use qid_core::sketch::SketchParams;

use crate::json::{self, obj, s, Json};

/// Default `eps` when a request omits it (matches the CLI default).
pub const DEFAULT_EPS: f64 = 0.001;
/// Default sampling seed when a request omits it.
pub const DEFAULT_SEED: u64 = 7;
/// Default `max_key_size` for `audit`.
pub const DEFAULT_MAX_KEY_SIZE: usize = 3;
/// Default adversary budget for `mask`.
pub const DEFAULT_BUDGET: usize = 2;
/// Default span count for `trace` when a request omits `last`.
pub const DEFAULT_TRACE_LAST: usize = 50;

/// Density threshold α of the served non-separation sketch: estimates
/// are promised whenever `Γ_A ≥ α·C(n,2)`.
pub const SKETCH_ALPHA: f64 = 0.1;
/// Relative accuracy ε of the served sketch's estimates (`(1±ε)·Γ_A`).
pub const SKETCH_REL_EPS: f64 = 0.1;
/// Maximum query subset size `k` the served sketch's for-all guarantee
/// covers (larger subsets are answered best-effort).
pub const SKETCH_K: usize = 3;

/// The fixed parameters of every served [`sketch`](Request::Sketch)
/// answer. They are part of the protocol contract (the response quotes
/// them back), so a client can reproduce a served answer exactly with
/// `sketch_from_stream(source, sketch_params(), seed)` on the same
/// data and seed.
pub fn sketch_params() -> SketchParams {
    SketchParams::new(SKETCH_ALPHA, SKETCH_REL_EPS, SKETCH_K)
}

/// The registry cache key a request addresses: which file, sampled how.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetRef {
    /// Path of the CSV file, as seen by the **server** process.
    pub path: String,
    /// Separation slack ε of the cached filter.
    pub eps: f64,
    /// Sampling seed of the cached filter.
    pub seed: u64,
}

/// How `load` should materialise the dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Read the whole CSV into memory (exact `stats`, full-data `mask`).
    Memory,
    /// One-pass reservoir build: keep only the `Θ(m/√ε)` sample (plus
    /// per-column distinct-count sketches for `stats`).
    Stream,
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Populate (or touch) the registry entry for a dataset.
    Load {
        /// Cache key.
        ds: DatasetRef,
        /// Materialisation mode.
        mode: LoadMode,
    },
    /// Enumerate minimal quasi-identifiers on the cached sample.
    Audit {
        /// Cache key.
        ds: DatasetRef,
        /// Largest attribute-set size to explore.
        max_key_size: usize,
    },
    /// Find one small ε-separation key (greedy, Proposition 1).
    Key {
        /// Cache key.
        ds: DatasetRef,
    },
    /// Test one attribute set against the cached filter.
    Check {
        /// Cache key.
        ds: DatasetRef,
        /// Attribute names (or indices as strings).
        attrs: Vec<String>,
    },
    /// Query the cached non-separation sketch (Theorem 2): the
    /// Γ-estimate for one attribute set.
    Sketch {
        /// Cache key.
        ds: DatasetRef,
        /// Attribute names (or indices as strings).
        attrs: Vec<String>,
    },
    /// Plan attribute suppression (on the full data when materialised,
    /// on the cached sample otherwise).
    Mask {
        /// Cache key.
        ds: DatasetRef,
        /// Adversary budget: defeat keys of at most this size.
        budget: usize,
    },
    /// Per-attribute cardinalities (exact on a materialised dataset,
    /// KMV estimates on a stream-mode entry).
    Stats {
        /// Cache key.
        ds: DatasetRef,
    },
    /// An array of sub-commands answered as an array, with one registry
    /// resolution per distinct dataset key. `batch` and `shutdown` are
    /// not allowed as sub-commands.
    Batch {
        /// The sub-commands, answered in order.
        requests: Vec<Request>,
    },
    /// Drop a registry entry (resident and persisted) explicitly.
    Unload {
        /// Cache key.
        ds: DatasetRef,
    },
    /// Purge every completed registry entry and every persisted cache
    /// artifact (`unload --all` on the CLI).
    UnloadAll,
    /// Server counters: per-command traffic, cache lifecycle counters,
    /// latency sums and percentiles.
    Metrics,
    /// Stop accepting connections, drain in-flight work, exit.
    Shutdown,
    /// Read the newest request spans from the flight-recorder ring:
    /// up to `last` records, optionally filtered by command name and
    /// minimum total duration.
    Trace {
        /// Maximum spans to return (newest first).
        last: usize,
        /// Only spans for this wire command, when set.
        command: Option<String>,
        /// Only spans whose queue + serve + write total is at least
        /// this many microseconds.
        min_us: u64,
    },
}

impl Request {
    /// The wire name of the command (also the metrics label).
    pub fn command_name(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Audit { .. } => "audit",
            Request::Key { .. } => "key",
            Request::Check { .. } => "check",
            Request::Sketch { .. } => "sketch",
            Request::Mask { .. } => "mask",
            Request::Stats { .. } => "stats",
            Request::Batch { .. } => "batch",
            Request::Unload { .. } | Request::UnloadAll => "unload",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::Trace { .. } => "trace",
        }
    }

    /// The dataset reference the request addresses, when it has one
    /// (registry-level commands do not).
    pub fn dataset(&self) -> Option<&DatasetRef> {
        match self {
            Request::Load { ds, .. }
            | Request::Audit { ds, .. }
            | Request::Key { ds }
            | Request::Check { ds, .. }
            | Request::Sketch { ds, .. }
            | Request::Mask { ds, .. }
            | Request::Stats { ds }
            | Request::Unload { ds } => Some(ds),
            Request::Batch { .. }
            | Request::UnloadAll
            | Request::Metrics
            | Request::Shutdown
            | Request::Trace { .. } => None,
        }
    }

    /// The request as a JSON value (what [`Request::encode`] renders;
    /// also how `batch` nests its sub-commands).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("cmd", s(self.command_name()))];
        let push_ds = |pairs: &mut Vec<(&str, Json)>, ds: &DatasetRef| {
            pairs.push(("path", s(&ds.path)));
            pairs.push(("eps", Json::Num(ds.eps)));
            pairs.push(("seed", json::u64_value(ds.seed)));
        };
        match self {
            Request::Load { ds, mode } => {
                push_ds(&mut pairs, ds);
                pairs.push((
                    "mode",
                    s(match mode {
                        LoadMode::Memory => "memory",
                        LoadMode::Stream => "stream",
                    }),
                ));
            }
            Request::Audit { ds, max_key_size } => {
                push_ds(&mut pairs, ds);
                pairs.push(("max_key_size", Json::Int(*max_key_size as i64)));
            }
            Request::Key { ds } | Request::Stats { ds } | Request::Unload { ds } => {
                push_ds(&mut pairs, ds)
            }
            Request::Check { ds, attrs } | Request::Sketch { ds, attrs } => {
                push_ds(&mut pairs, ds);
                pairs.push(("attrs", Json::Arr(attrs.iter().map(s).collect())));
            }
            Request::Mask { ds, budget } => {
                push_ds(&mut pairs, ds);
                pairs.push(("budget", Json::Int(*budget as i64)));
            }
            Request::Batch { requests } => {
                pairs.push((
                    "requests",
                    Json::Arr(requests.iter().map(Request::to_json).collect()),
                ));
            }
            Request::UnloadAll => pairs.push(("all", Json::Bool(true))),
            Request::Trace {
                last,
                command,
                min_us,
            } => {
                pairs.push(("last", Json::Int(*last as i64)));
                if let Some(command) = command {
                    pairs.push(("command", s(command)));
                }
                pairs.push(("min_us", json::u64_value(*min_us)));
            }
            Request::Metrics | Request::Shutdown => {}
        }
        obj(pairs)
    }

    /// Serialises the request to its one-line wire form (no newline).
    pub fn encode(&self) -> String {
        self.to_json().render()
    }

    /// Parses one request line.
    pub fn decode(line: &str) -> Result<Request, String> {
        Self::from_json(&json::parse(line)?, true)
    }

    /// Builds a request from a parsed JSON value. `allow_composite`
    /// gates `batch`/`shutdown`: sub-commands of a batch may be
    /// neither (a nested batch would allow unbounded amplification, and
    /// a shutdown buried in a batch could not be acknowledged in
    /// order).
    fn from_json(v: &Json, allow_composite: bool) -> Result<Request, String> {
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"cmd\" field")?;
        let ds = |v: &Json| -> Result<DatasetRef, String> {
            let seed = match v.get("seed") {
                None => DEFAULT_SEED,
                // A present-but-invalid seed is an error, not a silent
                // fallback to the default — that would serve a
                // different sample than the one the client asked for.
                Some(x) => x
                    .as_u64_lossless()
                    .ok_or(format!("{cmd}: \"seed\" must be a non-negative integer"))?,
            };
            let eps = match v.get("eps") {
                None => DEFAULT_EPS,
                // Same contract as seed: eps is part of the cache key,
                // so a present-but-invalid value must not silently
                // become the default.
                Some(x) => x
                    .as_f64()
                    .ok_or(format!("{cmd}: \"eps\" must be a number"))?,
            };
            Ok(DatasetRef {
                path: v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or(format!("{cmd} needs a string \"path\" field"))?
                    .to_string(),
                eps,
                seed,
            })
        };
        let str_arr = |field: &str| -> Result<Vec<String>, String> {
            v.get(field)
                .and_then(Json::as_arr)
                .ok_or(format!("{cmd} needs an {field:?} array"))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or(format!("{field} must be strings"))
                })
                .collect()
        };
        match cmd {
            "load" => {
                let mode = match v.get("mode").and_then(Json::as_str) {
                    None | Some("memory") => LoadMode::Memory,
                    Some("stream") => LoadMode::Stream,
                    Some(other) => return Err(format!("unknown load mode {other:?}")),
                };
                Ok(Request::Load { ds: ds(v)?, mode })
            }
            "audit" => Ok(Request::Audit {
                ds: ds(v)?,
                max_key_size: v
                    .get("max_key_size")
                    .and_then(Json::as_usize)
                    .unwrap_or(DEFAULT_MAX_KEY_SIZE),
            }),
            "key" => Ok(Request::Key { ds: ds(v)? }),
            "check" => Ok(Request::Check {
                ds: ds(v)?,
                attrs: str_arr("attrs")?,
            }),
            "sketch" => Ok(Request::Sketch {
                ds: ds(v)?,
                attrs: str_arr("attrs")?,
            }),
            "mask" => Ok(Request::Mask {
                ds: ds(v)?,
                budget: v
                    .get("budget")
                    .and_then(Json::as_usize)
                    .unwrap_or(DEFAULT_BUDGET),
            }),
            "stats" => Ok(Request::Stats { ds: ds(v)? }),
            "batch" if allow_composite => {
                let requests = v
                    .get("requests")
                    .and_then(Json::as_arr)
                    .ok_or("batch needs a \"requests\" array")?
                    .iter()
                    .map(|sub| Request::from_json(sub, false))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Batch { requests })
            }
            // `{"all": true}` purges the whole cache; otherwise the
            // usual dataset key is required (a bare `unload` with
            // neither stays an error).
            "unload" if v.get("all").and_then(Json::as_bool) == Some(true) => {
                Ok(Request::UnloadAll)
            }
            "unload" => Ok(Request::Unload { ds: ds(v)? }),
            "trace" => Ok(Request::Trace {
                last: v
                    .get("last")
                    .and_then(Json::as_usize)
                    .unwrap_or(DEFAULT_TRACE_LAST),
                command: v.get("command").and_then(Json::as_str).map(str::to_string),
                min_us: v.get("min_us").and_then(Json::as_u64).unwrap_or(0),
            }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" if allow_composite => Ok(Request::Shutdown),
            "batch" | "shutdown" => Err(format!("{cmd:?} is not allowed as a batch sub-command")),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// Traffic counters for one command, as reported by `metrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommandStats {
    /// Wire name of the command.
    pub name: String,
    /// Requests handled (including failed ones).
    pub count: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sum of handling latencies, microseconds.
    pub latency_us: u64,
    /// Median handling latency in microseconds, read off the
    /// fixed-size log₂ histogram: the upper edge of the bucket holding
    /// the quantile, so at most 2× the true value — except in the
    /// open-ended top bucket, where latencies beyond ~2.2 minutes all
    /// report its ~4.5-minute edge. The histogram is a two-epoch
    /// sliding window (see `qid_server::metrics::HISTOGRAM_EPOCH`), so
    /// quantiles describe recent traffic, not process history. Zero
    /// when the command has not been seen in the window.
    pub p50_us: u64,
    /// 99th-percentile handling latency, same bucket scheme.
    pub p99_us: u64,
}

/// The full `metrics` payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Registry lookups answered from a resident entry.
    pub cache_hits: u64,
    /// Registry lookups that scanned a source file (cold builds, stale
    /// rebuilds, materialisation upgrades, sketch builds).
    pub cache_misses: u64,
    /// Registry lookups answered by restoring a persisted artifact from
    /// the `--cache-dir` warm tier (no source scan).
    pub cache_disk_hits: u64,
    /// Entries evicted under `--cache-bytes` budget pressure.
    pub cache_evictions: u64,
    /// Rebuilds forced by a source-file mtime/len change.
    pub cache_stale_rebuilds: u64,
    /// Sample-only entries upgraded to a fully materialised dataset
    /// (each upgrade is also counted as a miss — it re-scans).
    pub cache_upgrades: u64,
    /// Grown source files absorbed incrementally: only the appended
    /// suffix was scanned and the resident reservoirs resumed (not a
    /// miss, not a stale rebuild).
    pub cache_append_updates: u64,
    /// Stale or appended entries the `--sweep-ms` background sweeper
    /// refreshed ahead of traffic.
    pub cache_sweep_refreshes: u64,
    /// Current resident bytes across all cached entries (samples,
    /// column sketches, non-separation sketches, materialised codes).
    pub cache_bytes: u64,
    /// Entries currently resident in the registry.
    pub datasets: usize,
    /// Connections accepted since process start (idle poller-held
    /// connections included).
    pub connections: u64,
    /// Request lines rejected for crossing the server's
    /// `--max-line-bytes` cap (answered with `line_too_long`).
    pub rejected_oversize: u64,
    /// Request lines rejected by the per-connection `--max-rps` token
    /// bucket (answered with `rate_limited`, before decoding).
    pub rejected_rate: u64,
    /// Connections turned away at accept time by `--max-conns`
    /// admission control (answered with `too_busy` and closed).
    pub rejected_busy: u64,
    /// Responses whose flush hit a full socket buffer and were parked
    /// with the connection (completed later by the owning poller when
    /// the peer drained; the worker was returned to the pool
    /// immediately).
    pub writes_parked: u64,
    /// Connections currently owned by each poller shard, in shard
    /// order (idle + write-parked; a dispatched connection is briefly
    /// owned by a worker instead). Empty when reported by a pre-shard
    /// server.
    pub poller_connections: Vec<u64>,
    /// Request bytes drained off client sockets since process start —
    /// the server-side cross-check for a load harness's sent-byte
    /// accounting (see `docs/BENCHMARKS.md`).
    pub bytes_read: u64,
    /// Response bytes successfully written back to clients since
    /// process start.
    pub bytes_written: u64,
    /// Seconds since the server started.
    pub uptime_seconds: u64,
    /// Prior lives of this server's cache dir, recovered from the
    /// registry's write-ahead journal at startup. `0` on a first boot
    /// or when the journal is disabled. Lifecycle counters above
    /// resume across those restarts, so rate/delta dashboards see one
    /// continuous series.
    pub restarts: u64,
    /// Journal records replayed at startup to warm this registry
    /// (counters + resident set); `0` when the journal is disabled.
    pub wal_replayed_events: u64,
    /// The server's crate version (`CARGO_PKG_VERSION` at build time).
    pub version: String,
    /// Per-command traffic, in fixed command order.
    pub commands: Vec<CommandStats>,
}

/// One request's span from the flight-recorder ring, as returned by
/// the `trace` command. Timings are microseconds; `queue_us` and
/// `write_us` are shared by every request served in the same poller
/// wake (see `docs/ARCHITECTURE.md`, "Observability").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// Monotonic request id (1-based, assigned at serve time).
    pub id: u64,
    /// Wire command name; `"-"` for lines that never decoded
    /// (protocol errors, oversize and rate-limited rejections).
    pub command: String,
    /// Outcome kind: `ok`, `error`, `protocol_error`,
    /// `rejected_oversize`, or `rejected_rate`.
    pub outcome: String,
    /// Dataset cache-key hash as 16 hex digits (the registry's
    /// persistence file stem); empty when no dataset was resolved.
    pub key: String,
    /// Wait between poller dispatch and a worker picking the
    /// connection up.
    pub queue_us: u64,
    /// In-worker serve time for this request.
    pub serve_us: u64,
    /// Response write/flush time for the wake.
    pub write_us: u64,
    /// Request-line bytes.
    pub bytes_in: u64,
    /// Response bytes produced by this request.
    pub bytes_out: u64,
    /// How long ago the span was published, milliseconds.
    pub age_ms: u64,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `load` outcome.
    Loaded {
        /// Rows in the underlying dataset (stream length for
        /// stream-mode loads).
        rows: usize,
        /// Attribute count `m`.
        attrs: usize,
        /// Retained sample size `|R|`.
        sample: usize,
        /// True iff the registry already held this entry.
        cached: bool,
    },
    /// `audit` outcome: minimal keys on the sample, as attribute-name
    /// lists, plus the fraction of sampled rows each uniquely
    /// identifies.
    Audit {
        /// One entry per minimal key: the names and the unique fraction.
        keys: Vec<(Vec<String>, f64)>,
    },
    /// `key` outcome.
    Key {
        /// Chosen attribute names, in pick order.
        attrs: Vec<String>,
        /// False iff the sample contains identical tuples (no key).
        complete: bool,
    },
    /// `check` outcome.
    Check {
        /// The resolved attribute names that were tested.
        attrs: Vec<String>,
        /// True = Accept (candidate ε-separation key).
        accept: bool,
    },
    /// `sketch` outcome: the Theorem 2 Γ-estimate for one attribute
    /// set, from the cached non-separation sketch.
    Sketch {
        /// The resolved attribute names that were queried.
        attrs: Vec<String>,
        /// `Γ̂_A`, the estimated number of unseparated pairs — `None`
        /// when the raw count falls below the α-threshold ("small": the
        /// set is close to a key).
        estimate: Option<f64>,
        /// The raw count `D_A`: stored pairs the set fails to separate.
        raw_pairs: usize,
        /// Stored pair-sample size `s`.
        sample_pairs: usize,
        /// The sketch's density threshold α (see [`SKETCH_ALPHA`]).
        alpha: f64,
        /// The estimate's relative error bound ε: estimates are within
        /// `(1±ε)·Γ_A` w.h.p. for subsets of size ≤ `k`.
        rel_error: f64,
        /// The subset-size bound `k` of the for-all guarantee.
        k: usize,
    },
    /// `mask` outcome.
    Mask {
        /// Attribute names to suppress, in suppression order.
        suppressed: Vec<String>,
        /// Smallest residual key size, if any identifying set remains.
        residual_key_size: Option<usize>,
        /// True when the plan was computed against the full
        /// materialised dataset; false when it was planned on the
        /// entry's retained `Θ(m/√ε)` sample (stream-mode entry). The
        /// same request can legitimately answer either way depending
        /// on cache residency, so the basis is part of the answer.
        full_data: bool,
    },
    /// `stats` outcome.
    Stats {
        /// Row count.
        rows: usize,
        /// True when distinct counts are exact (materialised dataset);
        /// false when they are KMV estimates from the stream sketch.
        exact: bool,
        /// `(name, distinct values)` per attribute.
        columns: Vec<(String, usize)>,
    },
    /// `batch` outcome: one response per sub-command, in order.
    Batch {
        /// The sub-responses (errors included inline; the batch itself
        /// is `ok`).
        results: Vec<Response>,
    },
    /// `unload` outcome.
    Unloaded {
        /// True iff a resident entry or persisted files were removed.
        existed: bool,
    },
    /// `metrics` outcome.
    Metrics(MetricsReport),
    /// `trace` outcome: the newest matching spans from the
    /// flight-recorder ring, newest first.
    Trace {
        /// The matching spans (at most the request's `last`).
        spans: Vec<TraceSpan>,
    },
    /// `shutdown` acknowledged; the server drains and exits.
    ShuttingDown,
    /// The request line crossed the server's `--max-line-bytes` cap.
    /// The oversized line was discarded in `O(cap)` memory and the
    /// connection stays usable — retry with a shorter line (split a
    /// large `batch`).
    LineTooLong {
        /// The server's configured cap, in bytes.
        limit: usize,
    },
    /// The connection exceeded its `--max-rps` request-rate budget.
    /// The line was rejected *before* decoding; the connection stays
    /// usable — slow down and retry.
    RateLimited {
        /// The server's configured per-connection requests/second.
        max_rps: u32,
    },
    /// The server is at its `--max-conns` connection capacity. Sent
    /// once on a freshly accepted connection, which is then closed —
    /// back off and reconnect later (unlike `rate_limited`, the
    /// connection does **not** stay usable).
    TooBusy {
        /// The server's configured connection cap.
        max_conns: usize,
    },
    /// Any failure.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// The response as a JSON value (what [`Response::encode`] renders;
    /// also how `batch` nests its results).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Loaded {
                rows,
                attrs,
                sample,
                cached,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("loaded")),
                ("rows", Json::Int(*rows as i64)),
                ("attrs", Json::Int(*attrs as i64)),
                ("sample", Json::Int(*sample as i64)),
                ("cached", Json::Bool(*cached)),
            ]),
            Response::Audit { keys } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("audit")),
                (
                    "keys",
                    Json::Arr(
                        keys.iter()
                            .map(|(names, frac)| {
                                obj(vec![
                                    ("attrs", Json::Arr(names.iter().map(s).collect())),
                                    ("unique_fraction", Json::Num(*frac)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Key { attrs, complete } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("key")),
                ("attrs", Json::Arr(attrs.iter().map(s).collect())),
                ("complete", Json::Bool(*complete)),
            ]),
            Response::Check { attrs, accept } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("check")),
                ("attrs", Json::Arr(attrs.iter().map(s).collect())),
                ("accept", Json::Bool(*accept)),
            ]),
            Response::Sketch {
                attrs,
                estimate,
                raw_pairs,
                sample_pairs,
                alpha,
                rel_error,
                k,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("sketch")),
                ("attrs", Json::Arr(attrs.iter().map(s).collect())),
                ("small", Json::Bool(estimate.is_none())),
                ("estimate", estimate.map_or(Json::Null, Json::Num)),
                ("raw_pairs", Json::Int(*raw_pairs as i64)),
                ("sample_pairs", Json::Int(*sample_pairs as i64)),
                ("alpha", Json::Num(*alpha)),
                ("rel_error", Json::Num(*rel_error)),
                ("k", Json::Int(*k as i64)),
            ]),
            Response::Mask {
                suppressed,
                residual_key_size,
                full_data,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("mask")),
                ("suppressed", Json::Arr(suppressed.iter().map(s).collect())),
                (
                    "residual_key_size",
                    residual_key_size.map_or(Json::Null, |k| Json::Int(k as i64)),
                ),
                ("full_data", Json::Bool(*full_data)),
            ]),
            Response::Stats {
                rows,
                exact,
                columns,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("stats")),
                ("rows", Json::Int(*rows as i64)),
                ("exact", Json::Bool(*exact)),
                (
                    "columns",
                    Json::Arr(
                        columns
                            .iter()
                            .map(|(name, distinct)| {
                                obj(vec![
                                    ("name", s(name)),
                                    ("distinct", Json::Int(*distinct as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Batch { results } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("batch")),
                (
                    "results",
                    Json::Arr(results.iter().map(Response::to_json).collect()),
                ),
            ]),
            Response::Unloaded { existed } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("unloaded")),
                ("existed", Json::Bool(*existed)),
            ]),
            Response::Metrics(report) => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("metrics")),
                ("cache_hits", Json::Int(report.cache_hits as i64)),
                ("cache_misses", Json::Int(report.cache_misses as i64)),
                ("cache_disk_hits", Json::Int(report.cache_disk_hits as i64)),
                ("cache_evictions", Json::Int(report.cache_evictions as i64)),
                (
                    "cache_stale_rebuilds",
                    Json::Int(report.cache_stale_rebuilds as i64),
                ),
                ("cache_upgrades", Json::Int(report.cache_upgrades as i64)),
                (
                    "cache_append_updates",
                    Json::Int(report.cache_append_updates as i64),
                ),
                (
                    "cache_sweep_refreshes",
                    Json::Int(report.cache_sweep_refreshes as i64),
                ),
                ("cache_bytes", Json::Int(report.cache_bytes as i64)),
                ("datasets", Json::Int(report.datasets as i64)),
                ("connections", Json::Int(report.connections as i64)),
                (
                    "rejected_oversize",
                    Json::Int(report.rejected_oversize as i64),
                ),
                ("rejected_rate", Json::Int(report.rejected_rate as i64)),
                ("rejected_busy", Json::Int(report.rejected_busy as i64)),
                ("writes_parked", Json::Int(report.writes_parked as i64)),
                (
                    "poller_connections",
                    Json::Arr(
                        report
                            .poller_connections
                            .iter()
                            .map(|&n| json::u64_value(n))
                            .collect(),
                    ),
                ),
                ("bytes_read", Json::Int(report.bytes_read as i64)),
                ("bytes_written", Json::Int(report.bytes_written as i64)),
                ("uptime_seconds", Json::Int(report.uptime_seconds as i64)),
                ("restarts", Json::Int(report.restarts as i64)),
                (
                    "wal_replayed_events",
                    Json::Int(report.wal_replayed_events as i64),
                ),
                ("version", s(&report.version)),
                (
                    "commands",
                    Json::Arr(
                        report
                            .commands
                            .iter()
                            .map(|c| {
                                obj(vec![
                                    ("name", s(&c.name)),
                                    ("count", Json::Int(c.count as i64)),
                                    ("errors", Json::Int(c.errors as i64)),
                                    ("latency_us", Json::Int(c.latency_us as i64)),
                                    ("p50_us", Json::Int(c.p50_us as i64)),
                                    ("p99_us", Json::Int(c.p99_us as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Trace { spans } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("trace")),
                (
                    "spans",
                    Json::Arr(
                        spans
                            .iter()
                            .map(|span| {
                                obj(vec![
                                    ("id", json::u64_value(span.id)),
                                    ("command", s(&span.command)),
                                    ("outcome", s(&span.outcome)),
                                    ("key", s(&span.key)),
                                    ("queue_us", json::u64_value(span.queue_us)),
                                    ("serve_us", json::u64_value(span.serve_us)),
                                    ("write_us", json::u64_value(span.write_us)),
                                    ("bytes_in", json::u64_value(span.bytes_in)),
                                    ("bytes_out", json::u64_value(span.bytes_out)),
                                    ("age_ms", json::u64_value(span.age_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::ShuttingDown => obj(vec![("ok", Json::Bool(true)), ("kind", s("bye"))]),
            Response::LineTooLong { limit } => obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", s("line_too_long")),
                ("limit", Json::Int(*limit as i64)),
                (
                    "error",
                    s(format!("request line exceeds the {limit}-byte cap")),
                ),
            ]),
            Response::RateLimited { max_rps } => obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", s("rate_limited")),
                ("max_rps", Json::Int(i64::from(*max_rps))),
                (
                    "error",
                    s(format!(
                        "connection exceeded {max_rps} requests/second; slow down"
                    )),
                ),
            ]),
            Response::TooBusy { max_conns } => obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", s("too_busy")),
                ("max_conns", Json::Int(*max_conns as i64)),
                (
                    "error",
                    s(format!(
                        "server at its {max_conns}-connection capacity; retry later"
                    )),
                ),
            ]),
            Response::Error { message } => obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", s("error")),
                ("error", s(message)),
            ]),
        }
    }

    /// Serialises the response to its one-line wire form (no newline).
    pub fn encode(&self) -> String {
        self.to_json().render()
    }

    /// Parses one response line.
    pub fn decode(line: &str) -> Result<Response, String> {
        Self::from_json(&json::parse(line)?)
    }

    /// Builds a response from a parsed JSON value (recursing into
    /// `batch` results).
    fn from_json(v: &Json) -> Result<Response, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("response needs a string \"kind\" field")?;
        let str_arr = |field: &str| -> Result<Vec<String>, String> {
            v.get(field)
                .and_then(Json::as_arr)
                .ok_or(format!("{kind} response needs a {field:?} array"))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or(format!("{field} entries must be strings"))
                })
                .collect()
        };
        let usize_field = |field: &str| -> Result<usize, String> {
            v.get(field)
                .and_then(Json::as_usize)
                .ok_or(format!("{kind} response needs an integer {field:?}"))
        };
        match kind {
            "loaded" => Ok(Response::Loaded {
                rows: usize_field("rows")?,
                attrs: usize_field("attrs")?,
                sample: usize_field("sample")?,
                cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            }),
            "audit" => {
                let keys = v
                    .get("keys")
                    .and_then(Json::as_arr)
                    .ok_or("audit response needs a \"keys\" array")?
                    .iter()
                    .map(|k| {
                        let names = k
                            .get("attrs")
                            .and_then(Json::as_arr)
                            .ok_or("audit key needs an \"attrs\" array")?
                            .iter()
                            .map(|x| {
                                x.as_str()
                                    .map(str::to_string)
                                    .ok_or("attrs entries must be strings".to_string())
                            })
                            .collect::<Result<Vec<_>, String>>()?;
                        let frac = k
                            .get("unique_fraction")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0);
                        Ok((names, frac))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Audit { keys })
            }
            "key" => Ok(Response::Key {
                attrs: str_arr("attrs")?,
                complete: v.get("complete").and_then(Json::as_bool).unwrap_or(true),
            }),
            "check" => Ok(Response::Check {
                attrs: str_arr("attrs")?,
                accept: v
                    .get("accept")
                    .and_then(Json::as_bool)
                    .ok_or("check response needs a bool \"accept\"")?,
            }),
            "sketch" => Ok(Response::Sketch {
                attrs: str_arr("attrs")?,
                estimate: v.get("estimate").and_then(Json::as_f64),
                raw_pairs: usize_field("raw_pairs")?,
                sample_pairs: usize_field("sample_pairs")?,
                alpha: v
                    .get("alpha")
                    .and_then(Json::as_f64)
                    .ok_or("sketch response needs a number \"alpha\"")?,
                rel_error: v
                    .get("rel_error")
                    .and_then(Json::as_f64)
                    .ok_or("sketch response needs a number \"rel_error\"")?,
                k: usize_field("k")?,
            }),
            "mask" => Ok(Response::Mask {
                suppressed: str_arr("suppressed")?,
                residual_key_size: v.get("residual_key_size").and_then(Json::as_usize),
                // Pre-sketch servers only ever masked materialised data.
                full_data: v.get("full_data").and_then(Json::as_bool).unwrap_or(true),
            }),
            "stats" => {
                let columns = v
                    .get("columns")
                    .and_then(Json::as_arr)
                    .ok_or("stats response needs a \"columns\" array")?
                    .iter()
                    .map(|c| {
                        let name = c
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("column needs a name")?
                            .to_string();
                        let distinct = c
                            .get("distinct")
                            .and_then(Json::as_usize)
                            .ok_or("column needs a distinct count")?;
                        Ok((name, distinct))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Stats {
                    rows: usize_field("rows")?,
                    exact: v.get("exact").and_then(Json::as_bool).unwrap_or(true),
                    columns,
                })
            }
            "batch" => {
                let results = v
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or("batch response needs a \"results\" array")?
                    .iter()
                    .map(Response::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Batch { results })
            }
            "unloaded" => Ok(Response::Unloaded {
                existed: v.get("existed").and_then(Json::as_bool).unwrap_or(false),
            }),
            "metrics" => {
                let commands = v
                    .get("commands")
                    .and_then(Json::as_arr)
                    .ok_or("metrics response needs a \"commands\" array")?
                    .iter()
                    .map(|c| {
                        Ok(CommandStats {
                            name: c
                                .get("name")
                                .and_then(Json::as_str)
                                .ok_or("command stat needs a name")?
                                .to_string(),
                            count: c.get("count").and_then(Json::as_u64).unwrap_or(0),
                            errors: c.get("errors").and_then(Json::as_u64).unwrap_or(0),
                            latency_us: c.get("latency_us").and_then(Json::as_u64).unwrap_or(0),
                            p50_us: c.get("p50_us").and_then(Json::as_u64).unwrap_or(0),
                            p99_us: c.get("p99_us").and_then(Json::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let u64_field = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
                Ok(Response::Metrics(MetricsReport {
                    cache_hits: u64_field("cache_hits"),
                    cache_misses: u64_field("cache_misses"),
                    cache_disk_hits: u64_field("cache_disk_hits"),
                    cache_evictions: u64_field("cache_evictions"),
                    cache_stale_rebuilds: u64_field("cache_stale_rebuilds"),
                    cache_upgrades: u64_field("cache_upgrades"),
                    cache_append_updates: u64_field("cache_append_updates"),
                    cache_sweep_refreshes: u64_field("cache_sweep_refreshes"),
                    cache_bytes: u64_field("cache_bytes"),
                    datasets: v.get("datasets").and_then(Json::as_usize).unwrap_or(0),
                    connections: u64_field("connections"),
                    rejected_oversize: u64_field("rejected_oversize"),
                    rejected_rate: u64_field("rejected_rate"),
                    rejected_busy: u64_field("rejected_busy"),
                    writes_parked: u64_field("writes_parked"),
                    poller_connections: v
                        .get("poller_connections")
                        .and_then(Json::as_arr)
                        .map(|arr| arr.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default(),
                    bytes_read: u64_field("bytes_read"),
                    bytes_written: u64_field("bytes_written"),
                    uptime_seconds: u64_field("uptime_seconds"),
                    // Absent on pre-WAL peers: defaults keep decode
                    // backward compatible.
                    restarts: u64_field("restarts"),
                    wal_replayed_events: u64_field("wal_replayed_events"),
                    version: v
                        .get("version")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    commands,
                }))
            }
            "trace" => {
                let spans = v
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or("trace response needs a \"spans\" array")?
                    .iter()
                    .map(|span| {
                        let text = |name: &str| {
                            span.get(name)
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_string()
                        };
                        let num = |name: &str| span.get(name).and_then(Json::as_u64).unwrap_or(0);
                        TraceSpan {
                            id: num("id"),
                            command: text("command"),
                            outcome: text("outcome"),
                            key: text("key"),
                            queue_us: num("queue_us"),
                            serve_us: num("serve_us"),
                            write_us: num("write_us"),
                            bytes_in: num("bytes_in"),
                            bytes_out: num("bytes_out"),
                            age_ms: num("age_ms"),
                        }
                    })
                    .collect();
                Ok(Response::Trace { spans })
            }
            "bye" => Ok(Response::ShuttingDown),
            "line_too_long" => Ok(Response::LineTooLong {
                limit: usize_field("limit")?,
            }),
            "rate_limited" => Ok(Response::RateLimited {
                max_rps: v
                    .get("max_rps")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("rate_limited response needs an integer \"max_rps\"")?,
            }),
            "too_busy" => Ok(Response::TooBusy {
                max_conns: usize_field("max_conns")?,
            }),
            "error" => Ok(Response::Error {
                message: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> DatasetRef {
        DatasetRef {
            path: "/tmp/x.csv".into(),
            eps: 0.01,
            seed: 42,
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Load {
                ds: ds(),
                mode: LoadMode::Stream,
            },
            Request::Audit {
                ds: ds(),
                max_key_size: 4,
            },
            Request::Key { ds: ds() },
            Request::Check {
                ds: ds(),
                attrs: vec!["zip".into(), "age".into()],
            },
            Request::Sketch {
                ds: ds(),
                attrs: vec!["zip".into()],
            },
            Request::Mask {
                ds: ds(),
                budget: 2,
            },
            Request::Stats { ds: ds() },
            Request::Batch {
                requests: vec![
                    Request::Check {
                        ds: ds(),
                        attrs: vec!["zip".into()],
                    },
                    Request::Metrics,
                ],
            },
            Request::Unload { ds: ds() },
            Request::UnloadAll,
            Request::Metrics,
            Request::Shutdown,
            Request::Trace {
                last: 20,
                command: Some("check".into()),
                min_us: 1_000,
            },
            Request::Trace {
                last: DEFAULT_TRACE_LAST,
                command: None,
                min_us: 0,
            },
        ];
        for req in reqs {
            let line = req.encode();
            assert!(!line.contains('\n'));
            let back = Request::decode(&line).unwrap();
            assert_eq!(back, req, "wire line: {line}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Loaded {
                rows: 800,
                attrs: 4,
                sample: 40,
                cached: true,
            },
            Response::Audit {
                keys: vec![
                    (vec!["id".into()], 1.0),
                    (vec!["zip".into(), "age".into()], 0.5),
                ],
            },
            Response::Key {
                attrs: vec!["id".into()],
                complete: true,
            },
            Response::Check {
                attrs: vec!["sex".into()],
                accept: false,
            },
            Response::Sketch {
                attrs: vec!["sex".into()],
                estimate: Some(159800.5),
                raw_pairs: 2051,
                sample_pairs: 4159,
                alpha: SKETCH_ALPHA,
                rel_error: SKETCH_REL_EPS,
                k: SKETCH_K,
            },
            Response::Sketch {
                attrs: vec!["id".into()],
                estimate: None,
                raw_pairs: 0,
                sample_pairs: 4159,
                alpha: SKETCH_ALPHA,
                rel_error: SKETCH_REL_EPS,
                k: SKETCH_K,
            },
            Response::Mask {
                suppressed: vec!["id".into()],
                residual_key_size: None,
                full_data: true,
            },
            Response::Mask {
                suppressed: vec![],
                residual_key_size: Some(3),
                full_data: false,
            },
            Response::Stats {
                rows: 800,
                exact: true,
                columns: vec![("id".into(), 800), ("sex".into(), 2)],
            },
            Response::Stats {
                rows: 800,
                exact: false,
                columns: vec![("id".into(), 793)],
            },
            Response::Batch {
                results: vec![
                    Response::Check {
                        attrs: vec!["id".into()],
                        accept: true,
                    },
                    Response::Error {
                        message: "unknown attribute".into(),
                    },
                ],
            },
            Response::Unloaded { existed: true },
            Response::Unloaded { existed: false },
            Response::Metrics(MetricsReport {
                cache_hits: 3,
                cache_misses: 1,
                cache_disk_hits: 2,
                cache_evictions: 1,
                cache_stale_rebuilds: 1,
                cache_upgrades: 1,
                cache_append_updates: 2,
                cache_sweep_refreshes: 1,
                cache_bytes: 4096,
                datasets: 1,
                connections: 12,
                rejected_oversize: 2,
                rejected_rate: 7,
                rejected_busy: 3,
                writes_parked: 2,
                poller_connections: vec![5, 7],
                bytes_read: 4096,
                bytes_written: 9182,
                uptime_seconds: 3600,
                restarts: 2,
                wal_replayed_events: 41,
                version: "0.1.0".into(),
                commands: vec![CommandStats {
                    name: "audit".into(),
                    count: 4,
                    errors: 0,
                    latency_us: 12345,
                    p50_us: 2047,
                    p99_us: 8191,
                }],
            }),
            Response::Trace { spans: vec![] },
            Response::Trace {
                spans: vec![
                    TraceSpan {
                        id: 9,
                        command: "check".into(),
                        outcome: "ok".into(),
                        key: "00c0ffee00c0ffee".into(),
                        queue_us: 12,
                        serve_us: 345,
                        write_us: 6,
                        bytes_in: 128,
                        bytes_out: 64,
                        age_ms: 1500,
                    },
                    TraceSpan {
                        id: 8,
                        command: "-".into(),
                        outcome: "protocol_error".into(),
                        key: String::new(),
                        queue_us: 0,
                        serve_us: 2,
                        write_us: 1,
                        bytes_in: 17,
                        bytes_out: 80,
                        age_ms: 2000,
                    },
                ],
            },
            Response::ShuttingDown,
            Response::LineTooLong { limit: 262_144 },
            Response::RateLimited { max_rps: 50 },
            Response::TooBusy { max_conns: 10_000 },
            Response::Error {
                message: "no such file".into(),
            },
        ];
        for resp in resps {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            let back = Response::decode(&line).unwrap();
            assert_eq!(back, resp, "wire line: {line}");
        }
    }

    #[test]
    fn defaults_fill_in() {
        let req = Request::decode(r#"{"cmd":"audit","path":"a.csv"}"#).unwrap();
        match req {
            Request::Audit { ds, max_key_size } => {
                assert_eq!(ds.eps, DEFAULT_EPS);
                assert_eq!(ds.seed, DEFAULT_SEED);
                assert_eq!(max_key_size, DEFAULT_MAX_KEY_SIZE);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn unload_all_is_explicit() {
        assert_eq!(
            Request::decode(r#"{"cmd":"unload","all":true}"#).unwrap(),
            Request::UnloadAll
        );
        // `all` must be literally true: anything else falls back to the
        // per-dataset form, which still demands a path.
        assert!(Request::decode(r#"{"cmd":"unload","all":false}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"unload"}"#).is_err());
    }

    #[test]
    fn trace_defaults_fill_in() {
        assert_eq!(
            Request::decode(r#"{"cmd":"trace"}"#).unwrap(),
            Request::Trace {
                last: DEFAULT_TRACE_LAST,
                command: None,
                min_us: 0,
            }
        );
    }

    #[test]
    fn huge_seeds_roundtrip_exactly() {
        let req = Request::Key {
            ds: DatasetRef {
                path: "a.csv".into(),
                eps: 0.01,
                seed: u64::MAX,
            },
        };
        let line = req.encode();
        assert_eq!(Request::decode(&line).unwrap(), req, "wire line: {line}");
        // And present-but-garbage cache-key fields are errors, not
        // silent defaults.
        assert!(Request::decode(r#"{"cmd":"key","path":"a.csv","seed":-3}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"key","path":"a.csv","seed":"x"}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"key","path":"a.csv","eps":"0.05"}"#).is_err());
    }

    #[test]
    fn malformed_requests_rejected() {
        for line in [
            "",
            "not json",
            "{}",
            r#"{"cmd":"explode"}"#,
            r#"{"cmd":"audit"}"#,
            r#"{"cmd":"unload"}"#,
            r#"{"cmd":"check","path":"a.csv"}"#,
            r#"{"cmd":"sketch","path":"a.csv"}"#,
            r#"{"cmd":"load","path":"a.csv","mode":"warp"}"#,
            r#"{"cmd":"batch"}"#,
            r#"{"cmd":"batch","requests":[{"cmd":"key"}]}"#,
        ] {
            assert!(Request::decode(line).is_err(), "should reject {line:?}");
        }
    }

    #[test]
    fn batches_cannot_nest_or_shut_down() {
        let nested = r#"{"cmd":"batch","requests":[{"cmd":"batch","requests":[]}]}"#;
        let err = Request::decode(nested).unwrap_err();
        assert!(err.contains("batch"), "{err}");
        let shutdown = r#"{"cmd":"batch","requests":[{"cmd":"shutdown"}]}"#;
        let err = Request::decode(shutdown).unwrap_err();
        assert!(err.contains("shutdown"), "{err}");
        // An empty batch is well-formed (and answered with an empty
        // results array).
        assert_eq!(
            Request::decode(r#"{"cmd":"batch","requests":[]}"#).unwrap(),
            Request::Batch { requests: vec![] }
        );
    }

    #[test]
    fn sketch_params_match_the_advertised_contract() {
        let p = sketch_params();
        assert_eq!(p.alpha, SKETCH_ALPHA);
        assert_eq!(p.eps, SKETCH_REL_EPS);
        assert_eq!(p.k, SKETCH_K);
    }

    #[test]
    fn stats_exact_defaults_true_for_old_peers() {
        // A stats line from a pre-sketch server has no "exact" field;
        // those servers only ever answered from materialised data.
        let resp = Response::decode(r#"{"ok":true,"kind":"stats","rows":2,"columns":[]}"#).unwrap();
        assert_eq!(
            resp,
            Response::Stats {
                rows: 2,
                exact: true,
                columns: vec![]
            }
        );
    }

    #[test]
    fn unknown_fields_ignored() {
        let req = Request::decode(r#"{"cmd":"key","path":"a.csv","future":1}"#).unwrap();
        assert_eq!(req.command_name(), "key");
    }
}
