//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Every request carries a
//! `"cmd"` tag; dataset-touching commands also carry the registry cache
//! key `(path, eps, seed)` so repeated queries hit the same cached
//! sketch. Unknown fields are ignored; missing optional fields take the
//! CLI's defaults, so hand-written `echo '{"cmd":"stats",...}' | nc`
//! sessions work.

use crate::json::{self, obj, s, Json};

/// Default `eps` when a request omits it (matches the CLI default).
pub const DEFAULT_EPS: f64 = 0.001;
/// Default sampling seed when a request omits it.
pub const DEFAULT_SEED: u64 = 7;
/// Default `max_key_size` for `audit`.
pub const DEFAULT_MAX_KEY_SIZE: usize = 3;
/// Default adversary budget for `mask`.
pub const DEFAULT_BUDGET: usize = 2;

/// The registry cache key a request addresses: which file, sampled how.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetRef {
    /// Path of the CSV file, as seen by the **server** process.
    pub path: String,
    /// Separation slack ε of the cached filter.
    pub eps: f64,
    /// Sampling seed of the cached filter.
    pub seed: u64,
}

/// How `load` should materialise the dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Read the whole CSV into memory (enables `stats` and `mask`).
    Memory,
    /// One-pass reservoir build: keep only the `Θ(m/√ε)` sample.
    Stream,
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Populate (or touch) the registry entry for a dataset.
    Load {
        /// Cache key.
        ds: DatasetRef,
        /// Materialisation mode.
        mode: LoadMode,
    },
    /// Enumerate minimal quasi-identifiers on the cached sample.
    Audit {
        /// Cache key.
        ds: DatasetRef,
        /// Largest attribute-set size to explore.
        max_key_size: usize,
    },
    /// Find one small ε-separation key (greedy, Proposition 1).
    Key {
        /// Cache key.
        ds: DatasetRef,
    },
    /// Test one attribute set against the cached filter.
    Check {
        /// Cache key.
        ds: DatasetRef,
        /// Attribute names (or indices as strings).
        attrs: Vec<String>,
    },
    /// Plan attribute suppression (requires a memory-loaded dataset).
    Mask {
        /// Cache key.
        ds: DatasetRef,
        /// Adversary budget: defeat keys of at most this size.
        budget: usize,
    },
    /// Per-attribute cardinalities (requires a memory-loaded dataset).
    Stats {
        /// Cache key.
        ds: DatasetRef,
    },
    /// Drop a registry entry (resident and persisted) explicitly.
    Unload {
        /// Cache key.
        ds: DatasetRef,
    },
    /// Server counters: per-command traffic, cache lifecycle counters,
    /// latency sums and percentiles.
    Metrics,
    /// Stop accepting connections, drain in-flight work, exit.
    Shutdown,
}

impl Request {
    /// The wire name of the command (also the metrics label).
    pub fn command_name(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Audit { .. } => "audit",
            Request::Key { .. } => "key",
            Request::Check { .. } => "check",
            Request::Mask { .. } => "mask",
            Request::Stats { .. } => "stats",
            Request::Unload { .. } => "unload",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serialises the request to its one-line wire form (no newline).
    pub fn encode(&self) -> String {
        let mut pairs: Vec<(&str, Json)> = vec![("cmd", s(self.command_name()))];
        let push_ds = |pairs: &mut Vec<(&str, Json)>, ds: &DatasetRef| {
            pairs.push(("path", s(&ds.path)));
            pairs.push(("eps", Json::Num(ds.eps)));
            pairs.push(("seed", json::u64_value(ds.seed)));
        };
        match self {
            Request::Load { ds, mode } => {
                push_ds(&mut pairs, ds);
                pairs.push((
                    "mode",
                    s(match mode {
                        LoadMode::Memory => "memory",
                        LoadMode::Stream => "stream",
                    }),
                ));
            }
            Request::Audit { ds, max_key_size } => {
                push_ds(&mut pairs, ds);
                pairs.push(("max_key_size", Json::Int(*max_key_size as i64)));
            }
            Request::Key { ds } | Request::Stats { ds } | Request::Unload { ds } => {
                push_ds(&mut pairs, ds)
            }
            Request::Check { ds, attrs } => {
                push_ds(&mut pairs, ds);
                pairs.push(("attrs", Json::Arr(attrs.iter().map(s).collect())));
            }
            Request::Mask { ds, budget } => {
                push_ds(&mut pairs, ds);
                pairs.push(("budget", Json::Int(*budget as i64)));
            }
            Request::Metrics | Request::Shutdown => {}
        }
        obj(pairs).render()
    }

    /// Parses one request line.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = json::parse(line)?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"cmd\" field")?;
        let ds = |v: &Json| -> Result<DatasetRef, String> {
            let seed = match v.get("seed") {
                None => DEFAULT_SEED,
                // A present-but-invalid seed is an error, not a silent
                // fallback to the default — that would serve a
                // different sample than the one the client asked for.
                Some(x) => x
                    .as_u64_lossless()
                    .ok_or(format!("{cmd}: \"seed\" must be a non-negative integer"))?,
            };
            let eps = match v.get("eps") {
                None => DEFAULT_EPS,
                // Same contract as seed: eps is part of the cache key,
                // so a present-but-invalid value must not silently
                // become the default.
                Some(x) => x
                    .as_f64()
                    .ok_or(format!("{cmd}: \"eps\" must be a number"))?,
            };
            Ok(DatasetRef {
                path: v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or(format!("{cmd} needs a string \"path\" field"))?
                    .to_string(),
                eps,
                seed,
            })
        };
        match cmd {
            "load" => {
                let mode = match v.get("mode").and_then(Json::as_str) {
                    None | Some("memory") => LoadMode::Memory,
                    Some("stream") => LoadMode::Stream,
                    Some(other) => return Err(format!("unknown load mode {other:?}")),
                };
                Ok(Request::Load { ds: ds(&v)?, mode })
            }
            "audit" => Ok(Request::Audit {
                ds: ds(&v)?,
                max_key_size: v
                    .get("max_key_size")
                    .and_then(Json::as_usize)
                    .unwrap_or(DEFAULT_MAX_KEY_SIZE),
            }),
            "key" => Ok(Request::Key { ds: ds(&v)? }),
            "check" => {
                let attrs = v
                    .get("attrs")
                    .and_then(Json::as_arr)
                    .ok_or("check needs an \"attrs\" array")?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or("attrs must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Check { ds: ds(&v)?, attrs })
            }
            "mask" => Ok(Request::Mask {
                ds: ds(&v)?,
                budget: v
                    .get("budget")
                    .and_then(Json::as_usize)
                    .unwrap_or(DEFAULT_BUDGET),
            }),
            "stats" => Ok(Request::Stats { ds: ds(&v)? }),
            "unload" => Ok(Request::Unload { ds: ds(&v)? }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// Traffic counters for one command, as reported by `metrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommandStats {
    /// Wire name of the command.
    pub name: String,
    /// Requests handled (including failed ones).
    pub count: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sum of handling latencies, microseconds.
    pub latency_us: u64,
    /// Median handling latency in microseconds, read off the
    /// fixed-size log₂ histogram: the upper edge of the bucket holding
    /// the quantile, so at most 2× the true value — except in the
    /// open-ended top bucket, where latencies beyond ~2.2 minutes all
    /// report its ~4.5-minute edge. Zero when the command has not been
    /// seen.
    pub p50_us: u64,
    /// 99th-percentile handling latency, same bucket scheme.
    pub p99_us: u64,
}

/// The full `metrics` payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Registry lookups answered from a resident entry.
    pub cache_hits: u64,
    /// Registry lookups that scanned a source file (cold builds, stale
    /// rebuilds, materialisation upgrades).
    pub cache_misses: u64,
    /// Registry lookups answered by restoring a persisted sample from
    /// the `--cache-dir` warm tier (no source scan).
    pub cache_disk_hits: u64,
    /// Entries evicted under `--cache-bytes` budget pressure.
    pub cache_evictions: u64,
    /// Rebuilds forced by a source-file mtime/len change.
    pub cache_stale_rebuilds: u64,
    /// Current resident bytes across all cached entries.
    pub cache_bytes: u64,
    /// Entries currently resident in the registry.
    pub datasets: usize,
    /// Per-command traffic, in fixed command order.
    pub commands: Vec<CommandStats>,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `load` outcome.
    Loaded {
        /// Rows in the underlying dataset (stream length for
        /// stream-mode loads).
        rows: usize,
        /// Attribute count `m`.
        attrs: usize,
        /// Retained sample size `|R|`.
        sample: usize,
        /// True iff the registry already held this entry.
        cached: bool,
    },
    /// `audit` outcome: minimal keys on the sample, as attribute-name
    /// lists, plus the fraction of sampled rows each uniquely
    /// identifies.
    Audit {
        /// One entry per minimal key: the names and the unique fraction.
        keys: Vec<(Vec<String>, f64)>,
    },
    /// `key` outcome.
    Key {
        /// Chosen attribute names, in pick order.
        attrs: Vec<String>,
        /// False iff the sample contains identical tuples (no key).
        complete: bool,
    },
    /// `check` outcome.
    Check {
        /// The resolved attribute names that were tested.
        attrs: Vec<String>,
        /// True = Accept (candidate ε-separation key).
        accept: bool,
    },
    /// `mask` outcome.
    Mask {
        /// Attribute names to suppress, in suppression order.
        suppressed: Vec<String>,
        /// Smallest residual key size, if any identifying set remains.
        residual_key_size: Option<usize>,
    },
    /// `stats` outcome.
    Stats {
        /// Row count.
        rows: usize,
        /// `(name, distinct values)` per attribute.
        columns: Vec<(String, usize)>,
    },
    /// `unload` outcome.
    Unloaded {
        /// True iff a resident entry or persisted files were removed.
        existed: bool,
    },
    /// `metrics` outcome.
    Metrics(MetricsReport),
    /// `shutdown` acknowledged; the server drains and exits.
    ShuttingDown,
    /// Any failure.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Serialises the response to its one-line wire form (no newline).
    pub fn encode(&self) -> String {
        let body = match self {
            Response::Loaded {
                rows,
                attrs,
                sample,
                cached,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("loaded")),
                ("rows", Json::Int(*rows as i64)),
                ("attrs", Json::Int(*attrs as i64)),
                ("sample", Json::Int(*sample as i64)),
                ("cached", Json::Bool(*cached)),
            ]),
            Response::Audit { keys } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("audit")),
                (
                    "keys",
                    Json::Arr(
                        keys.iter()
                            .map(|(names, frac)| {
                                obj(vec![
                                    ("attrs", Json::Arr(names.iter().map(s).collect())),
                                    ("unique_fraction", Json::Num(*frac)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Key { attrs, complete } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("key")),
                ("attrs", Json::Arr(attrs.iter().map(s).collect())),
                ("complete", Json::Bool(*complete)),
            ]),
            Response::Check { attrs, accept } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("check")),
                ("attrs", Json::Arr(attrs.iter().map(s).collect())),
                ("accept", Json::Bool(*accept)),
            ]),
            Response::Mask {
                suppressed,
                residual_key_size,
            } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("mask")),
                ("suppressed", Json::Arr(suppressed.iter().map(s).collect())),
                (
                    "residual_key_size",
                    residual_key_size.map_or(Json::Null, |k| Json::Int(k as i64)),
                ),
            ]),
            Response::Stats { rows, columns } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("stats")),
                ("rows", Json::Int(*rows as i64)),
                (
                    "columns",
                    Json::Arr(
                        columns
                            .iter()
                            .map(|(name, distinct)| {
                                obj(vec![
                                    ("name", s(name)),
                                    ("distinct", Json::Int(*distinct as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Unloaded { existed } => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("unloaded")),
                ("existed", Json::Bool(*existed)),
            ]),
            Response::Metrics(report) => obj(vec![
                ("ok", Json::Bool(true)),
                ("kind", s("metrics")),
                ("cache_hits", Json::Int(report.cache_hits as i64)),
                ("cache_misses", Json::Int(report.cache_misses as i64)),
                ("cache_disk_hits", Json::Int(report.cache_disk_hits as i64)),
                ("cache_evictions", Json::Int(report.cache_evictions as i64)),
                (
                    "cache_stale_rebuilds",
                    Json::Int(report.cache_stale_rebuilds as i64),
                ),
                ("cache_bytes", Json::Int(report.cache_bytes as i64)),
                ("datasets", Json::Int(report.datasets as i64)),
                (
                    "commands",
                    Json::Arr(
                        report
                            .commands
                            .iter()
                            .map(|c| {
                                obj(vec![
                                    ("name", s(&c.name)),
                                    ("count", Json::Int(c.count as i64)),
                                    ("errors", Json::Int(c.errors as i64)),
                                    ("latency_us", Json::Int(c.latency_us as i64)),
                                    ("p50_us", Json::Int(c.p50_us as i64)),
                                    ("p99_us", Json::Int(c.p99_us as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::ShuttingDown => obj(vec![("ok", Json::Bool(true)), ("kind", s("bye"))]),
            Response::Error { message } => obj(vec![
                ("ok", Json::Bool(false)),
                ("kind", s("error")),
                ("error", s(message)),
            ]),
        };
        body.render()
    }

    /// Parses one response line.
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = json::parse(line)?;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("response needs a string \"kind\" field")?;
        let str_arr = |field: &str| -> Result<Vec<String>, String> {
            v.get(field)
                .and_then(Json::as_arr)
                .ok_or(format!("{kind} response needs a {field:?} array"))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or(format!("{field} entries must be strings"))
                })
                .collect()
        };
        let usize_field = |field: &str| -> Result<usize, String> {
            v.get(field)
                .and_then(Json::as_usize)
                .ok_or(format!("{kind} response needs an integer {field:?}"))
        };
        match kind {
            "loaded" => Ok(Response::Loaded {
                rows: usize_field("rows")?,
                attrs: usize_field("attrs")?,
                sample: usize_field("sample")?,
                cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            }),
            "audit" => {
                let keys = v
                    .get("keys")
                    .and_then(Json::as_arr)
                    .ok_or("audit response needs a \"keys\" array")?
                    .iter()
                    .map(|k| {
                        let names = k
                            .get("attrs")
                            .and_then(Json::as_arr)
                            .ok_or("audit key needs an \"attrs\" array")?
                            .iter()
                            .map(|x| {
                                x.as_str()
                                    .map(str::to_string)
                                    .ok_or("attrs entries must be strings".to_string())
                            })
                            .collect::<Result<Vec<_>, String>>()?;
                        let frac = k
                            .get("unique_fraction")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0);
                        Ok((names, frac))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Audit { keys })
            }
            "key" => Ok(Response::Key {
                attrs: str_arr("attrs")?,
                complete: v.get("complete").and_then(Json::as_bool).unwrap_or(true),
            }),
            "check" => Ok(Response::Check {
                attrs: str_arr("attrs")?,
                accept: v
                    .get("accept")
                    .and_then(Json::as_bool)
                    .ok_or("check response needs a bool \"accept\"")?,
            }),
            "mask" => Ok(Response::Mask {
                suppressed: str_arr("suppressed")?,
                residual_key_size: v.get("residual_key_size").and_then(Json::as_usize),
            }),
            "stats" => {
                let columns = v
                    .get("columns")
                    .and_then(Json::as_arr)
                    .ok_or("stats response needs a \"columns\" array")?
                    .iter()
                    .map(|c| {
                        let name = c
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("column needs a name")?
                            .to_string();
                        let distinct = c
                            .get("distinct")
                            .and_then(Json::as_usize)
                            .ok_or("column needs a distinct count")?;
                        Ok((name, distinct))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Stats {
                    rows: usize_field("rows")?,
                    columns,
                })
            }
            "unloaded" => Ok(Response::Unloaded {
                existed: v.get("existed").and_then(Json::as_bool).unwrap_or(false),
            }),
            "metrics" => {
                let commands = v
                    .get("commands")
                    .and_then(Json::as_arr)
                    .ok_or("metrics response needs a \"commands\" array")?
                    .iter()
                    .map(|c| {
                        Ok(CommandStats {
                            name: c
                                .get("name")
                                .and_then(Json::as_str)
                                .ok_or("command stat needs a name")?
                                .to_string(),
                            count: c.get("count").and_then(Json::as_u64).unwrap_or(0),
                            errors: c.get("errors").and_then(Json::as_u64).unwrap_or(0),
                            latency_us: c.get("latency_us").and_then(Json::as_u64).unwrap_or(0),
                            p50_us: c.get("p50_us").and_then(Json::as_u64).unwrap_or(0),
                            p99_us: c.get("p99_us").and_then(Json::as_u64).unwrap_or(0),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let u64_field = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
                Ok(Response::Metrics(MetricsReport {
                    cache_hits: u64_field("cache_hits"),
                    cache_misses: u64_field("cache_misses"),
                    cache_disk_hits: u64_field("cache_disk_hits"),
                    cache_evictions: u64_field("cache_evictions"),
                    cache_stale_rebuilds: u64_field("cache_stale_rebuilds"),
                    cache_bytes: u64_field("cache_bytes"),
                    datasets: v.get("datasets").and_then(Json::as_usize).unwrap_or(0),
                    commands,
                }))
            }
            "bye" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> DatasetRef {
        DatasetRef {
            path: "/tmp/x.csv".into(),
            eps: 0.01,
            seed: 42,
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Load {
                ds: ds(),
                mode: LoadMode::Stream,
            },
            Request::Audit {
                ds: ds(),
                max_key_size: 4,
            },
            Request::Key { ds: ds() },
            Request::Check {
                ds: ds(),
                attrs: vec!["zip".into(), "age".into()],
            },
            Request::Mask {
                ds: ds(),
                budget: 2,
            },
            Request::Stats { ds: ds() },
            Request::Unload { ds: ds() },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(!line.contains('\n'));
            let back = Request::decode(&line).unwrap();
            assert_eq!(back, req, "wire line: {line}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Loaded {
                rows: 800,
                attrs: 4,
                sample: 40,
                cached: true,
            },
            Response::Audit {
                keys: vec![
                    (vec!["id".into()], 1.0),
                    (vec!["zip".into(), "age".into()], 0.5),
                ],
            },
            Response::Key {
                attrs: vec!["id".into()],
                complete: true,
            },
            Response::Check {
                attrs: vec!["sex".into()],
                accept: false,
            },
            Response::Mask {
                suppressed: vec!["id".into()],
                residual_key_size: None,
            },
            Response::Mask {
                suppressed: vec![],
                residual_key_size: Some(3),
            },
            Response::Stats {
                rows: 800,
                columns: vec![("id".into(), 800), ("sex".into(), 2)],
            },
            Response::Unloaded { existed: true },
            Response::Unloaded { existed: false },
            Response::Metrics(MetricsReport {
                cache_hits: 3,
                cache_misses: 1,
                cache_disk_hits: 2,
                cache_evictions: 1,
                cache_stale_rebuilds: 1,
                cache_bytes: 4096,
                datasets: 1,
                commands: vec![CommandStats {
                    name: "audit".into(),
                    count: 4,
                    errors: 0,
                    latency_us: 12345,
                    p50_us: 2047,
                    p99_us: 8191,
                }],
            }),
            Response::ShuttingDown,
            Response::Error {
                message: "no such file".into(),
            },
        ];
        for resp in resps {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            let back = Response::decode(&line).unwrap();
            assert_eq!(back, resp, "wire line: {line}");
        }
    }

    #[test]
    fn defaults_fill_in() {
        let req = Request::decode(r#"{"cmd":"audit","path":"a.csv"}"#).unwrap();
        match req {
            Request::Audit { ds, max_key_size } => {
                assert_eq!(ds.eps, DEFAULT_EPS);
                assert_eq!(ds.seed, DEFAULT_SEED);
                assert_eq!(max_key_size, DEFAULT_MAX_KEY_SIZE);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn huge_seeds_roundtrip_exactly() {
        let req = Request::Key {
            ds: DatasetRef {
                path: "a.csv".into(),
                eps: 0.01,
                seed: u64::MAX,
            },
        };
        let line = req.encode();
        assert_eq!(Request::decode(&line).unwrap(), req, "wire line: {line}");
        // And present-but-garbage cache-key fields are errors, not
        // silent defaults.
        assert!(Request::decode(r#"{"cmd":"key","path":"a.csv","seed":-3}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"key","path":"a.csv","seed":"x"}"#).is_err());
        assert!(Request::decode(r#"{"cmd":"key","path":"a.csv","eps":"0.05"}"#).is_err());
    }

    #[test]
    fn malformed_requests_rejected() {
        for line in [
            "",
            "not json",
            "{}",
            r#"{"cmd":"explode"}"#,
            r#"{"cmd":"audit"}"#,
            r#"{"cmd":"unload"}"#,
            r#"{"cmd":"check","path":"a.csv"}"#,
            r#"{"cmd":"load","path":"a.csv","mode":"warp"}"#,
        ] {
            assert!(Request::decode(line).is_err(), "should reject {line:?}");
        }
    }

    #[test]
    fn unknown_fields_ignored() {
        let req = Request::decode(r#"{"cmd":"key","path":"a.csv","future":1}"#).unwrap();
        assert_eq!(req.command_name(), "key");
    }
}
