//! The resident audit service: accept loop, dispatch, graceful drain.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use qid_core::minkey::{enumerate_minimal_keys, GreedyRefineMinKey, LatticeConfig};
use qid_core::separation::group_sizes;

use crate::fastpath::Scratch;
use crate::metrics::Metrics;
use crate::obs::{self, Obs};
use crate::poller::{poller_loop, push_response, Conn, ConnLimits, LiveGuard, PollerHandle};
use crate::pool::GaugedSender;
use crate::proto::{
    DatasetRef, LoadMode, Request, Response, SKETCH_ALPHA, SKETCH_K, SKETCH_REL_EPS,
};
use crate::registry::{CacheKey, Entry, Registry, RegistryConfig};
use crate::resolve::resolve_attr_names;
use crate::WorkerPool;

/// Caps `audit`'s lattice search, matching the CLI's limit.
const MAX_LATTICE_CANDIDATES: usize = 500_000;

/// Default request-line byte cap (`--max-line-bytes`): generous enough
/// for large `batch` lines, small enough that a hostile client cannot
/// make a worker buffer unbounded memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 256 * 1024;

/// How to bind and size the server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker thread count (clamped to ≥ 1).
    pub workers: usize,
    /// Poller shard count (`--pollers`, clamped to ≥ 1): connections
    /// are dealt round-robin across this many readiness threads, each
    /// owning its shard's idle and write-parked sockets. Defaults to
    /// [`default_pollers`].
    pub pollers: usize,
    /// Connection admission cap (`--max-conns`); `0` disables it. An
    /// accept beyond the cap is answered with one structured
    /// `too_busy` error and closed, instead of the listener running
    /// the process out of fds.
    pub max_conns: usize,
    /// Registry LRU budget in bytes (`--cache-bytes`); `None` disables
    /// eviction.
    pub cache_bytes: Option<u64>,
    /// Registry persistence directory (`--cache-dir`); `None` disables
    /// the on-disk warm tier.
    pub cache_dir: Option<String>,
    /// On-disk warm-tier byte budget (`--cache-disk-bytes`); `None`
    /// lets persisted artifacts accumulate without bound. When the
    /// budget is exceeded, whole artifact groups (sample + sketch +
    /// metas sharing one cache-key stem) are removed coldest-first,
    /// ordered by each stem's last lifecycle event in the registry
    /// journal (file mtime for stems the journal has never seen).
    pub cache_disk_bytes: Option<u64>,
    /// Longest accepted request line in bytes (`--max-line-bytes`).
    /// Longer lines are answered with a structured `line_too_long`
    /// error, discarded in `O(cap)` memory, and the connection stays
    /// usable.
    pub max_line_bytes: usize,
    /// Per-connection request-rate cap in requests/second
    /// (`--max-rps`); `None` disables rate limiting. Over-budget lines
    /// are answered with `rate_limited` before they are decoded.
    pub max_rps: Option<u32>,
    /// Freshness-check revalidation window in milliseconds
    /// (`--revalidate-ms`), enabling the zero-allocation `check` fast
    /// path: within this window of the last source stat, a cached
    /// entry is served without re-statting the file (see
    /// [`Registry::peek`]). `0` disables the fast path and restores
    /// strict stat-on-every-request invalidation.
    pub revalidate_ms: u64,
    /// Background revalidation sweep interval in milliseconds
    /// (`--sweep-ms`); `0` (the default) disables the sweeper. When
    /// armed, a dedicated thread walks every resident cache entry on
    /// this cadence and refreshes stale or appended ones ahead of
    /// traffic, so request latency does not absorb rebuild cost (see
    /// [`Registry::sweep`]).
    pub sweep_ms: u64,
    /// Prometheus exposition listen address (`--metrics-addr`); `None`
    /// disables the scrape endpoint. Port 0 picks an ephemeral port
    /// (see [`ServerState::metrics_local_addr`]).
    pub metrics_addr: Option<String>,
    /// Slow-request threshold in milliseconds (`--slow-ms`): any
    /// request whose queue + serve + write total crosses it emits one
    /// NDJSON line on stderr with the full span breakdown. `None`
    /// disables slow-request logging.
    pub slow_ms: Option<u64>,
    /// Emit registry lifecycle events (build, restore, evict,
    /// stale-rebuild, unload, purge) and request rejections as NDJSON
    /// on stderr (`--log-json`).
    pub log_json: bool,
    /// Write-ahead journal size budget (`--wal-max-bytes`): the
    /// registry journal under `--cache-dir` is folded into a snapshot
    /// and truncated past this many bytes. `0` disables the journal
    /// (and with it warm restart recovery and `qid_restarts_total`);
    /// ignored when no cache dir is configured. See [`crate::wal`].
    pub wal_max_bytes: u64,
}

/// Default `--revalidate-ms`: in-place source rewrites are noticed
/// within a quarter second, while a `check`-saturating client stats
/// the file at most ~4 times a second instead of once per request.
pub const DEFAULT_REVALIDATE_MS: u64 = 250;

/// Default `--pollers`: one readiness shard per core, capped at 4.
/// Readiness scanning is cheap per connection, so a few shards carry
/// tens of thousands of sockets; past that, more shards just shuffle
/// cache lines.
pub fn default_pollers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            pollers: default_pollers(),
            max_conns: 0,
            cache_bytes: None,
            cache_dir: None,
            cache_disk_bytes: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_rps: None,
            revalidate_ms: DEFAULT_REVALIDATE_MS,
            sweep_ms: 0,
            metrics_addr: None,
            slow_ms: None,
            log_json: false,
            wal_max_bytes: crate::wal::DEFAULT_WAL_MAX_BYTES,
        }
    }
}

/// Shared across workers: the cache, the counters, the stop flag.
#[derive(Debug)]
pub struct ServerState {
    /// The dataset registry every worker queries.
    pub registry: Registry,
    /// Traffic counters behind the `metrics` command.
    pub metrics: Metrics,
    /// The flight recorder: trace ring, gauges, slow/JSON log switches.
    obs: Obs,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    limits: ConnLimits,
    /// Admission cap (`--max-conns`); `0` = unlimited.
    max_conns: usize,
    /// Connections currently admitted (accepted and not yet closed).
    /// Every admitted `Conn` carries a [`LiveGuard`] that decrements
    /// this on drop, so every close path — worker, poller drain,
    /// parked-flush failure — is accounted without bookkeeping calls.
    live_conns: Arc<AtomicU64>,
    /// Set once `serve` builds the poller shards, so
    /// `initiate_shutdown` can wake them all.
    pollers: OnceLock<Vec<Arc<polling::Poller>>>,
}

/// Rewrites a wildcard bind (0.0.0.0 / ::) to loopback — not every
/// platform accepts an unspecified address as a connect destination.
fn connectable(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

impl ServerState {
    /// True once a `shutdown` request has been accepted.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The observability hub (trace ring, gauges, log switches).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The bound Prometheus exposition address, when `--metrics-addr`
    /// was configured (resolves ephemeral ports).
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Flags shutdown, wakes every poller shard, and pokes the accept
    /// loop (and the metrics listener, when present) awake with a
    /// throwaway connection so they can observe the flag.
    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(pollers) = self.pollers.get() {
            for poller in pollers {
                let _ = poller.notify();
            }
        }
        let _ = TcpStream::connect(connectable(self.local_addr));
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(connectable(addr));
        }
    }
}

/// A bound (but not yet serving) audit service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    state: Arc<ServerState>,
    workers: usize,
    pollers: usize,
    sweep_ms: u64,
}

impl Server {
    /// Binds the listener (and the `--metrics-addr` exposition
    /// listener, when configured) and builds the shared state. No
    /// threads are spawned until [`Server::serve`].
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        let event_sink: Option<fn(crate::registry::RegistryEvent)> = if config.log_json {
            Some(obs::log_registry_event)
        } else {
            None
        };
        let registry = Registry::with_config(RegistryConfig {
            cache_bytes: config.cache_bytes,
            cache_dir: config.cache_dir.as_ref().map(std::path::PathBuf::from),
            cache_disk_bytes: config.cache_disk_bytes,
            revalidate_ms: config.revalidate_ms,
            event_sink,
            wal_max_bytes: config.wal_max_bytes,
            ..RegistryConfig::default()
        });
        let pollers = config.pollers.max(1);
        Ok(Server {
            listener,
            metrics_listener,
            state: Arc::new(ServerState {
                registry,
                metrics: Metrics::new(),
                obs: Obs::new(
                    config.slow_ms.map_or(0, |ms| ms.saturating_mul(1000)),
                    config.log_json,
                    pollers,
                ),
                shutdown: AtomicBool::new(false),
                local_addr,
                metrics_addr,
                limits: ConnLimits {
                    max_line_bytes: config.max_line_bytes.max(1),
                    max_rps: config.max_rps.filter(|&rps| rps > 0),
                },
                max_conns: config.max_conns,
                live_conns: Arc::new(AtomicU64::new(0)),
                pollers: OnceLock::new(),
            }),
            workers: config.workers.max(1),
            pollers,
            sweep_ms: config.sweep_ms,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// The shared state (for tests and benchmarks).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop until a `shutdown` request arrives, then
    /// drains in-flight requests *and* poller-registered idle
    /// connections before returning.
    ///
    /// The loop itself only accepts (and enforces `--max-conns`):
    /// every admitted connection is dealt round-robin to one of the
    /// poller shards (see [`crate::poller`]), each of which owns its
    /// shard's sockets in non-blocking mode and dispatches only
    /// *readable* ones to the worker pool.
    pub fn serve(self) -> io::Result<()> {
        let mut pool = WorkerPool::new(self.workers);
        let pool_tx = GaugedSender::new(
            pool.sender().expect("fresh pool has an open queue"),
            self.state.obs.queue_depth_handle(),
        );
        let mut pollers = Vec::with_capacity(self.pollers);
        let mut handles = Vec::with_capacity(self.pollers);
        let mut poller_threads = Vec::with_capacity(self.pollers);
        for shard in 0..self.pollers {
            let poller = Arc::new(polling::Poller::new()?);
            let (reg_tx, reg_rx) = std::sync::mpsc::channel::<Conn>();
            let handle = PollerHandle::new(reg_tx, Arc::clone(&poller));
            let thread = {
                let poller = Arc::clone(&poller);
                let handle = handle.clone();
                let pool_tx = pool_tx.clone();
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("qid-poller-{shard}"))
                    .spawn(move || poller_loop(shard, poller, reg_rx, pool_tx, handle, state))
                    .expect("spawn poller thread")
            };
            pollers.push(poller);
            handles.push(handle);
            poller_threads.push(thread);
        }
        // Each shard owns a sender clone; drop the original so the
        // worker queue actually closes when the shards exit (a live
        // local clone would leave `pool.shutdown()` joining workers
        // that never see the disconnect).
        drop(pool_tx);
        let _ = self.state.pollers.set(pollers.clone());
        let metrics_thread = self.metrics_listener.map(|listener| {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("qid-metrics".to_string())
                .spawn(move || obs::metrics_listener_loop(listener, state))
                .expect("spawn metrics thread")
        });
        // Background revalidation (`--sweep-ms`): one thread walking
        // the registry on a fixed cadence, refreshing stale or appended
        // entries ahead of traffic. It naps in short slices so shutdown
        // is observed within ~50 ms rather than a full sweep interval.
        let sweeper_thread = (self.sweep_ms > 0).then(|| {
            let state = Arc::clone(&self.state);
            let interval = std::time::Duration::from_millis(self.sweep_ms);
            std::thread::Builder::new()
                .name("qid-sweeper".to_string())
                .spawn(move || {
                    let nap = std::time::Duration::from_millis(50).min(interval);
                    let mut next = std::time::Instant::now() + interval;
                    while !state.is_shutting_down() {
                        if std::time::Instant::now() >= next {
                            state.registry.sweep();
                            next = std::time::Instant::now() + interval;
                        }
                        std::thread::sleep(nap);
                    }
                })
                .expect("spawn sweeper thread")
        });
        // Unknown accept errors are retried with backoff this many
        // times before giving up: a resident service must survive
        // transient failures (fd exhaustion, aborted handshakes), but
        // a permanently broken listener must not spin forever.
        let mut consecutive_errors = 0u32;
        let mut result = Ok(());
        let mut next_shard = 0usize;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => {
                    consecutive_errors = 0;
                    conn
                }
                // A client that disconnected between SYN and accept is
                // its problem, not the daemon's.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue;
                }
                Err(e) => {
                    if self.state.is_shutting_down() {
                        break;
                    }
                    consecutive_errors += 1;
                    if consecutive_errors < 16 {
                        // e.g. EMFILE: wait for connections to close.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        continue;
                    }
                    // Raise the flag so the poller and workers drain
                    // instead of spinning; keep the error for the
                    // caller.
                    self.state.shutdown.store(true, Ordering::SeqCst);
                    result = Err(e);
                    break;
                }
            };
            if self.state.is_shutting_down() {
                break; // the wake-up connection (or a late client)
            }
            self.state
                .metrics
                .connections
                .fetch_add(1, Ordering::Relaxed);
            if self.state.max_conns != 0
                && self.state.live_conns.load(Ordering::Relaxed) >= self.state.max_conns as u64
            {
                // Admission control: answer a structured `too_busy`
                // (best-effort — the socket is fresh, so one small
                // write virtually always lands) and close, instead of
                // accepting until EMFILE stalls the whole listener.
                self.state
                    .metrics
                    .rejected_busy
                    .fetch_add(1, Ordering::Relaxed);
                if self.state.obs.log_json() {
                    obs::log_rejection("too_busy");
                }
                let mut out = Vec::new();
                push_response(
                    &mut out,
                    &Response::TooBusy {
                        max_conns: self.state.max_conns,
                    },
                );
                let _ = stream.set_nonblocking(true);
                let _ = (&stream).write(&out);
                continue; // dropped → closed
            }
            let Some(mut conn) = Conn::new(stream, &self.state.limits) else {
                continue;
            };
            conn.live = Some(LiveGuard::new(Arc::clone(&self.state.live_conns)));
            // Fresh connections go through a poller too: readiness is
            // level-triggered, so a request that already arrived fires
            // the moment the registration lands. Round-robin keeps the
            // shards balanced without coordination.
            handles[next_shard].register(conn);
            next_shard = (next_shard + 1) % handles.len();
        }
        // Drain, in dependency order: wake and join every poller shard
        // (each closes its idle connections and stops dispatching),
        // then close the pool queue and join the workers (finishing
        // every dispatched request). Workers trying to re-register
        // after their shard exited drop their connection — EOF, as
        // drained.
        for poller in &pollers {
            let _ = poller.notify();
        }
        drop(handles);
        for thread in poller_threads {
            let _ = thread.join();
        }
        pool.shutdown();
        if let Some(thread) = sweeper_thread {
            let _ = thread.join();
        }
        if let Some(thread) = metrics_thread {
            // The exposition accept loop may be parked in accept();
            // poke it so it can observe the shutdown flag. (The
            // accept-error shutdown path raises the flag without going
            // through `initiate_shutdown`, so poke here too.)
            if let Some(addr) = self.state.metrics_addr {
                let _ = TcpStream::connect(connectable(addr));
            }
            let _ = thread.join();
        }
        result
    }

    /// Serves on a background thread; the returned handle exposes the
    /// address and joins the accept loop.
    pub fn spawn(self) -> RunningServer {
        let addr = self.local_addr();
        let state = self.state();
        let handle = std::thread::Builder::new()
            .name("qid-server-accept".to_string())
            .spawn(move || self.serve())
            .expect("spawn server thread");
        RunningServer {
            addr,
            state,
            handle,
        }
    }
}

/// A server running on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    handle: std::thread::JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (registry + metrics).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Waits for the accept loop to exit (after a `shutdown` request).
    pub fn join(self) -> io::Result<()> {
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

impl ServerState {
    /// Decodes and answers one complete request line, appending the
    /// encoded response (plus newline) to `out`. Returns `true` when
    /// the line was a `shutdown` request — the caller flushes and
    /// raises the flag.
    ///
    /// A plain `check` over a resident, freshness-checked entry is
    /// answered by the zero-allocation fast path (see
    /// [`crate::fastpath`]) using the caller's per-connection
    /// `scratch` arena; every other line takes the general
    /// decode → dispatch → encode path. Public so integration tests
    /// (the counting-allocator test in particular) can drive the exact
    /// request path in-process.
    pub fn answer_line(&self, bytes: &[u8], scratch: &mut Scratch, out: &mut Vec<u8>) -> bool {
        let started = Instant::now();
        let out_start = out.len();
        let Ok(line) = std::str::from_utf8(bytes) else {
            self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            push_response(
                out,
                &Response::Error {
                    message: "request line is not valid UTF-8".to_string(),
                },
            );
            self.obs.note(
                &mut scratch.spans,
                obs::CMD_NONE,
                obs::OUTCOME_PROTOCOL,
                0,
                started.elapsed(),
                bytes.len(),
                out.len() - out_start,
            );
            return false;
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return false;
        }
        if crate::fastpath::try_answer_check(self, trimmed, scratch, out) {
            // The fast path's span is captured here (not inside it):
            // the memoised key hash is a plain field read, so nothing
            // on this branch allocates.
            let key_hash = scratch.memo_key_hash();
            self.obs.note(
                &mut scratch.spans,
                obs::CMD_CHECK,
                obs::OUTCOME_OK,
                key_hash,
                started.elapsed(),
                bytes.len(),
                out.len() - out_start,
            );
            return false;
        }
        let (response, command, is_error) = match Request::decode(trimmed) {
            Ok(request) => {
                let command = request.command_name();
                let shutdown = matches!(request, Request::Shutdown);
                let response = handle_request(&request, self);
                let is_error = matches!(response, Response::Error { .. });
                // The general path may allocate freely, so hashing the
                // dataset key (a canonicalising operation) is fine.
                let key_hash = request.dataset().map_or(0, |ds| CacheKey::of(ds).fnv64());
                if shutdown {
                    self.metrics.record(command, started.elapsed(), is_error);
                    push_response(out, &response);
                    self.note_general(
                        scratch, command, is_error, key_hash, started, bytes, out, out_start,
                    );
                    return true;
                }
                (response, Some((command, key_hash)), is_error)
            }
            Err(message) => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                (Response::Error { message }, None, true)
            }
        };
        push_response(out, &response);
        match command {
            Some((command, key_hash)) => {
                self.metrics.record(command, started.elapsed(), is_error);
                self.note_general(
                    scratch, command, is_error, key_hash, started, bytes, out, out_start,
                );
            }
            None => {
                self.obs.note(
                    &mut scratch.spans,
                    obs::CMD_NONE,
                    obs::OUTCOME_PROTOCOL,
                    0,
                    started.elapsed(),
                    bytes.len(),
                    out.len() - out_start,
                );
            }
        }
        false
    }

    /// Span capture for a decoded general-path request.
    #[allow(clippy::too_many_arguments)]
    fn note_general(
        &self,
        scratch: &mut Scratch,
        command: &str,
        is_error: bool,
        key_hash: u64,
        started: Instant,
        bytes: &[u8],
        out: &[u8],
        out_start: usize,
    ) {
        let outcome = if is_error {
            obs::OUTCOME_ERROR
        } else {
            obs::OUTCOME_OK
        };
        self.obs.note(
            &mut scratch.spans,
            obs::command_code(command),
            outcome,
            key_hash,
            started.elapsed(),
            bytes.len(),
            out.len() - out_start,
        );
    }

    /// Wake epilogue: stamps the write-phase duration on every span
    /// captured during this poller wake, publishes them to the trace
    /// ring, and runs slow-request detection. Public so the
    /// counting-allocator test can drive the exact per-wake path.
    pub fn finish_wake(&self, scratch: &mut Scratch, write: Duration) {
        self.obs.publish_wake(&mut scratch.spans, write);
    }

    /// Answers (and counts) a request line that crossed
    /// `--max-line-bytes`. The line was never buffered whole — the
    /// framer discarded it in `O(cap)` memory — and the connection
    /// stays usable.
    pub(crate) fn on_oversize_line(&self, scratch: &mut Scratch, out: &mut Vec<u8>) {
        let started = Instant::now();
        let out_start = out.len();
        self.metrics
            .rejected_oversize
            .fetch_add(1, Ordering::Relaxed);
        push_response(
            out,
            &Response::LineTooLong {
                limit: self.limits.max_line_bytes,
            },
        );
        self.obs.note(
            &mut scratch.spans,
            obs::CMD_NONE,
            obs::OUTCOME_OVERSIZE,
            0,
            started.elapsed(),
            0,
            out.len() - out_start,
        );
        if self.obs.log_json() {
            obs::log_rejection("oversize_line");
        }
    }

    /// Answers (and counts) a request rejected by the per-connection
    /// `--max-rps` token bucket, before any decoding work was spent on
    /// it.
    pub(crate) fn on_rate_limited(&self, scratch: &mut Scratch, out: &mut Vec<u8>) {
        let started = Instant::now();
        let out_start = out.len();
        self.metrics.rejected_rate.fetch_add(1, Ordering::Relaxed);
        push_response(
            out,
            &Response::RateLimited {
                max_rps: self.limits.max_rps.unwrap_or(0),
            },
        );
        self.obs.note(
            &mut scratch.spans,
            obs::CMD_NONE,
            obs::OUTCOME_RATE_LIMITED,
            0,
            started.elapsed(),
            0,
            out.len() - out_start,
        );
        if self.obs.log_json() {
            obs::log_rejection("rate_limited");
        }
    }

    /// Counts request bytes drained off client sockets (the server
    /// side of a load harness's sent-byte accounting).
    pub(crate) fn add_bytes_read(&self, n: usize) {
        self.metrics
            .bytes_read
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Counts response bytes successfully written back to clients.
    pub(crate) fn add_bytes_written(&self, n: usize) {
        self.metrics
            .bytes_written
            .fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// Dispatches one decoded request against the shared state.
///
/// A `batch` request shares one `EntryCache` across its
/// sub-commands, so `k` sub-commands over one dataset cost exactly one
/// registry lookup-or-build; every other request gets a throwaway
/// cache (one lookup either way).
pub fn handle_request(request: &Request, state: &ServerState) -> Response {
    match request {
        Request::Batch { requests } => {
            let mut cache = EntryCache::default();
            let results = requests
                .iter()
                .map(|sub| {
                    // Sub-commands are individually metered under their
                    // own names; the enclosing line is metered as
                    // `batch` by the connection loop.
                    let started = Instant::now();
                    let response = match sub {
                        // Defense in depth: `Request::decode` already
                        // rejects these as sub-commands.
                        Request::Batch { .. } | Request::Shutdown => Response::Error {
                            message: format!(
                                "{:?} is not allowed as a batch sub-command",
                                sub.command_name()
                            ),
                        },
                        other => dispatch(other, state, &mut cache),
                    };
                    let is_error = matches!(response, Response::Error { .. });
                    state
                        .metrics
                        .record(sub.command_name(), started.elapsed(), is_error);
                    response
                })
                .collect();
            Response::Batch { results }
        }
        other => dispatch(other, state, &mut EntryCache::default()),
    }
}

/// Resolved registry entries shared across the sub-commands of one
/// batch, keyed by cache key. A cached `Arc<Entry>` is reused without
/// touching the registry again (no second hit/miss is recorded — the
/// batch paid one resolution); a materialisation upgrade replaces the
/// cached pointer so later sub-commands see the upgraded entry.
#[derive(Default)]
struct EntryCache {
    entries: std::collections::HashMap<CacheKey, Arc<Entry>>,
}

impl EntryCache {
    /// The entry for `ds`, loading it stream-mode on first use (the
    /// sample suffices for every non-materialising command).
    fn sample_entry(&mut self, state: &ServerState, ds: &DatasetRef) -> Result<Arc<Entry>, String> {
        let key = CacheKey::of(ds);
        if let Some(entry) = self.entries.get(&key) {
            return Ok(Arc::clone(entry));
        }
        let entry = state.registry.get_or_load(ds, LoadMode::Stream).0?;
        self.entries.insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// The entry for `ds` with an explicit load mode (the `load`
    /// command), updating the cache with whatever came back.
    fn loaded_entry(
        &mut self,
        state: &ServerState,
        ds: &DatasetRef,
        mode: LoadMode,
    ) -> (Result<Arc<Entry>, String>, bool) {
        let (result, cached) = match mode {
            LoadMode::Stream => state.registry.get_or_load(ds, mode),
            // An explicit memory-mode load exists to pre-materialise:
            // upgrade a resident sample-only entry instead of handing
            // it back untouched.
            LoadMode::Memory => state.registry.get_or_load_materialised(ds),
        };
        if let Ok(entry) = &result {
            self.entries.insert(CacheKey::of(ds), Arc::clone(entry));
        }
        (result, cached)
    }
}

/// Dispatches one non-batch request, resolving entries through `cache`.
fn dispatch(request: &Request, state: &ServerState, cache: &mut EntryCache) -> Response {
    match request {
        Request::Batch { .. } => unreachable!("handled by handle_request"),
        Request::Load { ds, mode } => match cache.loaded_entry(state, ds, *mode) {
            (Ok(entry), cached) => Response::Loaded {
                rows: entry.rows,
                attrs: entry.attrs,
                sample: entry.filter.sample().n_rows(),
                cached,
            },
            (Err(message), _) => Response::Error { message },
        },
        Request::Audit { ds, max_key_size } => with_entry(state, ds, cache, |entry| {
            let sample = entry.filter.sample();
            let keys = enumerate_minimal_keys(
                sample,
                LatticeConfig {
                    max_size: *max_key_size,
                    max_candidates: MAX_LATTICE_CANDIDATES,
                },
            );
            let keys = keys
                .into_iter()
                .map(|key| {
                    let sizes = group_sizes(sample, &key);
                    let unique = sizes.iter().filter(|&&s| s == 1).count();
                    let frac = if sample.n_rows() == 0 {
                        0.0
                    } else {
                        unique as f64 / sample.n_rows() as f64
                    };
                    let names = key
                        .iter()
                        .map(|&a| sample.schema().attr(a).name().to_string())
                        .collect();
                    (names, frac)
                })
                .collect();
            Response::Audit { keys }
        }),
        Request::Key { ds } => with_entry(state, ds, cache, |entry| {
            let sample = entry.filter.sample();
            let result = GreedyRefineMinKey::run_on_sample(sample);
            Response::Key {
                attrs: result
                    .attrs
                    .iter()
                    .map(|&a| sample.schema().attr(a).name().to_string())
                    .collect(),
                complete: result.complete,
            }
        }),
        Request::Check { ds, attrs } => with_entry(state, ds, cache, |entry| {
            use qid_core::filter::{FilterDecision, SeparationFilter};
            let sample = entry.filter.sample();
            match resolve_attr_names(sample.schema(), sample.n_attrs(), attrs) {
                Ok(resolved) => Response::Check {
                    attrs: resolved
                        .attrs
                        .iter()
                        .map(|&a| sample.schema().attr(a).name().to_string())
                        .collect(),
                    accept: entry.filter.query(&resolved.attrs) == FilterDecision::Accept,
                },
                Err(message) => Response::Error { message },
            }
        }),
        Request::Sketch { ds, attrs } => match cache.sample_entry(state, ds) {
            Ok(entry) => {
                let sample = entry.filter.sample();
                let resolved = match resolve_attr_names(sample.schema(), sample.n_attrs(), attrs) {
                    Ok(resolved) => resolved,
                    Err(message) => return Response::Error { message },
                };
                match state.registry.sketch_for(ds, &entry) {
                    Ok(sketch) => Response::Sketch {
                        attrs: resolved
                            .attrs
                            .iter()
                            .map(|&a| sample.schema().attr(a).name().to_string())
                            .collect(),
                        estimate: sketch.query(&resolved.attrs).estimate(),
                        raw_pairs: sketch.raw_count(&resolved.attrs),
                        sample_pairs: sketch.sample_size(),
                        alpha: SKETCH_ALPHA,
                        rel_error: SKETCH_REL_EPS,
                        k: SKETCH_K,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            Err(message) => Response::Error { message },
        },
        Request::Mask { ds, budget } => {
            if *budget == 0 {
                return Response::Error {
                    message: "mask budget must be ≥ 1".to_string(),
                };
            }
            with_entry(state, ds, cache, |entry| {
                // Masking plans on a Θ(m/√ε) sample internally, so a
                // stream-mode entry's retained sample is exactly the
                // input it needs — no materialisation. A memory-loaded
                // entry plans against the full data (its internal
                // sampling then draws from all n rows).
                let data = entry
                    .dataset
                    .as_ref()
                    .unwrap_or_else(|| entry.filter.sample());
                let params = qid_core::filter::FilterParams::new(ds.eps);
                let plan = qid_core::masking::plan_masking(data, params, *budget, ds.seed);
                Response::Mask {
                    suppressed: plan
                        .suppressed
                        .iter()
                        .map(|&a| data.schema().attr(a).name().to_string())
                        .collect(),
                    residual_key_size: plan.residual_key_size,
                    full_data: entry.dataset.is_some(),
                }
            })
        }
        Request::Stats { ds } => match cache.sample_entry(state, ds) {
            Ok(entry) => stats_response(&entry),
            Err(message) => Response::Error { message },
        },
        Request::Unload { ds } => {
            // Drop any batch-scoped resolution too, so a later
            // sub-command re-resolves instead of reviving the entry.
            cache.entries.remove(&CacheKey::of(ds));
            Response::Unloaded {
                existed: state.registry.unload(ds),
            }
        }
        Request::UnloadAll => {
            cache.entries.clear();
            Response::Unloaded {
                existed: state.registry.unload_all() > 0,
            }
        }
        Request::Metrics => Response::Metrics(state.metrics.report(
            state.registry.snapshot(),
            state.obs.uptime_seconds(),
            state.obs.shard_connections(),
        )),
        Request::Trace {
            last,
            command,
            min_us,
        } => Response::Trace {
            spans: state
                .obs
                .trace(*last, command.as_deref().map(obs::command_code), *min_us),
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Answers `stats` from the resident artifact: exact dictionary sizes
/// when the dataset is materialised, KMV estimates from the per-column
/// sketches otherwise. Every entry carries its column sketches (the
/// registry's persistence format guarantees it since version 2), so a
/// `stats` on a stream entry can never silently materialise the whole
/// dataset — `cache_upgrades` stays at 0 unless `load --mode memory`
/// asks for it.
fn stats_response(entry: &Entry) -> Response {
    fn exact_stats(dataset: &qid_dataset::Dataset) -> Response {
        Response::Stats {
            rows: dataset.n_rows(),
            exact: true,
            columns: (0..dataset.n_attrs())
                .map(|a| {
                    let attr = qid_dataset::AttrId::new(a);
                    (
                        dataset.schema().attr(attr).name().to_string(),
                        dataset.column(attr).dict_size(),
                    )
                })
                .collect(),
        }
    }
    if let Some(dataset) = &entry.dataset {
        return exact_stats(dataset);
    }
    let cols = &entry.cols;
    let schema = entry.filter.sample().schema();
    Response::Stats {
        rows: entry.rows,
        exact: cols.iter().all(qid_core::sketch::DistinctSketch::is_exact),
        columns: cols
            .iter()
            .enumerate()
            .map(|(a, sk)| {
                (
                    schema.attr(qid_dataset::AttrId::new(a)).name().to_string(),
                    sk.estimate(),
                )
            })
            .collect(),
    }
}

/// Runs `f` on the cached entry, resolving through the batch-scoped
/// cache (stream-mode load on a miss).
fn with_entry(
    state: &ServerState,
    ds: &DatasetRef,
    cache: &mut EntryCache,
    f: impl FnOnce(&Entry) -> Response,
) -> Response {
    match cache.sample_entry(state, ds) {
        Ok(entry) => f(&entry),
        Err(message) => Response::Error { message },
    }
}
