//! A fixed worker thread pool fed over an `mpsc` channel.
//!
//! Connections are the unit of work: the accept loop sends each
//! accepted socket into the channel and one of `N` resident workers
//! serves every request on it. Dropping the sender is the shutdown
//! signal — workers drain whatever is already queued, then exit, which
//! is exactly the "graceful shutdown drains in-flight work" contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool. Jobs submitted after [`WorkerPool::shutdown`] are
/// rejected; jobs submitted before are always run.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` resident threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("qid-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Submits a job; returns `false` if the pool is shut down.
    pub fn execute(&self, job: Job) -> bool {
        match &self.sender {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// A cloneable submission handle, for jobs that re-enqueue
    /// themselves (e.g. idle connections yielding their worker).
    /// Holding one keeps the queue open, so jobs must drop it when
    /// they decide not to requeue — [`WorkerPool::shutdown`] drains
    /// only once every sender is gone.
    pub fn sender(&self) -> Option<Sender<Job>> {
        self.sender.clone()
    }

    /// Stops accepting jobs, drains the queue, joins every worker.
    pub fn shutdown(&mut self) {
        self.sender.take(); // closes the channel
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A [`WorkerPool`] submission handle that maintains a shared
/// queue-depth gauge: the counter goes up when a job is enqueued and
/// down when a worker starts running it, so its value is the number
/// of jobs waiting for a worker — what the `qid_worker_queue_depth`
/// Prometheus gauge exports. Cloneable like the raw sender, with the
/// same keep-the-queue-open semantics.
#[derive(Clone, Debug)]
pub struct GaugedSender {
    tx: Sender<Job>,
    depth: Arc<AtomicU64>,
}

impl GaugedSender {
    /// Wraps a pool sender with a shared depth counter (typically the
    /// observability hub's).
    pub fn new(tx: Sender<Job>, depth: Arc<AtomicU64>) -> GaugedSender {
        GaugedSender { tx, depth }
    }

    /// Current queued-job count.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Submits a job; returns `false` (and leaves the gauge untouched)
    /// if the pool is shut down.
    pub fn send(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let depth = Arc::clone(&self.depth);
        let wrapped: Job = Box::new(move || {
            depth.fetch_sub(1, Ordering::Relaxed);
            job();
        });
        if self.tx.send(wrapped).is_ok() {
            true
        } else {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            false
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while popping, never while running a job.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: drain complete
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })));
        }
        drop(pool); // shutdown drains the queue
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn shutdown_drains_in_flight_work() {
        let mut pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        // Rejected after shutdown.
        assert!(!pool.execute(Box::new(|| {})));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn gauged_sender_tracks_queue_depth() {
        let mut pool = WorkerPool::new(1);
        let depth = Arc::new(AtomicU64::new(0));
        let tx = GaugedSender::new(pool.sender().unwrap(), Arc::clone(&depth));

        // Park the single worker so queued jobs stay queued.
        let (gate_tx, gate_rx) = channel::<()>();
        assert!(tx.send(move || {
            let _ = gate_rx.recv();
        }));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            assert!(tx.send(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // The parked job may or may not have been dequeued yet; the 5
        // behind it cannot have been.
        assert!(tx.depth() >= 5, "depth {} should be >= 5", tx.depth());
        gate_tx.send(()).unwrap();
        drop(tx);
        pool.shutdown(); // drains the queue
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        assert_eq!(depth.load(Ordering::SeqCst), 0, "gauge returns to zero");
    }
}
