//! Lock-free server counters: per-command traffic and latency sums.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::proto::{CommandStats, MetricsReport};

/// Wire names of all commands, in the fixed order `metrics` reports.
pub const COMMAND_NAMES: [&str; 8] = [
    "load", "audit", "key", "check", "mask", "stats", "metrics", "shutdown",
];

#[derive(Debug, Default)]
struct CommandCounters {
    count: AtomicU64,
    errors: AtomicU64,
    latency_us: AtomicU64,
}

/// One counter block per command plus protocol-level failures. All
/// updates are `Relaxed` atomics — these are statistics, not
/// synchronisation.
#[derive(Debug, Default)]
pub struct Metrics {
    per_command: [CommandCounters; COMMAND_NAMES.len()],
    /// Lines that failed to parse as any request.
    pub protocol_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request.
    pub fn record(&self, command: &str, elapsed: Duration, is_error: bool) {
        let Some(idx) = COMMAND_NAMES.iter().position(|&n| n == command) else {
            return;
        };
        let c = &self.per_command[idx];
        c.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        c.latency_us.fetch_add(
            elapsed.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Snapshots per-command stats (cache fields are filled by the
    /// server from the registry).
    pub fn command_stats(&self) -> Vec<CommandStats> {
        COMMAND_NAMES
            .iter()
            .zip(&self.per_command)
            .map(|(&name, c)| CommandStats {
                name: name.to_string(),
                count: c.count.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                latency_us: c.latency_us.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Builds the full `metrics` payload given registry counters.
    pub fn report(&self, cache_hits: u64, cache_misses: u64, datasets: usize) -> MetricsReport {
        MetricsReport {
            cache_hits,
            cache_misses,
            datasets,
            commands: self.command_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = Metrics::new();
        m.record("audit", Duration::from_micros(100), false);
        m.record("audit", Duration::from_micros(50), true);
        m.record("nonsense", Duration::from_micros(1), false); // ignored
        let stats = m.command_stats();
        let audit = stats.iter().find(|c| c.name == "audit").unwrap();
        assert_eq!(audit.count, 2);
        assert_eq!(audit.errors, 1);
        assert_eq!(audit.latency_us, 150);
        let load = stats.iter().find(|c| c.name == "load").unwrap();
        assert_eq!(load.count, 0);
    }

    #[test]
    fn report_includes_cache_counters() {
        let m = Metrics::new();
        let r = m.report(5, 2, 1);
        assert_eq!(r.cache_hits, 5);
        assert_eq!(r.cache_misses, 2);
        assert_eq!(r.datasets, 1);
        assert_eq!(r.commands.len(), COMMAND_NAMES.len());
    }
}
