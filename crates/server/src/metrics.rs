//! Lock-free server counters: per-command traffic, latency sums, and
//! fixed-size log₂ latency histograms for server-side p50/p99.
//!
//! # Bucket scheme
//!
//! Each command owns [`LATENCY_BUCKETS`] atomic counters per epoch. A
//! latency of `t` microseconds lands in bucket
//! `floor(log2(max(t, 1)))`, clamped to the last bucket — so bucket 0
//! covers 0–1 µs, bucket 1 covers 2–3 µs, bucket 10 covers ~1–2 ms,
//! and the top bucket (27) absorbs everything beyond ~2.2 minutes.
//! Quantiles are reported as the *upper edge* of the bucket containing
//! the requested rank, which overestimates the true quantile by at
//! most 2× — except for ranks landing in the open-ended top bucket,
//! whose ~4.5-minute edge *under*-reports anything slower — while
//! costing a fixed few hundred bytes per command instead of an
//! unbounded reservoir. The same scheme is documented in
//! `docs/ARCHITECTURE.md`.
//!
//! # Sliding window (two-epoch rotation)
//!
//! Quantiles describe *recent* traffic, not process history: each
//! histogram keeps **two** epochs of buckets. Records land in the
//! current epoch; quantiles sum both; every [`HISTOGRAM_EPOCH`] the
//! poller thread calls [`Metrics::rotate_histograms`], which zeroes
//! the older epoch and makes it current. A sample therefore influences
//! quantiles for one to two epochs and then vanishes — a long-running
//! server's `p99_us` reflects the last 1–2 minutes, not a latency
//! spike from last week. Counts, error counts and latency *sums*
//! remain cumulative since process start.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::proto::{CommandStats, MetricsReport};
use crate::registry::RegistrySnapshot;

/// Wire names of all commands, in the fixed order `metrics` reports.
/// Batch sub-commands are recorded under their own names *and* the
/// enclosing line under `batch`.
pub const COMMAND_NAMES: [&str; 12] = [
    "load", "audit", "key", "check", "sketch", "mask", "stats", "batch", "unload", "metrics",
    "shutdown", "trace",
];

/// Buckets per command histogram: powers of two from 1 µs up to
/// `2^27 µs ≈ 134 s`, the last bucket open-ended.
pub const LATENCY_BUCKETS: usize = 28;

/// How long one histogram epoch lasts. Quantiles cover the current
/// epoch plus the previous one, so they describe the last
/// `HISTOGRAM_EPOCH`–`2×HISTOGRAM_EPOCH` of traffic.
pub const HISTOGRAM_EPOCH: Duration = Duration::from_secs(60);

/// Upper edge (inclusive, in µs) of log₂ bucket `i` — what quantiles
/// report, and what the Prometheus endpoint renders as `le` edges
/// (converted to seconds).
pub(crate) fn bucket_upper_us(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

/// One command's sliding-window log₂ latency histogram: two epochs of
/// [`LATENCY_BUCKETS`] buckets, rotated by [`LatencyHistogram::rotate`],
/// plus a never-rotated cumulative copy for Prometheus exposition
/// (Prometheus histograms are cumulative since process start; the
/// scraper computes windows server-side).
#[derive(Debug)]
pub struct LatencyHistogram {
    epochs: [[AtomicU64; LATENCY_BUCKETS]; 2],
    /// Which epoch records land in (0 or 1).
    current: AtomicUsize,
    /// Cumulative-since-start bucket counts (never rotated).
    cumulative: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            epochs: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            current: AtomicUsize::new(0),
            cumulative: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Index of the bucket covering `us` microseconds.
    fn bucket_index(us: u64) -> usize {
        (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Upper edge (inclusive, in µs) of bucket `i` — what quantiles
    /// report.
    fn bucket_upper_us(i: usize) -> u64 {
        bucket_upper_us(i)
    }

    /// Records one observation into the current epoch and the
    /// cumulative copy.
    pub fn record(&self, us: u64) {
        let bucket = Self::bucket_index(us);
        let epoch = self.current.load(Ordering::Relaxed) & 1;
        self.epochs[epoch][bucket].fetch_add(1, Ordering::Relaxed);
        self.cumulative[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative-since-start bucket counts.
    pub(crate) fn cumulative_counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.cumulative[i].load(Ordering::Relaxed))
    }

    /// Slides the window: zeroes the older epoch and makes it current.
    /// Samples recorded before the *previous* rotation stop
    /// influencing quantiles; samples from the last epoch remain
    /// visible until the next rotation. (Concurrent `record`s may land
    /// in either epoch during the swap — the histogram is statistics,
    /// not synchronisation.)
    pub fn rotate(&self) {
        let next = 1 - (self.current.load(Ordering::Relaxed) & 1);
        for bucket in &self.epochs[next] {
            bucket.store(0, Ordering::Relaxed);
        }
        self.current.store(next, Ordering::Relaxed);
    }

    /// The quantile `q ∈ (0, 1]` over both epochs (the sliding
    /// window), as the upper edge of its bucket; 0 when the window is
    /// empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = (0..LATENCY_BUCKETS)
            .map(|i| {
                self.epochs[0][i].load(Ordering::Relaxed)
                    + self.epochs[1][i].load(Ordering::Relaxed)
            })
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_us(i);
            }
        }
        Self::bucket_upper_us(LATENCY_BUCKETS - 1)
    }
}

#[derive(Debug, Default)]
struct CommandCounters {
    count: AtomicU64,
    errors: AtomicU64,
    latency_us: AtomicU64,
    histogram: LatencyHistogram,
}

/// One counter block per command plus protocol-level failures. All
/// updates are `Relaxed` atomics — these are statistics, not
/// synchronisation.
#[derive(Debug, Default)]
pub struct Metrics {
    per_command: [CommandCounters; COMMAND_NAMES.len()],
    /// Lines that failed to parse as any request.
    pub protocol_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request lines rejected for crossing `--max-line-bytes`.
    pub rejected_oversize: AtomicU64,
    /// Request lines rejected by the per-connection `--max-rps`
    /// token bucket.
    pub rejected_rate: AtomicU64,
    /// Connections turned away at accept time by `--max-conns`
    /// admission control (answered `too_busy`, then closed).
    pub rejected_busy: AtomicU64,
    /// Responses that could not be flushed in one nonblocking write
    /// and were parked with their connection for the owning poller to
    /// finish — the counter the slow-reader fault test watches to
    /// prove the readiness-driven write path engaged.
    pub writes_parked: AtomicU64,
    /// Request bytes drained off client sockets, counted at the read
    /// syscall — the server-side cross-check for a load harness's
    /// sent-byte accounting.
    pub bytes_read: AtomicU64,
    /// Response bytes successfully written back to clients.
    pub bytes_written: AtomicU64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request.
    pub fn record(&self, command: &str, elapsed: Duration, is_error: bool) {
        let Some(idx) = COMMAND_NAMES.iter().position(|&n| n == command) else {
            return;
        };
        let c = &self.per_command[idx];
        c.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            c.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        c.latency_us.fetch_add(us, Ordering::Relaxed);
        c.histogram.record(us);
    }

    /// Snapshots per-command stats (cache fields are filled by the
    /// server from the registry).
    pub fn command_stats(&self) -> Vec<CommandStats> {
        COMMAND_NAMES
            .iter()
            .zip(&self.per_command)
            .map(|(&name, c)| CommandStats {
                name: name.to_string(),
                count: c.count.load(Ordering::Relaxed),
                errors: c.errors.load(Ordering::Relaxed),
                latency_us: c.latency_us.load(Ordering::Relaxed),
                p50_us: c.histogram.quantile_us(0.50),
                p99_us: c.histogram.quantile_us(0.99),
            })
            .collect()
    }

    /// Raw `(count, errors, latency_us)` for command index `idx`
    /// (aligned with [`COMMAND_NAMES`]) — the Prometheus counters.
    pub(crate) fn raw_command_counters(&self, idx: usize) -> (u64, u64, u64) {
        let c = &self.per_command[idx];
        (
            c.count.load(Ordering::Relaxed),
            c.errors.load(Ordering::Relaxed),
            c.latency_us.load(Ordering::Relaxed),
        )
    }

    /// Cumulative-since-start latency bucket counts for command index
    /// `idx` (aligned with [`COMMAND_NAMES`]).
    pub(crate) fn cumulative_buckets(&self, idx: usize) -> [u64; LATENCY_BUCKETS] {
        self.per_command[idx].histogram.cumulative_counts()
    }

    /// Slides every command histogram's window forward one epoch (see
    /// [`LatencyHistogram::rotate`]). Called by the poller thread every
    /// [`HISTOGRAM_EPOCH`].
    pub fn rotate_histograms(&self) {
        for c in &self.per_command {
            c.histogram.rotate();
        }
    }

    /// Builds the full `metrics` payload given the registry's lifecycle
    /// counters, the server's uptime, and the per-poller-shard
    /// connection gauges (in shard order).
    pub fn report(
        &self,
        registry: RegistrySnapshot,
        uptime_seconds: u64,
        poller_connections: Vec<u64>,
    ) -> MetricsReport {
        MetricsReport {
            uptime_seconds,
            version: crate::obs::BUILD_VERSION.to_string(),
            cache_hits: registry.hits,
            cache_misses: registry.misses,
            cache_disk_hits: registry.disk_hits,
            cache_evictions: registry.evictions,
            cache_stale_rebuilds: registry.stale_rebuilds,
            cache_upgrades: registry.upgrades,
            cache_append_updates: registry.append_updates,
            cache_sweep_refreshes: registry.sweep_refreshes,
            cache_bytes: registry.resident_bytes,
            datasets: registry.datasets,
            restarts: registry.restarts,
            wal_replayed_events: registry.wal_replayed_events,
            connections: self.connections.load(Ordering::Relaxed),
            rejected_oversize: self.rejected_oversize.load(Ordering::Relaxed),
            rejected_rate: self.rejected_rate.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            writes_parked: self.writes_parked.load(Ordering::Relaxed),
            poller_connections,
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            commands: self.command_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = Metrics::new();
        m.record("audit", Duration::from_micros(100), false);
        m.record("audit", Duration::from_micros(50), true);
        m.record("nonsense", Duration::from_micros(1), false); // ignored
        let stats = m.command_stats();
        let audit = stats.iter().find(|c| c.name == "audit").unwrap();
        assert_eq!(audit.count, 2);
        assert_eq!(audit.errors, 1);
        assert_eq!(audit.latency_us, 150);
        let load = stats.iter().find(|c| c.name == "load").unwrap();
        assert_eq!(load.count, 0);
        assert_eq!(load.p50_us, 0, "no observations, no quantile");
    }

    #[test]
    fn report_includes_registry_snapshot() {
        let m = Metrics::new();
        let r = m.report(
            RegistrySnapshot {
                hits: 5,
                misses: 2,
                disk_hits: 1,
                evictions: 3,
                stale_rebuilds: 4,
                upgrades: 2,
                append_updates: 6,
                sweep_refreshes: 7,
                resident_bytes: 640,
                datasets: 1,
                restarts: 2,
                wal_replayed_events: 9,
            },
            17,
            vec![3, 4],
        );
        assert_eq!(r.uptime_seconds, 17);
        assert_eq!(r.version, crate::obs::BUILD_VERSION);
        assert_eq!(r.cache_hits, 5);
        assert_eq!(r.cache_misses, 2);
        assert_eq!(r.cache_disk_hits, 1);
        assert_eq!(r.cache_evictions, 3);
        assert_eq!(r.cache_stale_rebuilds, 4);
        assert_eq!(r.cache_upgrades, 2);
        assert_eq!(r.cache_append_updates, 6);
        assert_eq!(r.cache_sweep_refreshes, 7);
        assert_eq!(r.cache_bytes, 640);
        assert_eq!(r.datasets, 1);
        assert_eq!(r.restarts, 2);
        assert_eq!(r.wal_replayed_events, 9);
        assert_eq!(r.commands.len(), COMMAND_NAMES.len());
        assert_eq!(r.rejected_oversize, 0);
        assert_eq!(r.rejected_rate, 0);
        assert_eq!(r.rejected_busy, 0);
        assert_eq!(r.poller_connections, vec![3, 4]);
    }

    #[test]
    fn rejection_counters_flow_into_the_report() {
        let m = Metrics::new();
        m.rejected_oversize.fetch_add(3, Ordering::Relaxed);
        m.rejected_rate.fetch_add(5, Ordering::Relaxed);
        m.rejected_busy.fetch_add(7, Ordering::Relaxed);
        m.writes_parked.fetch_add(2, Ordering::Relaxed);
        let r = m.report(RegistrySnapshot::default(), 0, vec![]);
        assert_eq!(r.rejected_oversize, 3);
        assert_eq!(r.rejected_rate, 5);
        assert_eq!(r.rejected_busy, 7);
        assert_eq!(r.writes_parked, 2);
    }

    #[test]
    fn byte_counters_flow_into_the_report() {
        let m = Metrics::new();
        m.bytes_read.fetch_add(1024, Ordering::Relaxed);
        m.bytes_written.fetch_add(2048, Ordering::Relaxed);
        let r = m.report(RegistrySnapshot::default(), 0, vec![]);
        assert_eq!(r.bytes_read, 1024);
        assert_eq!(r.bytes_written, 2048);
    }

    #[test]
    fn rotation_expires_old_epoch_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(100); // bucket 6: upper edge 127 µs
        }
        assert_eq!(h.quantile_us(0.99), 127);
        // One rotation: the samples move to the previous epoch but
        // still count (the window covers both epochs).
        h.rotate();
        assert_eq!(h.quantile_us(0.99), 127, "last epoch still visible");
        // New traffic lands in the fresh current epoch.
        for _ in 0..100 {
            h.record(10_000); // bucket 13: upper edge 16383 µs
        }
        assert_eq!(h.quantile_us(0.99), 16_383, "both epochs blend");
        // Second rotation: the 100 µs samples are two epochs old and
        // stop influencing quantiles entirely.
        h.rotate();
        assert_eq!(h.quantile_us(0.50), 16_383, "only the recent epoch remains");
        // Third rotation with no new traffic: the window empties.
        h.rotate();
        assert_eq!(h.quantile_us(0.99), 0, "a quiet window reports zero");
    }

    #[test]
    fn cumulative_buckets_survive_rotation() {
        let m = Metrics::new();
        m.record("check", Duration::from_micros(100), false);
        m.rotate_histograms();
        m.rotate_histograms();
        m.rotate_histograms();
        let idx = COMMAND_NAMES.iter().position(|&n| n == "check").unwrap();
        assert_eq!(
            m.cumulative_buckets(idx).iter().sum::<u64>(),
            1,
            "rotation must not erase the Prometheus view"
        );
        let (count, errors, latency_us) = m.raw_command_counters(idx);
        assert_eq!((count, errors, latency_us), (1, 0, 100));
    }

    #[test]
    fn metrics_rotation_covers_every_command() {
        let m = Metrics::new();
        m.record("audit", Duration::from_micros(100), false);
        m.rotate_histograms();
        m.rotate_histograms();
        let stats = m.command_stats();
        let audit = stats.iter().find(|c| c.name == "audit").unwrap();
        assert_eq!(audit.count, 1, "counts stay cumulative");
        assert_eq!(audit.p50_us, 0, "quantiles forget rotated-out samples");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            LATENCY_BUCKETS - 1,
            "huge latencies clamp to the open-ended top bucket"
        );
    }

    #[test]
    fn quantiles_report_bucket_upper_edges() {
        let h = LatencyHistogram::default();
        // 99 fast requests (bucket 6: 64–127 µs) and one slow outlier
        // (bucket 13: 8192–16383 µs).
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        assert_eq!(h.quantile_us(0.50), 127);
        assert_eq!(h.quantile_us(0.99), 127, "rank 99 of 100 is still fast");
        assert_eq!(h.quantile_us(1.0), 16_383, "the max sees the outlier");
    }

    #[test]
    fn p50_p99_flow_into_command_stats() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record("key", Duration::from_micros(10), false);
        }
        m.record("key", Duration::from_micros(5_000), false);
        let stats = m.command_stats();
        let key = stats.iter().find(|c| c.name == "key").unwrap();
        assert_eq!(key.p50_us, 15, "bucket 3 covers 8–15 µs");
        // Rank 99 of 100 is the last fast observation, not the outlier.
        assert_eq!(key.p99_us, 15, "p99 stays in the fast band");
        assert!(key.p50_us <= key.p99_us);
    }
}
