//! Attribute-name resolution shared by the server and the CLI.

use qid_dataset::{AttrId, Schema};

/// The outcome of resolving a user-supplied attribute list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedAttrs {
    /// Resolved ids, duplicates removed, first-occurrence order kept.
    pub attrs: Vec<AttrId>,
    /// The specs that were dropped as duplicates, in input order.
    pub duplicates: Vec<String>,
}

/// Resolves attribute specs (names, or indices given as digits) against
/// a schema. Duplicate attributes — whether repeated by name, by index,
/// or one of each — are dropped (keeping the first occurrence) and
/// reported in [`ResolvedAttrs::duplicates`], because feeding `zip,zip`
/// to a separation query silently behaves like `zip` while looking
/// like a 2-attribute key.
pub fn resolve_attr_names(
    schema: &Schema,
    n_attrs: usize,
    specs: &[String],
) -> Result<ResolvedAttrs, String> {
    let mut attrs: Vec<AttrId> = Vec::with_capacity(specs.len());
    let mut duplicates = Vec::new();
    let mut seen = vec![false; n_attrs];
    for spec in specs {
        let spec = spec.trim();
        let attr = schema
            .attr_by_name(spec)
            .or_else(|| {
                spec.parse::<usize>()
                    .ok()
                    .filter(|&i| i < n_attrs)
                    .map(AttrId::new)
            })
            .ok_or_else(|| format!("unknown attribute {spec:?}"))?;
        if seen[attr.index()] {
            duplicates.push(spec.to_string());
        } else {
            seen[attr.index()] = true;
            attrs.push(attr);
        }
    }
    Ok(ResolvedAttrs { attrs, duplicates })
}

/// Splits a comma-separated `--attrs` spec into trimmed pieces.
pub fn split_attr_spec(spec: &str) -> Vec<String> {
    spec.split(',').map(|s| s.trim().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qid_dataset::{DatasetBuilder, Value};

    fn schema() -> qid_dataset::Dataset {
        let mut b = DatasetBuilder::new(["zip", "age", "sex"]);
        b.push_row([Value::Int(1), Value::Int(2), Value::text("F")])
            .unwrap();
        b.finish()
    }

    fn specs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn resolves_names_and_indices() {
        let ds = schema();
        let r = resolve_attr_names(ds.schema(), ds.n_attrs(), &specs(&["sex", "0"])).unwrap();
        assert_eq!(r.attrs, vec![AttrId::new(2), AttrId::new(0)]);
        assert!(r.duplicates.is_empty());
    }

    #[test]
    fn dedups_preserving_order() {
        let ds = schema();
        let r = resolve_attr_names(
            ds.schema(),
            ds.n_attrs(),
            &specs(&["zip", "age", "zip", "age"]),
        )
        .unwrap();
        assert_eq!(r.attrs, vec![AttrId::new(0), AttrId::new(1)]);
        assert_eq!(r.duplicates, specs(&["zip", "age"]));
    }

    #[test]
    fn name_and_index_of_same_attr_are_duplicates() {
        let ds = schema();
        let r = resolve_attr_names(ds.schema(), ds.n_attrs(), &specs(&["zip", "0"])).unwrap();
        assert_eq!(r.attrs, vec![AttrId::new(0)]);
        assert_eq!(r.duplicates, specs(&["0"]));
    }

    #[test]
    fn unknown_attr_is_an_error() {
        let ds = schema();
        let err = resolve_attr_names(ds.schema(), ds.n_attrs(), &specs(&["nope"])).unwrap_err();
        assert!(err.contains("unknown attribute"));
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let ds = schema();
        assert!(resolve_attr_names(ds.schema(), ds.n_attrs(), &specs(&["7"])).is_err());
    }

    #[test]
    fn split_trims() {
        assert_eq!(
            split_attr_spec("zip, age ,sex"),
            specs(&["zip", "age", "sex"])
        );
    }
}
