//! A minimal JSON value type with a hand-rolled parser and writer.
//!
//! The build environment is offline (no serde), and the wire protocol
//! only needs objects, arrays, strings, numbers, booleans and null —
//! so this module implements exactly RFC 8259's value grammar, nothing
//! more. Integers are kept apart from floats so `u64` seeds round-trip
//! exactly (a plain `f64` representation would lose precision above
//! 2⁵³).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a `usize` (non-negative integers only).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a `u64` under the wire's lossless convention:
    /// either an integer, or (for values above `i64::MAX`, which
    /// [`u64_value`] emits as text) a decimal string. The inverse of
    /// [`u64_value`].
    pub fn as_u64_lossless(&self) -> Option<u64> {
        self.as_u64()
            .or_else(|| self.as_str().and_then(|t| t.parse().ok()))
    }

    /// The value as an `f64` (either number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value on one line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                // JSON has no NaN/Infinity; encode them as null.
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// [`write_escaped`] writing UTF-8 bytes straight into a byte buffer —
/// the allocation-free serialisation path. Byte-for-byte identical to
/// the `String` writer (escapes only fire on ASCII bytes, so iterating
/// bytes and iterating chars agree); `escaped_writers_agree` pins that.
pub(crate) fn write_escaped_bytes(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for &b in s.as_bytes() {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            b if b < 0x20 => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(b"\\u00");
                out.push(HEX[(b >> 4) as usize]);
                out.push(HEX[(b & 0xf) as usize]);
            }
            b => out.push(b),
        }
    }
    out.push(b'"');
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest container nesting [`parse`] accepts. The parser recurses per
/// nesting level, so an untrusted line of `[[[[…` could otherwise
/// overflow the worker's stack (an abort, not a catchable panic). The
/// wire protocol needs 3 levels; 128 leaves generous headroom.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Containers nested beyond [`MAX_PARSE_DEPTH`] are rejected.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(format!("nesting deeper than {MAX_PARSE_DEPTH}"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        let v = self.object_inner();
        self.depth -= 1;
        v
    }

    fn object_inner(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        let v = self.array_inner();
        self.depth -= 1;
        v
    }

    fn array_inner(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy runs of plain bytes in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safety of slicing: input is a &str, and we only stop on
                // ASCII bytes, so the boundary is a char boundary.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low surrogate.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined).ok_or("invalid code point")?
                            } else {
                                char::from_u32(cp).ok_or("invalid code point")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid utf-8 in \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Encodes a `u64` losslessly: an integer when it fits `i64`, otherwise
/// a decimal string (so huge seeds round-trip exactly instead of
/// wrapping negative). Decoded by [`Json::as_u64_lossless`]. Used where
/// the full `u64` range is real input — seeds, eps bit patterns, and
/// file stats in persisted metadata; plain counters keep `Json::Int`.
pub fn u64_value(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => s(v.to_string()),
    }
}

/// Convenience: a string value.
pub fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn big_seed_is_exact() {
        let seed = u64::MAX >> 1; // larger than 2^53
        let v = parse(&format!("{seed}")).unwrap();
        assert_eq!(v.as_u64(), Some(seed));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let back = parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let back = parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pair() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,",
            "\"open",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "{'a':1}",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Sibling containers do not accumulate depth.
        let wide = format!("[{}{{}}]", "{},".repeat(MAX_PARSE_DEPTH * 2));
        assert!(parse(&wide).is_ok(), "width is not depth");
        // The limit itself is generous: 100 levels parse fine.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn control_chars_escaped_on_output() {
        let v = Json::Str("a\u{1}b".into());
        assert_eq!(v.render(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escaped_writers_agree() {
        for s in [
            "plain",
            "",
            "a\"b\\c",
            "tabs\tand\nnewlines\r",
            "ctrl\u{1}\u{1f}byte",
            "unicode é 😀 /",
        ] {
            let mut as_string = String::new();
            write_escaped(&mut as_string, s);
            let mut as_bytes = Vec::new();
            write_escaped_bytes(&mut as_bytes, s);
            assert_eq!(as_string.as_bytes(), &as_bytes[..], "input {s:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"i":3,"f":2.5,"b":true}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }
}
