//! A thin blocking TCP client for the wire protocol.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{Request, Response};

/// One connection to a `qid-server`. Requests are answered in order on
/// the same socket, so a client can issue many queries against the
/// cached sketch without reconnecting.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server address (e.g. `127.0.0.1:4777`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects with a timeout applied to reads and writes as well.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Client::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        // One-line request/response round trips: Nagle + delayed ACK
        // would add tens of milliseconds per call.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
