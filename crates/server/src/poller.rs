//! The readiness-driven connection core.
//!
//! Connections are sharded round-robin across `--pollers` dedicated
//! poller threads, each owning its own kernel queue behind the
//! vendored [`polling`] shim (`epoll` on Linux, `kqueue` on
//! macOS/BSD, `poll(2)` fallback). A poller owns every idle
//! connection of its shard in non-blocking mode; only connections
//! with bytes to read are handed to the worker pool. A worker drains
//! what the socket has, answers every complete request line, and
//! hands the connection back to **its own shard's** poller. Idle
//! keep-alive connections therefore cost **zero** worker time — the
//! property that moves the server from tens of clients to thousands —
//! and readiness scanning plus trace-epilogue work parallelise across
//! shards.
//!
//! Writes are readiness-driven too: a worker flushes the wake's
//! response batch with non-blocking writes, and if the peer's window
//! is full it **parks** the unsent bytes with the connection and
//! returns to the pool. The owning poller re-arms the socket for
//! *writability* and completes the flush inline on the poller thread,
//! so a slow or stalled reader can never pin a worker (the previous
//! core blocked a worker up to 10 s per stalled write). While a
//! connection is write-parked the server does not read from it —
//! natural backpressure for a client that pipelines without draining.
//!
//! ## Connection state machine
//!
//! Exactly one owner per state — a shard's poller thread *or* one
//! worker — so request lines are answered in order with no
//! per-connection locks:
//!
//! ```text
//! accepted ──▶ polled (shard poller owns it, armed oneshot readable)
//!                │  readable
//!                ▼
//!            dispatched (one worker owns it: read → frame → answer
//!                │       → non-blocking flush)
//!                │ flushed             │ flush would    │ EOF, error,
//!                │ clean               │ block          │ shutdown
//!                ▼                     ▼                ▼
//!            re-armed ──▶ polled   write-parked      closed
//!                                  (shard poller owns it, armed
//!                                   writable; flushes inline, then
//!                                   re-arms readable — or closes if
//!                                   the wake ended in EOF/shutdown)
//! ```
//!
//! A write-parked connection never visits the worker pool: the poller
//! finishes the flush itself (responses are already rendered bytes;
//! pushing them costs microseconds, not registry work). The parked
//! bytes live in the connection's reused response buffer — the arena
//! the zero-allocation guarantee already accounts for — so parking
//! allocates nothing.
//!
//! ## Hardening at the byte boundary
//!
//! This module owns the untrusted bytes, so the two protocol-hardening
//! knobs live here:
//!
//! * **`--max-line-bytes`** — `LineFramer` assembles lines in a
//!   reused buffer whose partial tail never exceeds the cap: the
//!   moment a line crosses it, the framer emits one `Frame::Oversize`,
//!   discards everything up to the next newline *without buffering it*
//!   (`O(cap + bytes-per-wake)` memory no matter how many bytes the
//!   client streams — the wake budget is `MAX_BYTES_PER_WAKE`), and
//!   the server answers a structured `line_too_long` error on a
//!   connection that stays usable.
//! * **`--max-rps`** — a per-connection `TokenBucket` (burst = one
//!   second's budget) consulted before a line is even decoded, so a
//!   flooding client is answered with cheap `rate_limited` errors
//!   instead of JSON parsing and registry work.
//!
//! Both rejections are counted in `metrics` (`rejected_oversize`,
//! `rejected_rate`).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fastpath::Scratch;
use crate::metrics::HISTOGRAM_EPOCH;
use crate::pool::GaugedSender;
use crate::proto::Response;
use crate::server::ServerState;

/// Byte budget one worker spends reading a single connection per
/// readiness wake-up. A connection with more buffered than this is
/// re-armed (level-triggered readiness re-fires immediately), so one
/// fire-hose client cannot pin a worker while others wait.
const MAX_BYTES_PER_WAKE: usize = 1 << 20;

/// The name of the readiness backend [`polling::Poller::new`] picks on
/// this host (`"epoll"` on Linux, `"kqueue"` on macOS/BSD, `"poll"`
/// elsewhere or when `QID_POLL_BACKEND=poll` forces the fallback).
pub fn backend_name() -> &'static str {
    polling::default_backend_name()
}

/// The per-connection hardening knobs, fixed at server start.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConnLimits {
    /// Longest accepted request line, in bytes (excluding the newline).
    pub max_line_bytes: usize,
    /// Requests per second per connection; `None` = unlimited.
    pub max_rps: Option<u32>,
}

// ------------------------------------------------------------ framing

/// One unit the framer hands back per input chunk. Lines are byte
/// ranges into the framer's own buffer ([`LineFramer::line`] resolves
/// them), so framing a request allocates nothing — the buffer is
/// reused wake after wake instead of minting a fresh `Vec` per line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete line (newline stripped), at most `cap` bytes, valid
    /// until the next [`LineFramer::consume`].
    Line(std::ops::Range<usize>),
    /// A line crossed the cap; its bytes were discarded up to (and
    /// including) the next newline.
    Oversize,
}

/// Assembles newline-delimited frames from arbitrary chunks under a
/// hard byte cap on the *line*, not the buffer: the buffer holds every
/// completed line of the current wake (so frames can be ranges into
/// it) plus at most `cap` bytes of partial tail, and is compacted —
/// not freed — by [`LineFramer::consume`] once the wake's frames are
/// answered. Memory per connection is therefore
/// `O(cap + bytes-per-wake)`, and the wake budget is
/// [`MAX_BYTES_PER_WAKE`].
#[derive(Debug)]
pub(crate) struct LineFramer {
    cap: usize,
    buf: Vec<u8>,
    /// Start of the partial (not yet newline-terminated) tail in `buf`;
    /// everything before it is completed lines already framed.
    line_start: usize,
    /// Inside an oversized line: discard until the next newline.
    skipping: bool,
}

impl LineFramer {
    pub fn new(cap: usize) -> LineFramer {
        LineFramer {
            cap: cap.max(1),
            buf: Vec::new(),
            line_start: 0,
            skipping: false,
        }
    }

    /// Feeds one chunk, appending completed frames to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Frame>) {
        let mut rest = chunk;
        while !rest.is_empty() {
            let newline = rest.iter().position(|&b| b == b'\n');
            if self.skipping {
                match newline {
                    // Still inside the oversized line: drop everything.
                    None => rest = &[],
                    Some(i) => {
                        self.skipping = false;
                        rest = &rest[i + 1..];
                    }
                }
                continue;
            }
            let pending = self.buf.len() - self.line_start;
            match newline {
                Some(i) => {
                    if pending + i > self.cap {
                        out.push(Frame::Oversize);
                        self.buf.truncate(self.line_start);
                    } else {
                        self.buf.extend_from_slice(&rest[..i]);
                        out.push(Frame::Line(self.line_start..self.buf.len()));
                        self.line_start = self.buf.len();
                    }
                    rest = &rest[i + 1..];
                }
                None => {
                    if pending + rest.len() > self.cap {
                        // The line already exceeds the cap with no end
                        // in sight: reject now, buffer nothing more.
                        out.push(Frame::Oversize);
                        self.buf.truncate(self.line_start);
                        self.skipping = true;
                        rest = &[];
                    } else {
                        self.buf.extend_from_slice(rest);
                        rest = &[];
                    }
                }
            }
        }
        debug_assert!(
            self.buf.len() - self.line_start <= self.cap,
            "framer tail exceeds cap"
        );
    }

    /// Resolves a frame range to its line bytes.
    pub fn line(&self, range: &std::ops::Range<usize>) -> &[u8] {
        &self.buf[range.clone()]
    }

    /// Releases every completed line of the wake, compacting the
    /// partial tail to the front of the buffer. Call after the wake's
    /// frames are answered; outstanding [`Frame::Line`] ranges become
    /// invalid. Capacity is retained, so the steady state allocates
    /// nothing.
    pub fn consume(&mut self) {
        if self.line_start > 0 {
            self.buf.copy_within(self.line_start.., 0);
            self.buf.truncate(self.buf.len() - self.line_start);
            self.line_start = 0;
        }
    }

    /// Drains an unterminated final line at EOF. NDJSON clients are
    /// supposed to newline-terminate, but a request followed by a
    /// half-close (`printf '…' | nc`) has always been answered, so the
    /// framer must not swallow it. A buffer mid-skip (the tail of an
    /// already-rejected oversized line) yields nothing.
    pub fn take_eof_tail(&mut self) -> Option<std::ops::Range<usize>> {
        if self.skipping {
            self.skipping = false;
            return None;
        }
        if self.buf.len() == self.line_start {
            return None;
        }
        let range = self.line_start..self.buf.len();
        self.line_start = self.buf.len();
        Some(range)
    }
}

// --------------------------------------------------------- rate limit

/// A per-connection token bucket: `rate` tokens/second refill, burst
/// capacity of one second's budget (at least 1 token).
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(max_rps: u32, now: Instant) -> TokenBucket {
        let rate = f64::from(max_rps.max(1));
        TokenBucket {
            rate,
            burst: rate,
            tokens: rate,
            last: now,
        }
    }

    /// Takes one token if available; refills first.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

// --------------------------------------------------------- connection

/// One admission slot: increments the server's live-connection count
/// on creation and releases it on drop, so every close path — a
/// worker's `Close`, the poller drain, a reaped parked flush, a failed
/// registration — is accounted without explicit bookkeeping.
#[derive(Debug)]
pub(crate) struct LiveGuard(Arc<AtomicU64>);

impl LiveGuard {
    pub fn new(count: Arc<AtomicU64>) -> LiveGuard {
        count.fetch_add(1, Ordering::Relaxed);
        LiveGuard(count)
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One client connection: the non-blocking socket plus the framing,
/// rate-limit, and scratch state that travels with it between poller
/// and workers. The frame list, write batch, and parse/dispatch
/// scratch are all reused across wake-ups (cleared, never freed), so
/// the steady-state request path performs no heap allocation.
#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    framer: LineFramer,
    bucket: Option<TokenBucket>,
    /// Frames decoded this wake (ranges into `framer`'s buffer).
    frames: Vec<Frame>,
    /// The wake's response batch. Flushed with non-blocking writes;
    /// bytes the peer's window cannot absorb stay here (write-parked)
    /// until the owning poller sees the socket writable again.
    out: Vec<u8>,
    /// How much of `out` has already reached the socket.
    out_pos: usize,
    /// A write-parked connection whose wake ended in EOF or shutdown:
    /// close as soon as the parked bytes are flushed.
    close_after_flush: bool,
    /// Per-connection parse/dispatch arena for the zero-allocation
    /// request fast path.
    scratch: Scratch,
    /// When the poller handed this connection to the worker pool; the
    /// worker's wake-up converts it to the spans' queue-wait time.
    dispatched_at: Option<Instant>,
    /// The `--max-conns` admission slot this connection occupies
    /// (`None` only before the accept loop admits it).
    pub live: Option<LiveGuard>,
}

impl Conn {
    /// Prepares an accepted stream: non-blocking (the poller owns
    /// blocking), nodelay (responses are single small writes).
    pub fn new(stream: TcpStream, limits: &ConnLimits) -> Option<Conn> {
        stream.set_nodelay(true).ok()?;
        stream.set_nonblocking(true).ok()?;
        Some(Conn {
            stream,
            framer: LineFramer::new(limits.max_line_bytes),
            bucket: limits
                .max_rps
                .map(|rps| TokenBucket::new(rps, Instant::now())),
            frames: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            close_after_flush: false,
            scratch: Scratch::new(),
            dispatched_at: None,
            live: None,
        })
    }

    /// Whether unsent response bytes are parked with this connection.
    /// A parked connection is armed for writability and flushed inline
    /// by its poller instead of being dispatched to a worker.
    pub fn parked(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// What a worker decides about a connection after one wake-up.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Hand the connection back to its shard's poller — armed readable
    /// for the next request, or writable when the flush parked bytes.
    Rearm,
    /// Close it (EOF, I/O error, write failure, or shutdown).
    Close,
}

/// Serves one readiness wake-up: drain the socket, answer every
/// complete line, decide the connection's fate. All working storage
/// (frame list, line buffer, response batch, parse scratch) lives in
/// `conn` and is reused, so a steady-state wake allocates nothing.
pub(crate) fn serve_ready(conn: &mut Conn, state: &ServerState) -> Disposition {
    // Queue-wait: poller dispatch → a worker actually picking the
    // connection up. Stamped into every span captured this wake.
    if let Some(at) = conn.dispatched_at.take() {
        conn.scratch
            .spans
            .set_queue_us(crate::obs::duration_us(at.elapsed()));
    }
    let mut chunk = [0u8; 8192];
    conn.frames.clear();
    conn.out.clear();
    conn.out_pos = 0;
    conn.close_after_flush = false;
    let mut eof = false;
    let mut total = 0usize;
    while total < MAX_BYTES_PER_WAKE {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                total += n;
                conn.framer.push(&chunk[..n], &mut conn.frames);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => return Disposition::Close,
        }
    }
    if total > 0 {
        state.add_bytes_read(total);
    }
    if eof {
        // A final line terminated by EOF instead of a newline is still
        // a request: answer it, then close.
        if let Some(tail) = conn.framer.take_eof_tail() {
            conn.frames.push(Frame::Line(tail));
        }
    }

    let mut close = eof;
    for i in 0..conn.frames.len() {
        let range = match &conn.frames[i] {
            Frame::Oversize => {
                state.on_oversize_line(&mut conn.scratch, &mut conn.out);
                continue;
            }
            Frame::Line(range) => range.clone(),
        };
        let bytes = conn.framer.line(&range);
        if bytes.iter().all(|b| b.is_ascii_whitespace()) {
            continue; // blank keep-alive lines are free
        }
        if let Some(bucket) = &mut conn.bucket {
            if !bucket.try_take(Instant::now()) {
                state.on_rate_limited(&mut conn.scratch, &mut conn.out);
                continue;
            }
        }
        let is_shutdown = state.answer_line(bytes, &mut conn.scratch, &mut conn.out);
        if is_shutdown {
            // Flush the acknowledgement before raising the flag, so
            // the requester normally sees its "bye". Best-effort: a
            // requester whose own receive window is already full
            // doesn't get to delay the drain.
            let write_started = Instant::now();
            let _ = flush_pending(conn, state);
            state.finish_wake(&mut conn.scratch, write_started.elapsed());
            state.initiate_shutdown();
            return Disposition::Close;
        }
        if state.is_shutting_down() {
            // Drain contract: finish the in-flight request,
            // don't start the next one.
            close = true;
            break;
        }
    }
    conn.framer.consume();
    if conn.out.is_empty() {
        state.finish_wake(&mut conn.scratch, Duration::ZERO);
        return if close || state.is_shutting_down() {
            Disposition::Close
        } else {
            Disposition::Rearm
        };
    }
    let write_started = Instant::now();
    let outcome = flush_pending(conn, state);
    // Publish the wake's spans even when the write failed or parked —
    // the requests were served, and forensics on a dying or stalled
    // peer are exactly when the trace matters.
    state.finish_wake(&mut conn.scratch, write_started.elapsed());
    match outcome {
        FlushOutcome::Error => Disposition::Close,
        FlushOutcome::Done => {
            if close || state.is_shutting_down() {
                Disposition::Close
            } else {
                Disposition::Rearm
            }
        }
        FlushOutcome::Parked => {
            // The peer's window is full. Park the unsent bytes with
            // the connection and give it back to its poller, which
            // arms for writability and finishes the flush — this
            // worker is free immediately, no matter how stalled the
            // reader is.
            state.metrics.writes_parked.fetch_add(1, Ordering::Relaxed);
            conn.close_after_flush = close || state.is_shutting_down();
            Disposition::Rearm
        }
    }
}

/// How one non-blocking flush attempt of `conn.out` ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FlushOutcome {
    /// Everything was written; `out` is cleared (capacity retained).
    Done,
    /// The socket's send buffer filled; `conn.out_pos` marks progress
    /// and the remainder stays parked in `conn.out`.
    Parked,
    /// The peer is gone (write error or zero-length write).
    Error,
}

/// Pushes the unsent tail of `conn.out` with non-blocking writes,
/// accounting every byte that reaches the socket. Never blocks: a full
/// send buffer parks the remainder instead.
fn flush_pending(conn: &mut Conn, state: &ServerState) -> FlushOutcome {
    while conn.out_pos < conn.out.len() {
        match (&conn.stream).write(&conn.out[conn.out_pos..]) {
            Ok(0) => return FlushOutcome::Error,
            Ok(n) => {
                conn.out_pos += n;
                state.add_bytes_written(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return FlushOutcome::Parked,
            Err(_) => return FlushOutcome::Error,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    FlushOutcome::Done
}

/// Appends one encoded response plus newline to a write batch.
pub(crate) fn push_response(out: &mut Vec<u8>, response: &Response) {
    out.extend_from_slice(response.encode().as_bytes());
    out.push(b'\n');
}

// ------------------------------------------------------------- poller

/// The handle workers and the accept loop use to (re)register a
/// connection with one poller shard. Workers always return a
/// connection through the handle of the shard that dispatched it, so
/// a connection lives on one shard for its whole life.
#[derive(Clone, Debug)]
pub(crate) struct PollerHandle {
    tx: Sender<Conn>,
    poller: Arc<polling::Poller>,
}

impl PollerHandle {
    pub fn new(tx: Sender<Conn>, poller: Arc<polling::Poller>) -> PollerHandle {
        PollerHandle { tx, poller }
    }

    /// Queues a connection for registration and wakes the poller.
    /// Returns `false` (dropping the connection → EOF to the client)
    /// once the poller has exited.
    pub fn register(&self, conn: Conn) -> bool {
        if self.tx.send(conn).is_err() {
            return false;
        }
        let _ = self.poller.notify();
        true
    }
}

/// One poller shard's thread body: owns its shard of the idle and
/// write-parked connections, waits for readiness, dispatches readable
/// connections to the worker pool, and flushes parked writes inline.
/// Shard 0 additionally rotates the metrics histogram epochs on
/// schedule. Exits as soon as shutdown is flagged, closing every owned
/// connection (EOF to quiet keep-alive clients) — the drain half of
/// graceful shutdown.
pub(crate) fn poller_loop(
    shard: usize,
    poller: Arc<polling::Poller>,
    rx: Receiver<Conn>,
    pool: GaugedSender,
    handle: PollerHandle,
    state: Arc<ServerState>,
) {
    let mut idle: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = 0usize;
    let mut events: Vec<polling::Event> = Vec::new();
    let mut next_rotate = Instant::now() + HISTOGRAM_EPOCH;
    while !state.is_shutting_down() {
        // Admit new/returning connections before and after each wait,
        // so a registration queued during dispatch is never stranded.
        admit(&poller, &rx, &mut idle, &mut next_key, &state);
        state.obs().set_shard_conns(shard, idle.len() as u64);
        let timeout = next_rotate
            .saturating_duration_since(Instant::now())
            .min(Duration::from_secs(1));
        events.clear();
        if poller.wait(&mut events, Some(timeout)).is_err() {
            break; // a broken poller cannot serve; drain and exit
        }
        if state.is_shutting_down() {
            break;
        }
        // Exactly one shard rotates the (global) histogram epochs —
        // double rotation would halve the sliding window.
        if shard == 0 {
            let now = Instant::now();
            if now >= next_rotate {
                state.metrics.rotate_histograms();
                next_rotate = now + HISTOGRAM_EPOCH;
            }
        }
        admit(&poller, &rx, &mut idle, &mut next_key, &state);
        for ev in events.drain(..) {
            // Write-parked connections are completed inline: the
            // bytes are already rendered, so finishing the flush on
            // the poller thread costs microseconds and skips a
            // pointless pool round-trip. They stay in the idle map
            // (this shard keeps ownership) unless the flush ends them.
            if idle.get(&ev.key).is_some_and(Conn::parked) {
                flush_parked(&poller, &mut idle, ev.key, &state);
                continue;
            }
            let Some(conn) = idle.remove(&ev.key) else {
                continue;
            };
            // Deregister while a worker owns the socket; `register`
            // adds it back fresh.
            let _ = poller.delete(&conn.stream);
            dispatch(conn, &pool, &handle, &state);
        }
    }
    // Drop (close) every owned connection: poller-registered sockets
    // see EOF instead of hanging on a dead server. (Parked bytes to
    // stalled readers are abandoned — the drain doesn't wait on them.)
    idle.clear();
    state.obs().set_shard_conns(shard, 0);
}

/// Completes (or advances) the flush of a write-parked connection on
/// its poller thread. `Done` re-arms for readability — level-triggered
/// readiness fires immediately if the client pipelined more requests —
/// or closes when the parking wake ended in EOF/shutdown; `Parked`
/// re-arms for writability; `Error` reaps the connection.
fn flush_parked(
    poller: &polling::Poller,
    idle: &mut HashMap<usize, Conn>,
    key: usize,
    state: &ServerState,
) {
    let Some(conn) = idle.get_mut(&key) else {
        return;
    };
    let close = match flush_pending(conn, state) {
        FlushOutcome::Done => {
            conn.close_after_flush
                || poller
                    .modify(&conn.stream, polling::Event::readable(key))
                    .is_err()
        }
        FlushOutcome::Parked => poller
            .modify(&conn.stream, polling::Event::writable(key))
            .is_err(),
        FlushOutcome::Error => true,
    };
    if close {
        if let Some(conn) = idle.remove(&key) {
            let _ = poller.delete(&conn.stream);
        }
    }
}

/// Drains the registration queue into the shard's idle set. A
/// connection arriving with parked write bytes is armed for
/// writability (finish the flush first); everything else for
/// readability.
fn admit(
    poller: &polling::Poller,
    rx: &Receiver<Conn>,
    idle: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    state: &ServerState,
) {
    while let Ok(conn) = rx.try_recv() {
        if state.is_shutting_down() {
            continue; // dropped → EOF
        }
        let key = alloc_key(next_key, idle);
        let interest = if conn.parked() {
            polling::Event::writable(key)
        } else {
            polling::Event::readable(key)
        };
        if poller.add(&conn.stream, interest).is_ok() {
            idle.insert(key, conn);
        }
        // A failed add drops the connection (EOF) — the client retries.
    }
}

/// The next registration key not in use (and never the notify key).
fn alloc_key(next: &mut usize, idle: &HashMap<usize, Conn>) -> usize {
    loop {
        let key = *next;
        *next = next.wrapping_add(1);
        if key != polling::NOTIFY_KEY && !idle.contains_key(&key) {
            return key;
        }
    }
}

/// Hands one readable connection to the worker pool; the worker
/// returns it via `handle` when done.
fn dispatch(mut conn: Conn, pool: &GaugedSender, handle: &PollerHandle, state: &Arc<ServerState>) {
    let handle = handle.clone();
    conn.dispatched_at = Some(Instant::now());
    state.obs().connection_dispatched();
    let job_state = Arc::clone(state);
    // A send error means the pool is gone (shutdown); the connection
    // drops with the closure — EOF, exactly the drain behaviour.
    if !pool.send(move || {
        match serve_ready(&mut conn, &job_state) {
            Disposition::Rearm => {
                let _ = handle.register(conn);
            }
            Disposition::Close => {}
        }
        job_state.obs().connection_settled();
    }) {
        state.obs().connection_settled();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds one chunk and resolves the emitted frames immediately:
    /// `Some(bytes)` for a line, `None` for an oversize rejection.
    fn feed(framer: &mut LineFramer, chunk: &[u8]) -> Vec<Option<Vec<u8>>> {
        let mut out = Vec::new();
        framer.push(chunk, &mut out);
        out.iter()
            .map(|frame| match frame {
                Frame::Line(range) => Some(framer.line(range).to_vec()),
                Frame::Oversize => None,
            })
            .collect()
    }

    fn line(bytes: &[u8]) -> Option<Vec<u8>> {
        Some(bytes.to_vec())
    }

    #[test]
    fn framer_assembles_lines_across_chunks() {
        let mut f = LineFramer::new(64);
        assert_eq!(feed(&mut f, b"hel"), vec![]);
        assert_eq!(feed(&mut f, b"lo\nwor"), vec![line(b"hello")]);
        assert_eq!(feed(&mut f, b"ld\n"), vec![line(b"world")]);
    }

    #[test]
    fn framer_handles_many_lines_in_one_chunk() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            feed(&mut f, b"a\nb\n\nc\n"),
            vec![line(b"a"), line(b"b"), line(b""), line(b"c")]
        );
    }

    #[test]
    fn framer_rejects_oversize_and_recovers_on_next_line() {
        let mut f = LineFramer::new(4);
        // 10x the cap, streamed in chunks: exactly one Oversize, and
        // the partial tail never grows past the cap.
        let mut out = Vec::new();
        for _ in 0..10 {
            f.push(b"xxxx", &mut out);
            let tail = f.buf.len() - f.line_start;
            assert!(tail <= 4, "O(cap) tail: {tail}");
        }
        assert_eq!(out, vec![Frame::Oversize]);
        // The tail of the oversized line is discarded; the next line
        // parses normally.
        assert_eq!(feed(&mut f, b"xx\nok\n"), vec![line(b"ok")]);
    }

    #[test]
    fn framer_rejects_complete_line_just_over_cap() {
        let mut f = LineFramer::new(4);
        assert_eq!(feed(&mut f, b"abcd\n"), vec![line(b"abcd")]);
        assert_eq!(feed(&mut f, b"abcde\nxy\n"), vec![None, line(b"xy")]);
    }

    #[test]
    fn framer_consume_compacts_but_keeps_the_partial_tail() {
        let mut f = LineFramer::new(64);
        assert_eq!(feed(&mut f, b"hello\npart"), vec![line(b"hello")]);
        f.consume();
        assert_eq!(f.line_start, 0, "completed lines released");
        let cap_before = f.buf.capacity();
        assert_eq!(feed(&mut f, b"ial\n"), vec![line(b"partial")]);
        f.consume();
        assert_eq!(
            f.buf.capacity(),
            cap_before,
            "consume keeps capacity — the steady state never reallocates"
        );
        // An idle consume (nothing pending) is a no-op.
        f.consume();
        assert_eq!(feed(&mut f, b"next\n"), vec![line(b"next")]);
    }

    #[test]
    fn framer_surrenders_an_unterminated_tail_at_eof() {
        let mut f = LineFramer::new(64);
        assert_eq!(feed(&mut f, b"a\npartial"), vec![line(b"a")]);
        let tail = f.take_eof_tail().expect("tail pending");
        assert_eq!(f.line(&tail), b"partial");
        assert_eq!(f.take_eof_tail(), None, "drained once");
        // Mid-skip (oversized line already rejected): the tail is
        // garbage from the rejected line, not a request.
        let mut f = LineFramer::new(4);
        let mut out = Vec::new();
        f.push(b"xxxxxxxx", &mut out);
        assert_eq!(out, vec![Frame::Oversize]);
        assert_eq!(f.take_eof_tail(), None);
    }

    #[test]
    fn token_bucket_enforces_rate_and_refills() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2, t0);
        // Burst = 2 tokens up front.
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "burst exhausted");
        // 500 ms at 2 rps refills one token.
        let t1 = t0 + Duration::from_millis(500);
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
        // Refill caps at the burst size even after a long sleep.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(bucket.try_take(t2));
        assert!(bucket.try_take(t2));
        assert!(
            !bucket.try_take(t2),
            "burst never exceeds one second's budget"
        );
    }

    #[test]
    fn token_bucket_tolerates_non_monotonic_instants() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1, t0);
        assert!(bucket.try_take(t0));
        // An earlier instant must not panic or mint tokens.
        assert!(!bucket.try_take(t0 - Duration::from_secs(5)));
    }
}
