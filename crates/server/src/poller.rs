//! The readiness-driven connection core.
//!
//! One dedicated poller thread owns every idle connection in
//! non-blocking mode behind the vendored [`polling`] shim (`epoll` on
//! Linux, `poll(2)` fallback). Only connections with bytes to read are
//! handed to the worker pool; a worker drains what the socket has,
//! answers every complete request line, and hands the connection back
//! to the poller. Idle keep-alive connections therefore cost **zero**
//! worker time — the property that moves the server from tens of
//! clients to thousands (the previous core charged every idle
//! connection a blocked 150 ms read per cycle, so capacity degraded
//! linearly in connection count).
//!
//! ## Connection state machine
//!
//! ```text
//! accepted ──▶ polled (poller owns it, non-blocking, armed oneshot)
//!                │  readable
//!                ▼
//!            dispatched (a worker owns it: read → frame → answer)
//!                │                      │
//!                │ partial line /       │ EOF, I/O error, shutdown,
//!                │ all lines answered   │ or `shutdown` request
//!                ▼                      ▼
//!            re-armed ──▶ polled     closed (drained)
//! ```
//!
//! Exactly one thread owns a connection at any moment (the poller
//! *or* one worker), so request lines are answered in order with no
//! per-connection locks.
//!
//! ## Hardening at the byte boundary
//!
//! This module owns the untrusted bytes, so the two protocol-hardening
//! knobs live here:
//!
//! * **`--max-line-bytes`** — `LineFramer` assembles lines in a
//!   buffer that never exceeds the cap: the moment a line crosses it,
//!   the framer emits one `Frame::Oversize`, discards everything up
//!   to the next newline *without buffering it* (`O(cap)` memory no
//!   matter how many bytes the client streams), and the server answers
//!   a structured `line_too_long` error on a connection that stays
//!   usable.
//! * **`--max-rps`** — a per-connection `TokenBucket` (burst = one
//!   second's budget) consulted before a line is even decoded, so a
//!   flooding client is answered with cheap `rate_limited` errors
//!   instead of JSON parsing and registry work.
//!
//! Both rejections are counted in `metrics` (`rejected_oversize`,
//! `rejected_rate`).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::HISTOGRAM_EPOCH;
use crate::pool::Job;
use crate::proto::Response;
use crate::server::ServerState;

/// How long a worker may block writing one response batch before the
/// connection is declared dead (slow-read protection: the poller and
/// the other workers are never affected).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Byte budget one worker spends reading a single connection per
/// readiness wake-up. A connection with more buffered than this is
/// re-armed (level-triggered readiness re-fires immediately), so one
/// fire-hose client cannot pin a worker while others wait.
const MAX_BYTES_PER_WAKE: usize = 1 << 20;

/// The name of the readiness backend [`polling::Poller::new`] picks on
/// this host (`"epoll"` on Linux, `"poll"` elsewhere or when
/// `QID_POLL_BACKEND=poll` forces the fallback).
pub fn backend_name() -> &'static str {
    polling::default_backend_name()
}

/// The per-connection hardening knobs, fixed at server start.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConnLimits {
    /// Longest accepted request line, in bytes (excluding the newline).
    pub max_line_bytes: usize,
    /// Requests per second per connection; `None` = unlimited.
    pub max_rps: Option<u32>,
}

// ------------------------------------------------------------ framing

/// One unit the framer hands back per input chunk.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete line (newline stripped), at most `cap` bytes.
    Line(Vec<u8>),
    /// A line crossed the cap; its bytes were discarded up to (and
    /// including) the next newline.
    Oversize,
}

/// Assembles newline-delimited frames from arbitrary chunks under a
/// hard byte cap. Invariant: the internal buffer never holds more than
/// `cap` bytes, so memory per connection is `O(cap)` regardless of
/// client behaviour.
#[derive(Debug)]
pub(crate) struct LineFramer {
    cap: usize,
    buf: Vec<u8>,
    /// Inside an oversized line: discard until the next newline.
    skipping: bool,
}

impl LineFramer {
    pub fn new(cap: usize) -> LineFramer {
        LineFramer {
            cap: cap.max(1),
            buf: Vec::new(),
            skipping: false,
        }
    }

    /// Feeds one chunk, appending completed frames to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Frame>) {
        let mut rest = chunk;
        while !rest.is_empty() {
            let newline = rest.iter().position(|&b| b == b'\n');
            if self.skipping {
                match newline {
                    // Still inside the oversized line: drop everything.
                    None => rest = &[],
                    Some(i) => {
                        self.skipping = false;
                        rest = &rest[i + 1..];
                    }
                }
                continue;
            }
            match newline {
                Some(i) => {
                    if self.buf.len() + i > self.cap {
                        out.push(Frame::Oversize);
                        self.buf.clear();
                    } else {
                        let mut line = std::mem::take(&mut self.buf);
                        line.extend_from_slice(&rest[..i]);
                        out.push(Frame::Line(line));
                    }
                    rest = &rest[i + 1..];
                }
                None => {
                    if self.buf.len() + rest.len() > self.cap {
                        // The line already exceeds the cap with no end
                        // in sight: reject now, buffer nothing more.
                        out.push(Frame::Oversize);
                        self.buf.clear();
                        self.skipping = true;
                        rest = &[];
                    } else {
                        self.buf.extend_from_slice(rest);
                        rest = &[];
                    }
                }
            }
        }
        debug_assert!(self.buf.len() <= self.cap, "framer buffer exceeds cap");
    }

    /// Drains an unterminated final line at EOF. NDJSON clients are
    /// supposed to newline-terminate, but a request followed by a
    /// half-close (`printf '…' | nc`) has always been answered, so the
    /// framer must not swallow it. A buffer mid-skip (the tail of an
    /// already-rejected oversized line) yields nothing.
    pub fn take_eof_tail(&mut self) -> Option<Vec<u8>> {
        if self.skipping {
            self.skipping = false;
            return None;
        }
        if self.buf.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut self.buf))
    }
}

// --------------------------------------------------------- rate limit

/// A per-connection token bucket: `rate` tokens/second refill, burst
/// capacity of one second's budget (at least 1 token).
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(max_rps: u32, now: Instant) -> TokenBucket {
        let rate = f64::from(max_rps.max(1));
        TokenBucket {
            rate,
            burst: rate,
            tokens: rate,
            last: now,
        }
    }

    /// Takes one token if available; refills first.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

// --------------------------------------------------------- connection

/// One client connection: the non-blocking socket plus the framing and
/// rate-limit state that travels with it between poller and workers.
#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    framer: LineFramer,
    bucket: Option<TokenBucket>,
}

impl Conn {
    /// Prepares an accepted stream: non-blocking (the poller owns
    /// blocking), nodelay (responses are single small writes).
    pub fn new(stream: TcpStream, limits: &ConnLimits) -> Option<Conn> {
        stream.set_nodelay(true).ok()?;
        stream.set_nonblocking(true).ok()?;
        Some(Conn {
            stream,
            framer: LineFramer::new(limits.max_line_bytes),
            bucket: limits
                .max_rps
                .map(|rps| TokenBucket::new(rps, Instant::now())),
        })
    }
}

/// What a worker decides about a connection after one wake-up.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Hand the connection back to the poller for the next request.
    Rearm,
    /// Close it (EOF, I/O error, write failure, or shutdown).
    Close,
}

/// Serves one readiness wake-up: drain the socket, answer every
/// complete line, decide the connection's fate.
pub(crate) fn serve_ready(conn: &mut Conn, state: &ServerState) -> Disposition {
    let mut chunk = [0u8; 8192];
    let mut frames = Vec::new();
    let mut eof = false;
    let mut total = 0usize;
    while total < MAX_BYTES_PER_WAKE {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                total += n;
                conn.framer.push(&chunk[..n], &mut frames);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => return Disposition::Close,
        }
    }
    if eof {
        // A final line terminated by EOF instead of a newline is still
        // a request: answer it, then close.
        if let Some(tail) = conn.framer.take_eof_tail() {
            frames.push(Frame::Line(tail));
        }
    }

    let mut out = Vec::new();
    let mut close = eof;
    for frame in frames {
        match frame {
            Frame::Oversize => {
                state.on_oversize_line(&mut out);
            }
            Frame::Line(bytes) => {
                if bytes.iter().all(|b| b.is_ascii_whitespace()) {
                    continue; // blank keep-alive lines are free
                }
                if let Some(bucket) = &mut conn.bucket {
                    if !bucket.try_take(Instant::now()) {
                        state.on_rate_limited(&mut out);
                        continue;
                    }
                }
                let is_shutdown = state.answer_line(&bytes, &mut out);
                if is_shutdown {
                    // Flush the acknowledgement before raising the
                    // flag, so the requester always sees its "bye".
                    let _ = write_out(&conn.stream, &out);
                    state.initiate_shutdown();
                    return Disposition::Close;
                }
                if state.is_shutting_down() {
                    // Drain contract: finish the in-flight request,
                    // don't start the next one.
                    close = true;
                    break;
                }
            }
        }
    }
    if !out.is_empty() && write_out(&conn.stream, &out).is_err() {
        return Disposition::Close;
    }
    if close || state.is_shutting_down() {
        Disposition::Close
    } else {
        Disposition::Rearm
    }
}

/// Writes a response batch, temporarily flipping the socket to
/// blocking mode with a write timeout (responses are small; a peer
/// that cannot absorb one within [`WRITE_TIMEOUT`] is gone).
fn write_out(stream: &TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let result = (&mut &*stream).write_all(bytes);
    // Restore non-blocking before the poller sees the socket again; if
    // the write already failed, the connection is closing anyway.
    let restored = stream.set_nonblocking(true);
    result.and(restored)
}

/// Appends one encoded response plus newline to a write batch.
pub(crate) fn push_response(out: &mut Vec<u8>, response: &Response) {
    out.extend_from_slice(response.encode().as_bytes());
    out.push(b'\n');
}

// ------------------------------------------------------------- poller

/// The handle workers and the accept loop use to (re)register a
/// connection with the poller thread.
#[derive(Clone, Debug)]
pub(crate) struct PollerHandle {
    tx: Sender<Conn>,
    poller: Arc<polling::Poller>,
}

impl PollerHandle {
    pub fn new(tx: Sender<Conn>, poller: Arc<polling::Poller>) -> PollerHandle {
        PollerHandle { tx, poller }
    }

    /// Queues a connection for registration and wakes the poller.
    /// Returns `false` (dropping the connection → EOF to the client)
    /// once the poller has exited.
    pub fn register(&self, conn: Conn) -> bool {
        if self.tx.send(conn).is_err() {
            return false;
        }
        let _ = self.poller.notify();
        true
    }
}

/// The poller thread body: owns every idle connection, waits for
/// readiness, dispatches readable connections to the worker pool, and
/// rotates the metrics histogram epochs on schedule. Exits as soon as
/// shutdown is flagged, closing every idle connection (EOF to quiet
/// keep-alive clients) — the drain half of graceful shutdown.
pub(crate) fn poller_loop(
    poller: Arc<polling::Poller>,
    rx: Receiver<Conn>,
    pool: Sender<Job>,
    handle: PollerHandle,
    state: Arc<ServerState>,
) {
    let mut idle: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = 0usize;
    let mut events: Vec<polling::Event> = Vec::new();
    let mut next_rotate = Instant::now() + HISTOGRAM_EPOCH;
    while !state.is_shutting_down() {
        // Admit new/returning connections before and after each wait,
        // so a registration queued during dispatch is never stranded.
        admit(&poller, &rx, &mut idle, &mut next_key, &state);
        let timeout = next_rotate
            .saturating_duration_since(Instant::now())
            .min(Duration::from_secs(1));
        events.clear();
        if poller.wait(&mut events, Some(timeout)).is_err() {
            break; // a broken poller cannot serve; drain and exit
        }
        if state.is_shutting_down() {
            break;
        }
        let now = Instant::now();
        if now >= next_rotate {
            state.metrics.rotate_histograms();
            next_rotate = now + HISTOGRAM_EPOCH;
        }
        admit(&poller, &rx, &mut idle, &mut next_key, &state);
        for ev in events.drain(..) {
            let Some(conn) = idle.remove(&ev.key) else {
                continue;
            };
            // Deregister while a worker owns the socket; `register`
            // adds it back fresh.
            let _ = poller.delete(&conn.stream);
            dispatch(conn, &pool, &handle, &state);
        }
    }
    // Drop (close) every idle connection: poller-registered sockets
    // see EOF instead of hanging on a dead server.
    idle.clear();
}

/// Drains the registration queue into the poller's idle set.
fn admit(
    poller: &polling::Poller,
    rx: &Receiver<Conn>,
    idle: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    state: &ServerState,
) {
    while let Ok(conn) = rx.try_recv() {
        if state.is_shutting_down() {
            continue; // dropped → EOF
        }
        let key = alloc_key(next_key, idle);
        if poller
            .add(&conn.stream, polling::Event::readable(key))
            .is_ok()
        {
            idle.insert(key, conn);
        }
        // A failed add drops the connection (EOF) — the client retries.
    }
}

/// The next registration key not in use (and never the notify key).
fn alloc_key(next: &mut usize, idle: &HashMap<usize, Conn>) -> usize {
    loop {
        let key = *next;
        *next = next.wrapping_add(1);
        if key != polling::NOTIFY_KEY && !idle.contains_key(&key) {
            return key;
        }
    }
}

/// Hands one readable connection to the worker pool; the worker
/// returns it via `handle` when done.
fn dispatch(mut conn: Conn, pool: &Sender<Job>, handle: &PollerHandle, state: &Arc<ServerState>) {
    let state = Arc::clone(state);
    let handle = handle.clone();
    // A send error means the pool is gone (shutdown); the connection
    // drops with the closure — EOF, exactly the drain behaviour.
    let _ = pool.send(Box::new(move || match serve_ready(&mut conn, &state) {
        Disposition::Rearm => {
            let _ = handle.register(conn);
        }
        Disposition::Close => {}
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(framer: &mut LineFramer, chunk: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        framer.push(chunk, &mut out);
        out
    }

    #[test]
    fn framer_assembles_lines_across_chunks() {
        let mut f = LineFramer::new(64);
        assert_eq!(frames(&mut f, b"hel"), vec![]);
        assert_eq!(
            frames(&mut f, b"lo\nwor"),
            vec![Frame::Line(b"hello".to_vec())]
        );
        assert_eq!(
            frames(&mut f, b"ld\n"),
            vec![Frame::Line(b"world".to_vec())]
        );
    }

    #[test]
    fn framer_handles_many_lines_in_one_chunk() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            frames(&mut f, b"a\nb\n\nc\n"),
            vec![
                Frame::Line(b"a".to_vec()),
                Frame::Line(b"b".to_vec()),
                Frame::Line(b"".to_vec()),
                Frame::Line(b"c".to_vec()),
            ]
        );
    }

    #[test]
    fn framer_rejects_oversize_and_recovers_on_next_line() {
        let mut f = LineFramer::new(4);
        // 10x the cap, streamed in chunks: exactly one Oversize, and
        // the buffer never grows past the cap.
        let mut out = Vec::new();
        for _ in 0..10 {
            f.push(b"xxxx", &mut out);
            assert!(f.buf.len() <= 4, "O(cap) memory: {}", f.buf.len());
        }
        assert_eq!(out, vec![Frame::Oversize]);
        // The tail of the oversized line is discarded; the next line
        // parses normally.
        out.clear();
        f.push(b"xx\nok\n", &mut out);
        assert_eq!(out, vec![Frame::Line(b"ok".to_vec())]);
    }

    #[test]
    fn framer_rejects_complete_line_just_over_cap() {
        let mut f = LineFramer::new(4);
        assert_eq!(
            frames(&mut f, b"abcd\n"),
            vec![Frame::Line(b"abcd".to_vec())]
        );
        assert_eq!(
            frames(&mut f, b"abcde\nxy\n"),
            vec![Frame::Oversize, Frame::Line(b"xy".to_vec()),]
        );
    }

    #[test]
    fn framer_surrenders_an_unterminated_tail_at_eof() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            frames(&mut f, b"a\npartial"),
            vec![Frame::Line(b"a".to_vec())]
        );
        assert_eq!(f.take_eof_tail(), Some(b"partial".to_vec()));
        assert_eq!(f.take_eof_tail(), None, "drained once");
        // Mid-skip (oversized line already rejected): the tail is
        // garbage from the rejected line, not a request.
        let mut f = LineFramer::new(4);
        let mut out = Vec::new();
        f.push(b"xxxxxxxx", &mut out);
        assert_eq!(out, vec![Frame::Oversize]);
        assert_eq!(f.take_eof_tail(), None);
    }

    #[test]
    fn token_bucket_enforces_rate_and_refills() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2, t0);
        // Burst = 2 tokens up front.
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "burst exhausted");
        // 500 ms at 2 rps refills one token.
        let t1 = t0 + Duration::from_millis(500);
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
        // Refill caps at the burst size even after a long sleep.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(bucket.try_take(t2));
        assert!(bucket.try_take(t2));
        assert!(
            !bucket.try_take(t2),
            "burst never exceeds one second's budget"
        );
    }

    #[test]
    fn token_bucket_tolerates_non_monotonic_instants() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1, t0);
        assert!(bucket.try_take(t0));
        // An earlier instant must not panic or mint tokens.
        assert!(!bucket.try_take(t0 - Duration::from_secs(5)));
    }
}
