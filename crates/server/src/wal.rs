//! The registry's durability tier: a write-ahead journal + periodic
//! snapshot under the cache dir, so a restart (or a crash) resumes a
//! *warm* registry instead of an amnesiac one.
//!
//! Split out of `registry.rs` (PR 10); the registry emits the same
//! [`RegistryEvent`]s it always delivered to the `--log-json` sink,
//! and this module makes them durable:
//!
//! * **The journal** (`registry.wal`): one NDJSON line per lifecycle
//!   event — build, restore, evict, stale-rebuild, append-absorb,
//!   sketch-build, disk-GC, unload, purge — each carrying a monotone
//!   sequence number and a wall-clock timestamp. Lines are appended
//!   synchronously (the emitting paths are build/evict paths, which
//!   allocate and do I/O anyway) but **fsync'd off the request path**
//!   by a background flusher thread, so the zero-allocation `check`
//!   fast path ([`crate::registry::Registry::peek`] emits no events)
//!   never pays a write or a sync.
//! * **The snapshot** (`registry.snapshot`): when the journal grows
//!   past `--wal-max-bytes`, the flusher folds it into one JSON line —
//!   cumulative counters, the per-key last-access order, the resident
//!   set — published write-then-rename, then truncates the journal.
//!   Replay cost is therefore bounded regardless of uptime.
//! * **The counter checkpoint** (`registry.counters`): hits are far
//!   too hot to journal per-event, so the flusher rewrites a single
//!   checksummed line in place (on an already-open descriptor, with a
//!   reused buffer — the write is allocation-free, because the flusher
//!   ticks *during* the zero-alloc steady state) whenever any counter
//!   moved. A torn checkpoint fails its checksum and replay falls back
//!   to the journal-derived counters.
//!
//! **Recovery** replays snapshot + journal tail: counters resume as
//! the elementwise max of every durable source (they are all
//! monotone), the resident set is re-admitted from the warm tier in
//! LRU order, and a journal that does not *end* with a clean-shutdown
//! record is crash evidence — the registry's startup sweep then
//! reclaims `*.tmp` debris immediately instead of waiting out the
//! age gate. The clean-shutdown record itself is written when the
//! [`crate::registry::Registry`] drops (a SIGKILL never runs drop,
//! which is exactly the signal wanted).
//!
//! The journal assumes a single writer per cache dir, like any WAL;
//! artifact *files* remain safe to share (publish-by-rename), but two
//! live servers journaling into one dir interleave sequence numbers.
//!
//! `qid wal <dir> [--verify]` dumps and verifies all three files via
//! [`inspect`].

use std::collections::HashMap;
use std::fs::File;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::json::{self, obj, s, Json};
use crate::registry::RegistryEvent;

/// Journal file name under the cache dir.
pub const WAL_FILE: &str = "registry.wal";
/// Snapshot file name under the cache dir.
pub const SNAPSHOT_FILE: &str = "registry.snapshot";
/// Counter-checkpoint file name under the cache dir.
pub const COUNTERS_FILE: &str = "registry.counters";

/// Default `--wal-max-bytes`: how large the journal may grow before
/// the flusher folds it into the snapshot and truncates. Events are
/// ~100 bytes, so the default keeps tens of thousands of events of
/// forensic tail while bounding replay to a few milliseconds.
pub const DEFAULT_WAL_MAX_BYTES: u64 = 4 * 1024 * 1024;

/// Snapshot format version; bump on layout change so old snapshots are
/// ignored (the journal alone still recovers counters and keys).
const SNAPSHOT_VERSION: i64 = 1;

/// How often the flusher thread syncs the journal and refreshes the
/// counter checkpoint. This is the crash-durability window: a kill -9
/// loses at most this much counter movement (journaled *events* are
/// written before their effects are observable and synced on the next
/// tick or event notification).
const FLUSH_INTERVAL: Duration = Duration::from_millis(100);

/// The registry's cumulative lifecycle counters as plain values — the
/// unit of counter durability. Every field is monotone over the
/// server's whole life *across restarts*, which is what lets recovery
/// take the elementwise max of independent durable sources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that scanned the source.
    pub misses: u64,
    /// Lookups restored from the warm tier.
    pub disk_hits: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Source-change rebuilds.
    pub stale_rebuilds: u64,
    /// Sample-to-materialised upgrades.
    pub upgrades: u64,
    /// Appends absorbed incrementally.
    pub append_updates: u64,
    /// Entries refreshed by the background sweeper.
    pub sweep_refreshes: u64,
}

/// Field names in checkpoint/snapshot order — one list so the
/// allocation-free writer, the JSON reader, and the docs cannot drift.
const COUNTER_NAMES: [&str; 8] = [
    "hits",
    "misses",
    "disk_hits",
    "evictions",
    "stale_rebuilds",
    "upgrades",
    "append_updates",
    "sweep_refreshes",
];

impl CounterSet {
    fn as_array(&self) -> [u64; 8] {
        [
            self.hits,
            self.misses,
            self.disk_hits,
            self.evictions,
            self.stale_rebuilds,
            self.upgrades,
            self.append_updates,
            self.sweep_refreshes,
        ]
    }

    fn from_array(v: [u64; 8]) -> CounterSet {
        CounterSet {
            hits: v[0],
            misses: v[1],
            disk_hits: v[2],
            evictions: v[3],
            stale_rebuilds: v[4],
            upgrades: v[5],
            append_updates: v[6],
            sweep_refreshes: v[7],
        }
    }

    /// Elementwise max — counters are monotone, so the larger of two
    /// durable observations is always the later one.
    fn max_with(&mut self, other: &CounterSet) {
        let (mut a, b) = (self.as_array(), other.as_array());
        for (slot, v) in a.iter_mut().zip(b) {
            *slot = (*slot).max(v);
        }
        *self = CounterSet::from_array(a);
    }

    /// Reads the eight counter fields out of a JSON object; missing or
    /// malformed fields reject the whole set (a half-read checkpoint
    /// must not look authoritative).
    fn from_json(v: &Json) -> Option<CounterSet> {
        let mut out = [0u64; 8];
        for (slot, name) in out.iter_mut().zip(COUNTER_NAMES) {
            *slot = v.get(name)?.as_u64_lossless()?;
        }
        Some(CounterSet::from_array(out))
    }

    fn json_fields(&self) -> Vec<(&'static str, Json)> {
        COUNTER_NAMES
            .iter()
            .zip(self.as_array())
            .map(|(&name, v)| (name, json::u64_value(v)))
            .collect()
    }
}

/// The registry's live lifecycle counters (atomic, shared between the
/// registry and the WAL flusher). Split out of the `Registry` struct
/// so the flusher thread can checkpoint them without holding a
/// reference to the registry itself.
#[derive(Debug, Default)]
pub(crate) struct LifecycleCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub disk_hits: AtomicU64,
    pub evictions: AtomicU64,
    pub stale_rebuilds: AtomicU64,
    pub upgrades: AtomicU64,
    pub append_updates: AtomicU64,
    pub sweep_refreshes: AtomicU64,
}

impl LifecycleCounters {
    /// A point-in-time copy of all eight counters.
    pub fn values(&self) -> CounterSet {
        CounterSet {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_rebuilds: self.stale_rebuilds.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            append_updates: self.append_updates.load(Ordering::Relaxed),
            sweep_refreshes: self.sweep_refreshes.load(Ordering::Relaxed),
        }
    }

    /// Seeds the atomics from recovered values (startup only, before
    /// any traffic).
    pub fn seed(&self, c: &CounterSet) {
        self.hits.store(c.hits, Ordering::Relaxed);
        self.misses.store(c.misses, Ordering::Relaxed);
        self.disk_hits.store(c.disk_hits, Ordering::Relaxed);
        self.evictions.store(c.evictions, Ordering::Relaxed);
        self.stale_rebuilds
            .store(c.stale_rebuilds, Ordering::Relaxed);
        self.upgrades.store(c.upgrades, Ordering::Relaxed);
        self.append_updates
            .store(c.append_updates, Ordering::Relaxed);
        self.sweep_refreshes
            .store(c.sweep_refreshes, Ordering::Relaxed);
    }
}

/// What replaying snapshot + journal recovered, handed to the registry
/// at startup.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Prior server lives observed in the journal history — the value
    /// behind `qid_restarts_total`. `0` on a first boot.
    pub restarts: u64,
    /// Journal records replayed (snapshot state excluded).
    pub replayed_events: u64,
    /// True iff the journal's last record is a clean-shutdown record.
    pub clean_shutdown: bool,
    /// True iff a journal or snapshot existed at all. Crash evidence is
    /// `had_journal && !clean_shutdown` — a missing journal is a first
    /// boot, not a crash.
    pub had_journal: bool,
    /// Recovered cumulative counters (elementwise max of the snapshot,
    /// journal-derived deltas, the shutdown record, and the counter
    /// checkpoint).
    pub counters: CounterSet,
    /// Key stems resident at the end of the journal, LRU order (least
    /// recently touched first) — the re-admission work list.
    pub resident: Vec<u64>,
}

/// Per-key journal state: when the key was last touched (journal
/// sequence number — the disk-GC access order) and whether its entry
/// was resident at that point.
#[derive(Clone, Copy, Debug)]
struct KeyState {
    last_seq: u64,
    resident: bool,
}

/// Everything the writer mutates, under one lock. The request-path
/// cost of an *event* is one formatted line and one buffered `write`;
/// every `fsync` happens on the flusher thread.
#[derive(Debug)]
struct WalInner {
    log: File,
    counters_file: File,
    /// Monotone over the journal's whole history, snapshots included.
    seq: u64,
    log_bytes: u64,
    /// Server lives including this one (once armed).
    lives: u64,
    keys: HashMap<u64, KeyState>,
    /// Counters as the *journal* proves them: the recovered base plus
    /// one increment per journaled event. Always ≤ the live atomics
    /// (every journaled event's `fetch_add` precedes its `record`), so
    /// rotation can fold these into the snapshot without ever counting
    /// an event that also survives in the post-rotation tail — the
    /// live values would race exactly that way.
    event_counters: CounterSet,
    /// Journal lines written since the last fsync.
    events_dirty: bool,
    /// Reused checkpoint render buffer; capacity is reserved at arm
    /// time so steady-state checkpoint writes never allocate.
    checkpoint_buf: Vec<u8>,
    last_checkpoint: CounterSet,
    stop: bool,
    closed: bool,
}

/// The write-ahead journal: owned by the registry (one per cache dir),
/// shared with its background flusher thread.
#[derive(Debug)]
pub(crate) struct Wal {
    dir: PathBuf,
    max_bytes: u64,
    inner: Mutex<WalInner>,
    tick: Condvar,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    recovery: WalRecovery,
}

impl Wal {
    /// Opens (creating the dir and files as needed) and replays the
    /// journal under `dir`. No records are written and no thread is
    /// spawned until [`Wal::arm`].
    pub fn open(dir: &Path, max_bytes: u64) -> std::io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let scan = scan_dir(dir);
        let log = File::options()
            .append(true)
            .create(true)
            .open(dir.join(WAL_FILE))?;
        let log_bytes = log.metadata().map(|m| m.len()).unwrap_or(0);
        let counters_file = File::options()
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(COUNTERS_FILE))?;
        let recovery = WalRecovery {
            restarts: scan.lives,
            replayed_events: scan.events,
            clean_shutdown: scan.clean_shutdown,
            had_journal: scan.had_journal,
            counters: scan.counters,
            resident: scan.resident_lru(),
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            max_bytes,
            inner: Mutex::new(WalInner {
                log,
                counters_file,
                seq: scan.seq,
                log_bytes,
                lives: scan.lives,
                keys: scan.keys,
                event_counters: recovery.counters,
                events_dirty: false,
                checkpoint_buf: Vec::new(),
                last_checkpoint: CounterSet::default(),
                stop: false,
                closed: false,
            }),
            tick: Condvar::new(),
            flusher: Mutex::new(None),
            recovery,
        })
    }

    /// What [`Wal::open`] recovered.
    pub fn recovery(&self) -> &WalRecovery {
        &self.recovery
    }

    /// Starts this life: journals the `open` record (restart evidence
    /// for the next replay), seeds the checkpoint machinery, and
    /// spawns the background flusher that owns every fsync.
    pub fn arm(self: &Arc<Self>, counters: Arc<LifecycleCounters>) {
        {
            let mut inner = self.inner.lock().expect("wal lock");
            inner.lives += 1;
            // Steady-state checkpoints must not allocate; a rendered
            // line is bounded well under this (8 names + 8 u64s + the
            // checksum), so one up-front reservation is enough.
            inner.checkpoint_buf.reserve(1024);
            let restarts = inner.lives - 1;
            let line = format!(
                "{{\"seq\":{},\"ts_ms\":{},\"ev\":\"open\",\"restarts\":{},\"pid\":{}}}\n",
                inner.seq + 1,
                unix_ms(),
                restarts,
                std::process::id()
            );
            self.append_locked(&mut inner, &line);
            let _ = inner.log.sync_data();
            inner.events_dirty = false;
            let seeded = counters.values();
            self.write_checkpoint_locked(&mut inner, &seeded);
        }
        let wal = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("qid-wal".to_string())
            .spawn(move || wal.flusher_loop(&counters))
            .expect("spawn wal flusher");
        *self.flusher.lock().expect("wal flusher lock") = Some(handle);
    }

    /// Journals one lifecycle event. Called from the registry's build,
    /// evict, and GC paths — never from the served-hit fast path,
    /// which emits no events. The write is buffered-synchronous; the
    /// fsync is the flusher's job (it is nudged so durability lags by
    /// microseconds, not a full tick).
    pub fn record(&self, event: RegistryEvent) {
        let mut inner = self.inner.lock().expect("wal lock");
        if inner.closed {
            return;
        }
        let seq = inner.seq + 1;
        let head = format!("{{\"seq\":{seq},\"ts_ms\":{}", unix_ms());
        let line = match event {
            RegistryEvent::Built { key, bytes } => {
                format!("{head},\"ev\":\"build\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}\n")
            }
            RegistryEvent::Restored { key, bytes } => {
                format!("{head},\"ev\":\"restore\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}\n")
            }
            RegistryEvent::Evicted { key, bytes } => {
                format!("{head},\"ev\":\"evict\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}\n")
            }
            RegistryEvent::StaleRebuild { key } => {
                format!("{head},\"ev\":\"stale_rebuild\",\"key\":\"{key:016x}\"}}\n")
            }
            RegistryEvent::AppendUpdate { key, bytes } => format!(
                "{head},\"ev\":\"append_absorb\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}\n"
            ),
            RegistryEvent::SketchBuilt { key, bytes } => format!(
                "{head},\"ev\":\"sketch_build\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}\n"
            ),
            RegistryEvent::DiskEvicted { key, bytes } => {
                format!("{head},\"ev\":\"disk_gc\",\"key\":\"{key:016x}\",\"bytes\":{bytes}}}\n")
            }
            RegistryEvent::Unloaded { key } => {
                format!("{head},\"ev\":\"unload\",\"key\":\"{key:016x}\"}}\n")
            }
            RegistryEvent::Purged { entries, files } => {
                format!("{head},\"ev\":\"purge\",\"entries\":{entries},\"files\":{files}}}\n")
            }
        };
        self.append_locked(&mut inner, &line);
        apply_key_event(&mut inner.keys, seq, &event);
        match event {
            RegistryEvent::Built { .. } => inner.event_counters.misses += 1,
            RegistryEvent::Restored { .. } => inner.event_counters.disk_hits += 1,
            RegistryEvent::Evicted { .. } => inner.event_counters.evictions += 1,
            RegistryEvent::StaleRebuild { .. } => inner.event_counters.stale_rebuilds += 1,
            RegistryEvent::AppendUpdate { .. } => inner.event_counters.append_updates += 1,
            _ => {}
        }
        drop(inner);
        // Nudge the flusher: the event reaches the platter on its next
        // wake, not a full FLUSH_INTERVAL later.
        self.tick.notify_one();
    }

    /// The journal-derived last-access sequence per key stem, for the
    /// disk-GC victim ordering. A stem the journal has never seen maps
    /// to no entry (the GC treats it as least recently used).
    pub fn last_access(&self) -> HashMap<u64, u64> {
        self.inner
            .lock()
            .expect("wal lock")
            .keys
            .iter()
            .map(|(&stem, st)| (stem, st.last_seq))
            .collect()
    }

    /// Clean shutdown: final counter checkpoint, the `shutdown` record
    /// (with the counters inline, so a clean restart is exact even if
    /// the checkpoint file is lost), a final fsync, and the flusher
    /// joined. Idempotent; called from the registry's `Drop` — which a
    /// SIGKILL never runs, making the record's *absence* the crash
    /// evidence recovery keys off.
    pub fn close(&self, counters: &LifecycleCounters) {
        {
            let mut inner = self.inner.lock().expect("wal lock");
            if inner.closed {
                return;
            }
            inner.closed = true;
            inner.stop = true;
            let cur = counters.values();
            self.write_checkpoint_locked(&mut inner, &cur);
            let mut fields = vec![
                ("seq", json::u64_value(inner.seq + 1)),
                ("ts_ms", json::u64_value(unix_ms())),
                ("ev", s("shutdown")),
            ];
            fields.extend(cur.json_fields());
            let line = format!("{}\n", obj(fields).render());
            self.append_locked(&mut inner, &line);
            let _ = inner.log.sync_data();
            inner.events_dirty = false;
        }
        self.tick.notify_all();
        let handle = self.flusher.lock().expect("wal flusher lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Test hook: tears the flusher down *without* a shutdown record
    /// or final sync — the next open sees crash evidence, exactly as
    /// if the process had been killed.
    #[cfg(test)]
    pub fn abort_for_test(&self) {
        {
            let mut inner = self.inner.lock().expect("wal lock");
            if inner.closed {
                return;
            }
            inner.closed = true;
            inner.stop = true;
            let _ = inner.log.sync_data();
        }
        self.tick.notify_all();
        let handle = self.flusher.lock().expect("wal flusher lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    // ---------------------------------------------------- internals

    /// Appends a pre-rendered line and advances the sequence number.
    fn append_locked(&self, inner: &mut WalInner, line: &str) {
        inner.seq += 1;
        if inner.log.write_all(line.as_bytes()).is_ok() {
            inner.log_bytes += line.len() as u64;
            inner.events_dirty = true;
        }
    }

    /// The flusher thread: wakes on event notifications (fast
    /// durability) or every [`FLUSH_INTERVAL`] (counter movement),
    /// syncs the journal, rotates it past `max_bytes`, and refreshes
    /// the counter checkpoint. An idle tick — no events, no counter
    /// movement — does nothing and allocates nothing, so the thread
    /// can run alongside the zero-allocation steady state.
    fn flusher_loop(&self, counters: &LifecycleCounters) {
        let mut inner = self.inner.lock().expect("wal lock");
        loop {
            if inner.stop {
                return;
            }
            let (guard, _) = self
                .tick
                .wait_timeout(inner, FLUSH_INTERVAL)
                .expect("wal lock");
            inner = guard;
            if inner.stop {
                return;
            }
            if inner.events_dirty {
                let _ = inner.log.sync_data();
                inner.events_dirty = false;
                if inner.log_bytes > self.max_bytes {
                    self.rotate_locked(&mut inner, counters);
                }
            }
            let cur = counters.values();
            if cur != inner.last_checkpoint {
                self.write_checkpoint_locked(&mut inner, &cur);
            }
        }
    }

    /// Folds the journal into the snapshot (write + fsync + rename)
    /// and truncates it. Only reached when events were journaled, so
    /// allocation here never lands inside an event-free steady state.
    fn rotate_locked(&self, inner: &mut WalInner, counters: &LifecycleCounters) {
        // Evented counters come from the journal-proved set (see
        // `WalInner::event_counters`); the never-journaled three come
        // from the live atomics, which are their only durable source.
        let live = counters.values();
        let mut folded = inner.event_counters;
        folded.hits = folded.hits.max(live.hits);
        folded.upgrades = folded.upgrades.max(live.upgrades);
        folded.sweep_refreshes = folded.sweep_refreshes.max(live.sweep_refreshes);
        let mut keys: Vec<(u64, KeyState)> = inner.keys.iter().map(|(&k, &v)| (k, v)).collect();
        keys.sort_by_key(|&(stem, st)| (st.last_seq, stem));
        let keys_json = Json::Arr(
            keys.iter()
                .map(|&(stem, st)| {
                    obj(vec![
                        ("key", s(format!("{stem:016x}"))),
                        ("seq", json::u64_value(st.last_seq)),
                        ("res", Json::Bool(st.resident)),
                    ])
                })
                .collect(),
        );
        let line = format!(
            "{}\n",
            obj(vec![
                ("version", Json::Int(SNAPSHOT_VERSION)),
                ("seq", json::u64_value(inner.seq)),
                ("lives", json::u64_value(inner.lives)),
                ("counters", obj(folded.json_fields())),
                ("keys", keys_json),
            ])
            .render()
        );
        let tmp = self
            .dir
            .join(format!("{SNAPSHOT_FILE}.{}.tmp", std::process::id()));
        let written = File::create(&tmp).and_then(|mut f| {
            f.write_all(line.as_bytes())?;
            f.sync_data()
        });
        if written.is_ok()
            && std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE)).is_ok()
            && inner.log.set_len(0).is_ok()
        {
            inner.log_bytes = 0;
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Rewrites `registry.counters` in place on its long-lived
    /// descriptor. Manual rendering into the reused buffer keeps the
    /// steady-state path allocation-free (opening a file — even a
    /// temp-and-rename — converts a path to a `CString`, which
    /// allocates; a seek + write on an open fd does not). Torn writes
    /// are caught by the trailing FNV checksum at replay.
    fn write_checkpoint_locked(&self, inner: &mut WalInner, cur: &CounterSet) {
        let WalInner {
            counters_file,
            checkpoint_buf: buf,
            ..
        } = inner;
        buf.clear();
        buf.push(b'{');
        for (name, v) in COUNTER_NAMES.iter().zip(cur.as_array()) {
            if buf.len() > 1 {
                buf.push(b',');
            }
            buf.push(b'"');
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(b"\":");
            push_u64(buf, v);
        }
        let sum = fnv64(buf);
        buf.extend_from_slice(b",\"fnv\":\"");
        push_hex16(buf, sum);
        buf.extend_from_slice(b"\"}\n");
        let ok = counters_file
            .seek(SeekFrom::Start(0))
            .and_then(|_| counters_file.write_all(buf))
            .and_then(|()| counters_file.set_len(buf.len() as u64))
            .and_then(|()| counters_file.sync_data());
        if ok.is_ok() {
            inner.last_checkpoint = *cur;
        }
    }
}

/// Applies one journaled event to the per-key state map.
fn apply_key_event(keys: &mut HashMap<u64, KeyState>, seq: u64, event: &RegistryEvent) {
    let mut touch = |key: u64, resident: bool| {
        keys.insert(
            key,
            KeyState {
                last_seq: seq,
                resident,
            },
        );
    };
    match *event {
        RegistryEvent::Built { key, .. }
        | RegistryEvent::Restored { key, .. }
        | RegistryEvent::AppendUpdate { key, .. }
        | RegistryEvent::SketchBuilt { key, .. }
        | RegistryEvent::StaleRebuild { key } => touch(key, true),
        RegistryEvent::Evicted { key, .. } => touch(key, false),
        // Unload and disk GC destroy the artifacts too: the key has no
        // warm-tier presence left, so it leaves the access map rather
        // than lingering as a "recently used" ghost.
        RegistryEvent::Unloaded { key } | RegistryEvent::DiskEvicted { key, .. } => {
            keys.remove(&key);
        }
        RegistryEvent::Purged { .. } => keys.clear(),
    }
}

// ------------------------------------------------------------ replay

/// The result of reading every durable file under a cache dir —
/// shared by [`Wal::open`] (recovery) and [`inspect`] (forensics).
#[derive(Debug, Default)]
struct Scan {
    snapshot_seq: Option<u64>,
    snapshot_keys: usize,
    /// Prior lives: snapshot base + `open` records in the journal.
    lives: u64,
    /// Highest sequence number observed.
    seq: u64,
    /// Journal-proved counters: snapshot base + one increment per
    /// replayed event. Becomes the recovered set once the shutdown
    /// record and the checkpoint file are maxed in (scan_dir's tail).
    counters: CounterSet,
    /// Running max over every shutdown record's inline counters.
    shutdown_counters: CounterSet,
    keys: HashMap<u64, KeyState>,
    /// Journal records parsed.
    events: u64,
    first_seq: u64,
    last_seq: u64,
    clean_shutdown: bool,
    /// The journal's final line failed to parse — a torn tail, the
    /// normal signature of a mid-write kill (not corruption).
    torn_tail: bool,
    had_journal: bool,
    /// `Some(valid)` if `registry.counters` exists.
    counters_file: Option<bool>,
    issues: Vec<String>,
    lines: Vec<String>,
}

impl Scan {
    /// Resident stems, least recently touched first.
    fn resident_lru(&self) -> Vec<u64> {
        let mut resident: Vec<(u64, u64)> = self
            .keys
            .iter()
            .filter(|(_, st)| st.resident)
            .map(|(&stem, st)| (st.last_seq, stem))
            .collect();
        resident.sort_unstable();
        resident.into_iter().map(|(_, stem)| stem).collect()
    }
}

/// Reads and replays snapshot, journal, and counter checkpoint.
fn scan_dir(dir: &Path) -> Scan {
    let mut scan = Scan::default();

    // Snapshot first: it is the journal's folded prefix.
    if let Ok(text) = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)) {
        scan.had_journal = true;
        match json::parse(text.trim()) {
            Ok(v) if v.get("version").and_then(Json::as_i64) == Some(SNAPSHOT_VERSION) => {
                scan.seq = v.get("seq").and_then(Json::as_u64_lossless).unwrap_or(0);
                scan.snapshot_seq = Some(scan.seq);
                scan.lives = v.get("lives").and_then(Json::as_u64_lossless).unwrap_or(0);
                if let Some(c) = v.get("counters").and_then(CounterSet::from_json) {
                    scan.counters = c;
                }
                if let Some(keys) = v.get("keys").and_then(Json::as_arr) {
                    for k in keys {
                        let stem = k
                            .get("key")
                            .and_then(Json::as_str)
                            .and_then(|h| u64::from_str_radix(h, 16).ok());
                        let seq = k.get("seq").and_then(Json::as_u64_lossless);
                        let res = k.get("res").and_then(Json::as_bool);
                        if let (Some(stem), Some(seq), Some(res)) = (stem, seq, res) {
                            scan.keys.insert(
                                stem,
                                KeyState {
                                    last_seq: seq,
                                    resident: res,
                                },
                            );
                            scan.snapshot_keys += 1;
                        } else {
                            scan.issues
                                .push("snapshot: malformed key entry".to_string());
                        }
                    }
                }
            }
            Ok(_) => scan
                .issues
                .push("snapshot: unknown version (ignored)".to_string()),
            Err(_) => scan
                .issues
                .push("snapshot: unparseable JSON (ignored)".to_string()),
        }
    }

    // The journal tail.
    if let Ok(text) = std::fs::read_to_string(dir.join(WAL_FILE)) {
        if !text.is_empty() {
            scan.had_journal = true;
        }
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let last_idx = lines.len().saturating_sub(1);
        for (idx, line) in lines.iter().enumerate() {
            scan.lines.push((*line).to_string());
            match parse_record(line) {
                Some(rec) => {
                    if rec.seq <= scan.seq {
                        scan.issues.push(format!(
                            "journal line {}: seq {} not after {}",
                            idx + 1,
                            rec.seq,
                            scan.seq
                        ));
                    }
                    scan.seq = rec.seq;
                    if scan.first_seq == 0 {
                        scan.first_seq = rec.seq;
                    }
                    scan.last_seq = rec.seq;
                    scan.events += 1;
                    scan.clean_shutdown = rec.is_shutdown;
                    apply_record(&mut scan, &rec);
                }
                None if idx == last_idx => {
                    // A partial final line is the normal kill-mid-write
                    // signature — tolerated, but it means the journal
                    // does not *end* with a shutdown record.
                    scan.torn_tail = true;
                    scan.clean_shutdown = false;
                }
                None => scan.issues.push(format!(
                    "journal line {}: unparseable interior record",
                    idx + 1
                )),
            }
        }
    }

    // The counter checkpoint: strictly newer-or-equal information than
    // anything above when its checksum holds; garbage when torn.
    if let Ok(text) = std::fs::read_to_string(dir.join(COUNTERS_FILE)) {
        if !text.trim().is_empty() {
            match verify_checkpoint(&text) {
                Some(c) => {
                    scan.counters.max_with(&c);
                    scan.counters_file = Some(true);
                }
                None => {
                    scan.counters_file = Some(false);
                    scan.issues
                        .push("counters: checksum mismatch (torn checkpoint ignored)".to_string());
                }
            }
        }
    }
    // `scan.counters` so far is the journal-proved floor; the shutdown
    // record and the checkpoint are independent monotone observations,
    // so the elementwise max of all three is the latest durable truth.
    let shutdown = scan.shutdown_counters;
    scan.counters.max_with(&shutdown);
    scan
}

/// One parsed journal record — only the fields replay acts on.
struct Record {
    seq: u64,
    ev: String,
    key: Option<u64>,
    is_shutdown: bool,
    counters: Option<CounterSet>,
}

fn parse_record(line: &str) -> Option<Record> {
    let v = json::parse(line.trim()).ok()?;
    let seq = v.get("seq")?.as_u64_lossless()?;
    let ev = v.get("ev").and_then(Json::as_str)?.to_string();
    const KNOWN: [&str; 11] = [
        "open",
        "build",
        "restore",
        "evict",
        "stale_rebuild",
        "append_absorb",
        "sketch_build",
        "disk_gc",
        "unload",
        "purge",
        "shutdown",
    ];
    if !KNOWN.contains(&ev.as_str()) {
        return None;
    }
    let key = v
        .get("key")
        .and_then(Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok());
    let is_shutdown = ev == "shutdown";
    let counters = is_shutdown.then(|| CounterSet::from_json(&v)).flatten();
    Some(Record {
        seq,
        ev,
        key,
        is_shutdown,
        counters,
    })
}

/// Replays one record into the scan state: counter deltas for the
/// counters an event determines exactly, key-state transitions for
/// the access map and resident set. Hits, upgrades, and sweep
/// refreshes have no per-event record (they are checkpoint-resumed),
/// so a crash loses at most [`FLUSH_INTERVAL`] of their movement.
fn apply_record(scan: &mut Scan, rec: &Record) {
    let seq = rec.seq;
    match (rec.ev.as_str(), rec.key) {
        ("open", _) => scan.lives += 1,
        ("build", Some(key)) => {
            scan.counters.misses += 1;
            apply_key_event(&mut scan.keys, seq, &RegistryEvent::Built { key, bytes: 0 });
        }
        ("restore", Some(key)) => {
            scan.counters.disk_hits += 1;
            apply_key_event(
                &mut scan.keys,
                seq,
                &RegistryEvent::Restored { key, bytes: 0 },
            );
        }
        ("evict", Some(key)) => {
            scan.counters.evictions += 1;
            apply_key_event(
                &mut scan.keys,
                seq,
                &RegistryEvent::Evicted { key, bytes: 0 },
            );
        }
        ("stale_rebuild", Some(key)) => {
            scan.counters.stale_rebuilds += 1;
            apply_key_event(&mut scan.keys, seq, &RegistryEvent::StaleRebuild { key });
        }
        ("append_absorb", Some(key)) => {
            scan.counters.append_updates += 1;
            apply_key_event(
                &mut scan.keys,
                seq,
                &RegistryEvent::AppendUpdate { key, bytes: 0 },
            );
        }
        ("sketch_build", Some(key)) => {
            apply_key_event(
                &mut scan.keys,
                seq,
                &RegistryEvent::SketchBuilt { key, bytes: 0 },
            );
        }
        ("disk_gc", Some(key)) => {
            apply_key_event(
                &mut scan.keys,
                seq,
                &RegistryEvent::DiskEvicted { key, bytes: 0 },
            );
        }
        ("unload", Some(key)) => {
            apply_key_event(&mut scan.keys, seq, &RegistryEvent::Unloaded { key });
        }
        ("purge", _) => scan.keys.clear(),
        ("shutdown", _) => {
            if let Some(c) = &rec.counters {
                scan.shutdown_counters.max_with(c);
            }
        }
        _ => {}
    }
}

/// Validates a checkpoint line's trailing FNV and returns its
/// counters, or `None` for a torn/garbage checkpoint.
fn verify_checkpoint(text: &str) -> Option<CounterSet> {
    let line = text.trim();
    let idx = line.rfind(",\"fnv\":\"")?;
    let sum = fnv64(&line.as_bytes()[..idx]);
    let v = json::parse(line).ok()?;
    let recorded = v.get("fnv").and_then(Json::as_str)?;
    if u64::from_str_radix(recorded, 16).ok()? != sum {
        return None;
    }
    CounterSet::from_json(&v)
}

// ----------------------------------------------------------- inspect

/// Everything `qid wal <dir>` reports about a cache dir's durability
/// files: the parsed journal, the recovery summary, and any
/// consistency issues.
#[derive(Debug)]
pub struct WalReport {
    /// Snapshot's folded sequence number, if a snapshot exists.
    pub snapshot_seq: Option<u64>,
    /// Key stems carried by the snapshot.
    pub snapshot_keys: usize,
    /// Prior server lives (the `qid_restarts_total` the next boot
    /// would report).
    pub restarts: u64,
    /// Journal records parsed.
    pub events: u64,
    /// First and last journal sequence numbers (`0` when empty).
    pub first_seq: u64,
    /// See [`WalReport::first_seq`].
    pub last_seq: u64,
    /// True iff the journal ends with a clean-shutdown record; its
    /// absence on a non-empty journal is crash evidence, not an error.
    pub clean_shutdown: bool,
    /// The journal's final line is partial — the normal signature of a
    /// kill mid-write.
    pub torn_tail: bool,
    /// Keys that would be re-admitted on the next boot.
    pub resident: usize,
    /// Counters the next boot would resume with.
    pub counters: CounterSet,
    /// Consistency problems (non-monotone sequence numbers, interior
    /// corruption, checksum failures). Empty means the journal
    /// verifies.
    pub issues: Vec<String>,
    /// The raw journal lines, for the dump mode.
    pub lines: Vec<String>,
    /// True iff a journal or snapshot existed at all — false means the
    /// directory has never hosted a WAL-armed server.
    pub had_journal: bool,
}

/// Reads and verifies the durability files under `dir` without
/// touching them — the engine behind `qid wal <dir> [--verify]`.
pub fn inspect(dir: &Path) -> WalReport {
    let scan = scan_dir(dir);
    let resident = scan.resident_lru().len();
    WalReport {
        snapshot_seq: scan.snapshot_seq,
        snapshot_keys: scan.snapshot_keys,
        restarts: scan.lives,
        events: scan.events,
        first_seq: scan.first_seq,
        last_seq: scan.last_seq,
        clean_shutdown: scan.clean_shutdown,
        torn_tail: scan.torn_tail,
        resident,
        counters: scan.counters,
        had_journal: scan.had_journal,
        issues: scan.issues,
        lines: scan.lines,
    }
}

// ----------------------------------------------------------- helpers

/// Milliseconds since the Unix epoch (journal record timestamps).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Appends `v`'s decimal digits — no formatting machinery, no
/// allocation (the checkpoint writer runs inside the zero-alloc
/// steady state).
fn push_u64(buf: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&tmp[i..]);
}

/// Appends `v` as exactly 16 lowercase hex digits.
fn push_hex16(buf: &mut Vec<u8>, v: u64) {
    for shift in (0..16).rev() {
        let nibble = ((v >> (shift * 4)) & 0xf) as u8;
        buf.push(if nibble < 10 {
            b'0' + nibble
        } else {
            b'a' + nibble - 10
        });
    }
}

/// FNV-1a over `bytes` — the checkpoint checksum (same constants as
/// the registry's key and content hashes).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reads a whole file; empty/absent files read as empty strings. Used
/// by tests.
#[cfg(test)]
fn read_all(path: &Path) -> String {
    use std::io::Read as _;
    let mut out = String::new();
    if let Ok(mut f) = File::open(path) {
        let _ = f.read_to_string(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qid-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    fn armed(dir: &Path, max_bytes: u64) -> (Arc<Wal>, Arc<LifecycleCounters>) {
        let wal = Arc::new(Wal::open(dir, max_bytes).expect("wal open"));
        let counters = Arc::new(LifecycleCounters::default());
        counters.seed(&wal.recovery().counters);
        wal.arm(Arc::clone(&counters));
        (wal, counters)
    }

    #[test]
    fn journal_roundtrips_events_counters_and_resident_set() {
        let dir = unique_dir("roundtrip");
        {
            let (wal, counters) = armed(&dir, DEFAULT_WAL_MAX_BYTES);
            assert_eq!(wal.recovery().restarts, 0);
            assert!(!wal.recovery().had_journal);
            wal.record(RegistryEvent::Built {
                key: 0xa1,
                bytes: 10,
            });
            wal.record(RegistryEvent::Built {
                key: 0xb2,
                bytes: 20,
            });
            wal.record(RegistryEvent::Restored {
                key: 0xa1,
                bytes: 10,
            });
            wal.record(RegistryEvent::Evicted {
                key: 0xb2,
                bytes: 20,
            });
            counters.hits.store(41, Ordering::Relaxed);
            counters.misses.store(2, Ordering::Relaxed);
            wal.close(&counters);
        }
        let wal = Wal::open(&dir, DEFAULT_WAL_MAX_BYTES).expect("reopen");
        let r = wal.recovery();
        assert_eq!(r.restarts, 1, "one prior life");
        assert!(r.clean_shutdown);
        assert!(r.had_journal);
        assert_eq!(r.counters.misses, 2);
        assert_eq!(r.counters.disk_hits, 1);
        assert_eq!(r.counters.evictions, 1);
        assert_eq!(r.counters.hits, 41, "hits resume from the checkpoint");
        // b2 was evicted; a1 was restored last and stays resident.
        assert_eq!(r.resident, vec![0xa1]);
    }

    #[test]
    fn crash_without_shutdown_record_is_detected_and_counters_survive() {
        let dir = unique_dir("crash");
        {
            let (wal, counters) = armed(&dir, DEFAULT_WAL_MAX_BYTES);
            wal.record(RegistryEvent::Built {
                key: 0xc3,
                bytes: 5,
            });
            counters.misses.store(1, Ordering::Relaxed);
            counters.hits.store(9, Ordering::Relaxed);
            // Let the flusher checkpoint the moved counters.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while verify_checkpoint(&read_all(&dir.join(COUNTERS_FILE))).is_none_or(|c| c.hits < 9)
            {
                assert!(
                    std::time::Instant::now() < deadline,
                    "checkpoint not written"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            wal.abort_for_test();
        }
        let wal = Wal::open(&dir, DEFAULT_WAL_MAX_BYTES).expect("reopen");
        let r = wal.recovery();
        assert!(r.had_journal && !r.clean_shutdown, "crash evidence");
        assert_eq!(r.counters.misses, 1, "event-derived");
        assert_eq!(r.counters.hits, 9, "checkpoint-derived");
        assert_eq!(r.resident, vec![0xc3]);
    }

    #[test]
    fn torn_tail_is_tolerated_but_interior_garbage_is_an_issue() {
        let dir = unique_dir("torn");
        {
            let (wal, counters) = armed(&dir, DEFAULT_WAL_MAX_BYTES);
            wal.record(RegistryEvent::Built { key: 1, bytes: 1 });
            wal.close(&counters);
        }
        // A kill mid-write leaves a partial final line.
        let mut f = File::options()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(b"{\"seq\":99,\"ts_ms\":1,\"ev\":\"bui")
            .unwrap();
        drop(f);
        let report = inspect(&dir);
        assert!(report.torn_tail);
        assert!(report.issues.is_empty(), "a torn tail is not corruption");
        assert!(
            !report.clean_shutdown,
            "records after the shutdown line void the clean flag"
        );

        // Garbage *before* valid records is real corruption.
        let text = read_all(&dir.join(WAL_FILE));
        let rewritten = text.replacen("\"ev\":\"open\"", "\"ev\":\"nonsense\"", 1);
        std::fs::write(dir.join(WAL_FILE), rewritten).unwrap();
        let report = inspect(&dir);
        assert!(
            report
                .issues
                .iter()
                .any(|i| i.contains("unparseable interior")),
            "issues: {:?}",
            report.issues
        );
    }

    #[test]
    fn snapshot_rotation_bounds_the_journal_and_preserves_state() {
        let dir = unique_dir("rotate");
        {
            // A tiny budget forces rotation almost immediately.
            let (wal, counters) = armed(&dir, 512);
            for i in 0..64u64 {
                wal.record(RegistryEvent::Built {
                    key: i + 1,
                    bytes: 1,
                });
            }
            // The flusher rotates on its next tick; wait for it.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !dir.join(SNAPSHOT_FILE).exists() {
                assert!(std::time::Instant::now() < deadline, "no rotation");
                std::thread::sleep(Duration::from_millis(10));
            }
            wal.close(&counters);
        }
        let wal = Wal::open(&dir, 512).expect("reopen");
        let r = wal.recovery();
        assert_eq!(r.counters.misses, 64, "deltas survive the fold");
        assert_eq!(r.resident.len(), 64, "resident set survives the fold");
        assert_eq!(
            *r.resident.last().unwrap(),
            64,
            "LRU order: the newest build is last"
        );
        let report = inspect(&dir);
        assert!(report.issues.is_empty(), "issues: {:?}", report.issues);
        assert!(report.snapshot_seq.is_some());
    }

    #[test]
    fn torn_counter_checkpoint_fails_its_checksum() {
        let dir = unique_dir("torn-counters");
        {
            let (wal, counters) = armed(&dir, DEFAULT_WAL_MAX_BYTES);
            counters.hits.store(1234, Ordering::Relaxed);
            wal.close(&counters);
        }
        let text = read_all(&dir.join(COUNTERS_FILE));
        assert!(verify_checkpoint(&text).is_some(), "intact checkpoint");
        // Corrupt one digit of a counter: the checksum must fail and
        // replay must fall back to journal-derived values.
        let torn = text.replacen("1234", "9234", 1);
        std::fs::write(dir.join(COUNTERS_FILE), torn).unwrap();
        let report = inspect(&dir);
        assert!(report.issues.iter().any(|i| i.contains("checksum")));
        // The shutdown record still carries the true value.
        assert_eq!(report.counters.hits, 1234);
    }

    #[test]
    fn checkpoint_render_is_stable_under_reuse() {
        let mut buf = Vec::with_capacity(1024);
        push_u64(&mut buf, 0);
        push_u64(&mut buf, 18_446_744_073_709_551_615);
        assert_eq!(buf, b"018446744073709551615");
        buf.clear();
        push_hex16(&mut buf, 0xdead_beef);
        assert_eq!(buf, b"00000000deadbeef");
    }
}
